//! Temperature-biased dynamic power: the De Vogeleer et al. law.
//!
//! [`ScaledTechPower`] carries the paper's Eq. 13 exponential through the
//! **leakage** term only; its dynamic term `α·f·C·V²` is
//! temperature-flat. De Vogeleer, Memmi, Jouvelot and Coelho
//! ("Modeling the Temperature Bias of Power Consumption for
//! Nanometer-Scale CPUs in Application Processors", PAPERS.md) measured
//! that total CPU power — dynamic included — rises exponentially with
//! junction temperature. [`BiasedTechPower`] grafts that bias onto the
//! dynamic term:
//!
//! ```text
//! P_dyn(T) = activity · vdd_scale² · P_dyn[i] · e^{(T − T_ref)/θ}
//! ```
//!
//! with θ the bias temperature constant (K). At `T = T_ref` this is
//! exactly the flat law; θ → ∞ recovers [`ScaledTechPower`] everywhere.
//! The leakage term is untouched — still the Eq. 13 OFF-current family.
//!
//! # Evaluation discipline
//!
//! The batch adapter wraps [`ScaledTechPower`]'s constant-folded
//! vectorized adapter and adds one correction panel:
//!
//! ```text
//! P = P_scaled + s_dyn·P_dyn[i]·(e^{x3} − 1)      x3 = (T − T_ref)/θ
//! ```
//!
//! so the third exponential sweep batches through
//! [`ptherm_math::expv::exp_into`] like the two Eq. 13 sweeps —
//! the same ≤5e-13 relative departure from the scalar oracle that
//! `docs/PERFORMANCE.md` documents for the base adapter, asserted by
//! this module's batch-oracle tests.

use crate::cosim::batch::BatchPowerModel;
use crate::cosim::sweep::{
    ScaledTechBatch, ScaledTechPower, Scenario, ScenarioGrid, ScenarioPowerModel,
};
use ptherm_floorplan::Floorplan;
use ptherm_math::{expv, MultiVec};
use ptherm_tech::Technology;

/// Default bias temperature constant, K.
///
/// De Vogeleer et al. fit exponential temperature scaling of total CPU
/// power over a ~30–80 °C window; the observed e-folding scale is of
/// order 100 K (a few tens of percent of power per tens of kelvin).
/// This default keeps the bias physically plausible while staying mild
/// enough that the paper-scale floorplans keep a fixed point at nominal
/// budgets.
pub const DEFAULT_BIAS_THETA_K: f64 = 100.0;

/// [`ScaledTechPower`] with the De Vogeleer exponential temperature
/// bias on the dynamic term (see the [module docs](self)).
///
/// Selectable per fleet job via the `"power": "biased"` protocol field.
#[derive(Debug, Clone)]
pub struct BiasedTechPower {
    inner: ScaledTechPower,
    /// Bias temperature constant θ, K. Always finite and positive
    /// (constructors clamp; the fleet parser refuses bad values with a
    /// typed error before they reach here).
    theta_k: f64,
}

impl BiasedTechPower {
    /// Wraps a base model with bias constant `theta_k` (K).
    ///
    /// A non-finite or non-positive `theta_k` falls back to
    /// [`DEFAULT_BIAS_THETA_K`] — the core model never divides by zero
    /// or produces NaN exponents from a bad constant. Callers wanting a
    /// typed rejection validate before constructing (the fleet does).
    pub fn new(inner: ScaledTechPower, theta_k: f64) -> Self {
        let theta_k = if theta_k.is_finite() && theta_k > 0.0 {
            theta_k
        } else {
            DEFAULT_BIAS_THETA_K
        };
        BiasedTechPower { inner, theta_k }
    }

    /// Area-weighted budgets with bias constant `theta_k` — the biased
    /// twin of [`ScaledTechPower::area_weighted`].
    pub fn area_weighted(
        floorplan: &Floorplan,
        total_dynamic_w: f64,
        total_leakage_w: f64,
        theta_k: f64,
    ) -> Self {
        Self::new(
            ScaledTechPower::area_weighted(floorplan, total_dynamic_w, total_leakage_w),
            theta_k,
        )
    }

    /// Precomputes the per-technology reference OFF currents (see
    /// [`ScaledTechPower::prepared_for`]).
    #[must_use]
    pub fn prepared_for(mut self, grid: &ScenarioGrid) -> Self {
        self.inner = self.inner.prepared_for(grid);
        self
    }

    /// The unbiased base model.
    pub fn base(&self) -> &ScaledTechPower {
        &self.inner
    }

    /// The bias temperature constant θ, K.
    pub fn theta_k(&self) -> f64 {
        self.theta_k
    }

    /// The bias correction to the flat dynamic term: `dyn·(e^{x3} − 1)`
    /// with `x3 = (T − T_ref)/θ`. One shared helper keeps the scalar
    /// oracle ([`ScenarioPowerModel::block_power`]) and the batch
    /// adapter's per-lane refresh algebraically identical.
    #[inline]
    fn bias_term(&self, scenario: &Scenario, tech: &Technology, block: usize, t: f64) -> f64 {
        let dynamic = scenario.activity
            * scenario.vdd_scale
            * scenario.vdd_scale
            * self.inner.dynamic_w[block];
        dynamic * (((t - tech.t_ref) / self.theta_k).exp() - 1.0)
    }
}

impl ScenarioPowerModel for BiasedTechPower {
    fn block_power(
        &self,
        scenario: &Scenario,
        tech: &Technology,
        block: usize,
        temperature_k: f64,
    ) -> f64 {
        self.inner.block_power(scenario, tech, block, temperature_k)
            + self.bias_term(scenario, tech, block, temperature_k)
    }

    fn batched<'a>(
        &'a self,
        grid: &'a ScenarioGrid,
        default_ambient_k: f64,
        lanes: usize,
    ) -> Box<dyn BatchPowerModel + 'a> {
        Box::new(BiasedTechBatch::new(self, grid, default_ambient_k, lanes))
    }
}

/// Vectorized batch form of [`BiasedTechPower`]: the base
/// [`ScaledTechBatch`] plus one bias-correction panel per Picard step
/// (see the [module docs](self)).
struct BiasedTechBatch<'a> {
    model: &'a BiasedTechPower,
    inner: ScaledTechBatch<'a>,
    grid: &'a ScenarioGrid,
    default_ambient_k: f64,
    /// Scenario loaded in each lane (for the scalar refresh calls).
    lane_scenarios: Vec<Option<Scenario>>,
    /// `activity·vdd_scale²` per lane (the bias rides the dynamic
    /// scale).
    s_dyn: Vec<f64>,
    /// The lane technology's `T_ref`, K.
    t_ref: Vec<f64>,
    /// `1/θ`.
    theta_inv: f64,
    /// Full `n × lanes` bias exponent/exponential panels.
    x3: MultiVec,
    ex3: MultiVec,
}

impl<'a> BiasedTechBatch<'a> {
    fn new(
        model: &'a BiasedTechPower,
        grid: &'a ScenarioGrid,
        default_ambient_k: f64,
        lanes: usize,
    ) -> Self {
        let n = model.inner.dynamic_w.len();
        BiasedTechBatch {
            model,
            inner: ScaledTechBatch::new(&model.inner, grid, default_ambient_k, lanes),
            grid,
            default_ambient_k,
            lane_scenarios: vec![None; lanes],
            s_dyn: vec![0.0; lanes],
            t_ref: vec![0.0; lanes],
            theta_inv: 1.0 / model.theta_k,
            x3: MultiVec::zeros(n, lanes),
            ex3: MultiVec::zeros(n, lanes),
        }
    }
}

impl BatchPowerModel for BiasedTechBatch<'_> {
    fn begin_lane(&mut self, lane: usize, id: usize) {
        self.inner.begin_lane(lane, id);
        let s = self.grid.scenario(id, self.default_ambient_k);
        let tech = &self.grid.technologies()[s.tech_index];
        self.s_dyn[lane] = s.activity * s.vdd_scale * s.vdd_scale;
        self.t_ref[lane] = tech.t_ref;
        self.lane_scenarios[lane] = Some(s);
    }

    fn fill_powers(&mut self, temps: &MultiVec, powers: &mut MultiVec) {
        // Base Eq. 13 powers first, then the bias correction on top.
        self.inner.fill_powers(temps, powers);
        let n = temps.rows();
        let lanes = temps.lanes();
        let t_ref = &self.t_ref[..lanes];
        let theta_inv = self.theta_inv;
        for i in 0..n {
            let trow = &temps.component(i)[..lanes];
            let x3 = &mut self.x3.component_mut(i)[..lanes];
            for j in 0..lanes {
                x3[j] = (trow[j] - t_ref[j]) * theta_inv;
            }
        }
        expv::exp_into(self.x3.as_slice(), self.ex3.as_mut_slice());
        let s_dyn = &self.s_dyn[..lanes];
        for i in 0..n {
            let dw = self.model.inner.dynamic_w[i];
            let e3 = &self.ex3.component(i)[..lanes];
            let prow = &mut powers.component_mut(i)[..lanes];
            for j in 0..lanes {
                prow[j] += (s_dyn[j] * dw) * (e3[j] - 1.0);
            }
        }
    }

    fn lane_power(&self, lane: usize, block: usize, t: f64) -> Option<f64> {
        let s = self.lane_scenarios.get(lane)?.as_ref()?;
        Some(
            self.model
                .block_power(s, &self.grid.technologies()[s.tech_index], block, t),
        )
    }
    // `refresh_lane` stays the default scalar loop over `lane_power`:
    // the converged refresh matches the per-scenario oracle exactly,
    // the same contract the base model's refresh documents.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::sweep::{SweepEngine, SweepOutcome};

    fn grid() -> ScenarioGrid {
        ScenarioGrid::new(vec![Technology::cmos_120nm()])
            .vdd_scales(vec![0.9, 1.0, 1.1])
            .activities(vec![0.5, 1.0])
            .ambients_k(vec![300.0, 340.0])
    }

    #[test]
    fn bias_vanishes_at_reference_temperature() {
        let tech = Technology::cmos_120nm();
        let plan = Floorplan::paper_three_blocks();
        let flat = ScaledTechPower::area_weighted(&plan, 40.0, 8.0);
        let biased = BiasedTechPower::new(flat.clone(), 45.0);
        let s = Scenario {
            vdd_scale: 1.05,
            activity: 0.8,
            ambient_k: 300.0,
            tech_index: 0,
        };
        for block in 0..plan.blocks().len() {
            assert_eq!(
                biased.block_power(&s, &tech, block, tech.t_ref),
                flat.block_power(&s, &tech, block, tech.t_ref),
            );
        }
    }

    #[test]
    fn bias_grows_power_above_reference_and_shrinks_it_below() {
        let tech = Technology::cmos_120nm();
        let plan = Floorplan::paper_three_blocks();
        let flat = ScaledTechPower::area_weighted(&plan, 40.0, 8.0);
        let biased = BiasedTechPower::new(flat.clone(), 80.0);
        let s = Scenario {
            vdd_scale: 1.0,
            activity: 1.0,
            ambient_k: 300.0,
            tech_index: 0,
        };
        let hot = tech.t_ref + 40.0;
        let cold = tech.t_ref - 40.0;
        assert!(biased.block_power(&s, &tech, 0, hot) > flat.block_power(&s, &tech, 0, hot));
        assert!(biased.block_power(&s, &tech, 0, cold) < flat.block_power(&s, &tech, 0, cold));
    }

    #[test]
    fn huge_theta_degenerates_to_the_flat_law() {
        let tech = Technology::cmos_120nm();
        let plan = Floorplan::paper_three_blocks();
        let flat = ScaledTechPower::area_weighted(&plan, 40.0, 8.0);
        let biased = BiasedTechPower::new(flat.clone(), 1e18);
        let s = Scenario {
            vdd_scale: 1.0,
            activity: 1.0,
            ambient_k: 300.0,
            tech_index: 0,
        };
        for t in [280.0, 330.0, 380.0] {
            let a = biased.block_power(&s, &tech, 1, t);
            let b = flat.block_power(&s, &tech, 1, t);
            assert!((a - b).abs() <= 1e-12 * b.abs(), "{a} vs {b} at {t} K");
        }
    }

    #[test]
    fn bad_theta_clamps_to_the_default() {
        let plan = Floorplan::paper_three_blocks();
        let flat = ScaledTechPower::area_weighted(&plan, 40.0, 8.0);
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                BiasedTechPower::new(flat.clone(), bad).theta_k(),
                DEFAULT_BIAS_THETA_K
            );
        }
    }

    #[test]
    fn batched_sweep_matches_the_per_scenario_oracle() {
        let engine = SweepEngine::new(Floorplan::paper_three_blocks()).threads(2);
        let grid = grid();
        let model = BiasedTechPower::area_weighted(
            engine.solver().floorplan(),
            40.0,
            8.0,
            DEFAULT_BIAS_THETA_K,
        )
        .prepared_for(&grid);
        let batched = engine.run(&grid, &model);
        let oracle = engine.run_per_scenario(&grid, &model);
        assert_eq!(batched.len(), oracle.len());
        for (b, o) in batched.outcomes.iter().zip(oracle.outcomes.iter()) {
            match (b, o) {
                (
                    SweepOutcome::Converged {
                        block_temperatures: bt,
                        block_powers: bp,
                        iterations: bi,
                    },
                    SweepOutcome::Converged {
                        block_temperatures: ot,
                        block_powers: op,
                        iterations: oi,
                    },
                ) => {
                    assert_eq!(bi, oi);
                    for (x, y) in bt.iter().zip(ot) {
                        assert!((x - y).abs() < 1e-9, "temps {x} vs {y}");
                    }
                    for (x, y) in bp.iter().zip(op) {
                        assert!((x - y).abs() < 1e-9 * y.abs().max(1.0), "powers {x} vs {y}");
                    }
                }
                (b, o) => assert_eq!(
                    std::mem::discriminant(b),
                    std::mem::discriminant(o),
                    "outcome kinds diverged: {b:?} vs {o:?}"
                ),
            }
        }
    }

    #[test]
    fn biased_power_runs_away_before_the_flat_law_does() {
        // The bias adds positive feedback on the dynamic term, so at a
        // matched budget the biased model's runaway boundary sits at or
        // below the flat model's along the Vdd axis.
        let engine = SweepEngine::new(Floorplan::paper_three_blocks());
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()])
            .vdd_scales((0..12).map(|i| 1.0 + 0.25 * i as f64).collect());
        let flat = engine.uniform_tech_power(1.0, 0.2);
        let biased = BiasedTechPower::new(flat.clone(), 40.0);
        let flat_runaways = engine.run(&grid, &flat).outcomes.iter().fold(0, |n, o| {
            n + matches!(o, SweepOutcome::Runaway { .. }) as usize
        });
        let biased_runaways = engine.run(&grid, &biased).outcomes.iter().fold(0, |n, o| {
            n + matches!(o, SweepOutcome::Runaway { .. }) as usize
        });
        assert!(
            biased_runaways >= flat_runaways,
            "biased {biased_runaways} < flat {flat_runaways}"
        );
        assert!(biased_runaways > 0, "grid never ran away — widen the axis");
    }
}
