//! # ptherm-core — the DATE'05 fast concurrent power-thermal model
//!
//! From-scratch implementation of Rosselló, Canals, Bota, Keshavarzi &
//! Segura, *"A Fast Concurrent Power-Thermal Model for Sub-100nm Digital
//! ICs"*, DATE 2005. Everything in this crate is **closed-form** — that is
//! the paper's thesis: replace SPICE + numerical PDE solves with analytical
//! expressions so full-chip electro-thermal estimation fits in a design
//! loop.
//!
//! * [`leakage`] — §2: the subthreshold leakage of CMOS gates via the
//!   *transistor-stack collapsing* technique (Eqs. 3–13), generalized to
//!   series-parallel networks, plus the reconstructed prior-work baselines
//!   it is compared against (Chen'98, Gu'96, no-stack-effect),
//! * [`thermal`] — §3: closed-form thermal profiles of rectangular heat
//!   sources (Eqs. 16–20), superposition over a floorplan (Eq. 21) and the
//!   method of images for the die boundary conditions,
//! * [`cosim`] — the "concurrent" coupling: leakage depends exponentially
//!   on temperature and temperature depends on dissipated power, so the two
//!   closed forms are iterated to a damped fixed point (with thermal-runaway
//!   detection when no fixed point exists).
//!
//! Validation lives elsewhere by design: `ptherm-spice` solves the same
//! device equations exactly, `ptherm-thermal-num` integrates the same heat
//! equation numerically, and the workspace's experiment binaries reproduce
//! the paper's Figs. 1–10 against those references.
//!
//! # Example: the concurrent estimate in five lines
//!
//! ```
//! use ptherm_core::cosim::ElectroThermalSolver;
//! use ptherm_floorplan::Floorplan;
//!
//! # fn main() -> Result<(), ptherm_core::cosim::CosimError> {
//! let solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
//! // Block power = 0.2 W of dynamic power plus leakage that doubles every
//! // 25 kelvin (a typical sub-100nm law).
//! let result = solver.solve(|_, t| 0.2 + 0.05 * ((t - 300.0) / 25.0).exp2())?;
//! assert!(result.converged);
//! # Ok(())
//! # }
//! ```

pub mod cosim;
pub mod leakage;
pub mod thermal;

pub use cosim::{
    CosimError, CosimResult, ElectroThermalSolver, MapOutcome, MapReport, Scenario, ScenarioGrid,
    SweepEngine, SweepOutcome, SweepReport, ThermalOperator, Workspace,
};
pub use leakage::GateLeakageModel;
pub use thermal::{MapOperator, MapWorkspace, ThermalModel};
