//! Gate-level OFF current: Eq. (13) plus the network rules of §2.1.1.
//!
//! For a given input vector the blocking network of a static CMOS gate is
//! reduced to one equivalent transistor:
//!
//! * an OFF chain collapses via [`CollapseParams::collapse_chain`],
//! * parallel OFF chains add their effective widths,
//! * an OFF chain in parallel with an ON chain is *discarded* (the ON chain
//!   dominates conduction — the paper's rule),
//! * ON transistors in series are transparent ("considered part of the
//!   internal nodes").
//!
//! The paper spells this out for chains of single transistors; the
//! recursive extension to arbitrary series-parallel trees (needed for
//! AOI/OAI cells) reduces every sub-network bottom-up to an equivalent
//! width first, then collapses the enclosing chain — each step uses only
//! the paper's two primitive rules.

use crate::leakage::collapse::CollapseParams;
use ptherm_netlist::cell::BindCellError;
use ptherm_netlist::{BoundNetwork, BoundNode, Cell};
use ptherm_tech::constants::thermal_voltage;
use ptherm_tech::{Polarity, Technology};
use std::fmt;

/// Error produced by the gate-level model.
#[derive(Debug, Clone, PartialEq)]
pub enum LeakageError {
    /// The network conducts — it has no OFF current to compute.
    NetworkConducts,
    /// Binding the cell to the vector failed (arity, complementarity).
    Bind(BindCellError),
}

impl fmt::Display for LeakageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeakageError::NetworkConducts => {
                write!(f, "network conducts; no OFF current to estimate")
            }
            LeakageError::Bind(e) => write!(f, "cannot bind cell: {e}"),
        }
    }
}

impl std::error::Error for LeakageError {}

impl From<BindCellError> for LeakageError {
    fn from(e: BindCellError) -> Self {
        LeakageError::Bind(e)
    }
}

/// The paper's analytical gate-leakage estimator, bound to one technology.
///
/// # Example
///
/// ```
/// use ptherm_core::leakage::GateLeakageModel;
/// use ptherm_netlist::cells;
/// use ptherm_tech::Technology;
///
/// # fn main() -> Result<(), ptherm_core::leakage::LeakageError> {
/// let tech = Technology::cmos_120nm();
/// let model = GateLeakageModel::new(&tech);
/// let nand2 = cells::nand(2, &tech);
/// // The all-low vector leaves a 2-deep OFF stack: lowest leakage state.
/// let i00 = model.gate_off_current(&nand2, &[false, false], 300.0)?;
/// let i10 = model.gate_off_current(&nand2, &[true, false], 300.0)?;
/// assert!(i10 > i00);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GateLeakageModel<'a> {
    tech: &'a Technology,
}

impl<'a> GateLeakageModel<'a> {
    /// Binds the model to a technology kit.
    pub fn new(tech: &'a Technology) -> Self {
        GateLeakageModel { tech }
    }

    /// The technology this model evaluates.
    pub fn technology(&self) -> &Technology {
        self.tech
    }

    /// Effective width of a bound network, or `None` when it conducts.
    ///
    /// This is the recursive series-parallel collapse described in the
    /// module docs.
    pub fn effective_width(&self, network: &BoundNetwork, temperature_k: f64) -> Option<f64> {
        let params = CollapseParams::from_mos(self.tech.mos(network.polarity()), self.tech.vdd);
        effective_width_node(network.root(), &params, temperature_k)
    }

    /// OFF current of an all-OFF nMOS stack (widths bottom → top) — the
    /// exact configuration of the paper's Figs. 3 and 8.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain or non-positive widths (programming
    /// errors, mirroring [`CollapseParams::collapse_chain`]).
    pub fn stack_off_current(&self, widths: &[f64], temperature_k: f64) -> f64 {
        let params = CollapseParams::from_mos(&self.tech.nmos, self.tech.vdd);
        let w_eff = params.collapse_chain(widths, temperature_k);
        self.equivalent_off_current(w_eff, Polarity::Nmos, temperature_k)
    }

    /// Eq. (13): the OFF current of the equivalent transistor of width
    /// `w_eff` across the full rail.
    pub fn equivalent_off_current(
        &self,
        w_eff: f64,
        polarity: Polarity,
        temperature_k: f64,
    ) -> f64 {
        let p = self.tech.mos(polarity);
        let vt = thermal_voltage(temperature_k);
        let vth0 = p.vt0 - p.k_t * (temperature_k - self.tech.t_ref);
        (w_eff / p.l)
            * p.i0
            * (temperature_k / self.tech.t_ref).powi(2)
            * (-vth0 / (p.n * vt)).exp()
            * (1.0 - (-self.tech.vdd / vt).exp())
    }

    /// OFF current of a blocking bound network.
    ///
    /// # Errors
    ///
    /// [`LeakageError::NetworkConducts`] when the network has an all-ON
    /// path.
    pub fn network_off_current(
        &self,
        network: &BoundNetwork,
        temperature_k: f64,
    ) -> Result<f64, LeakageError> {
        let w_eff = self
            .effective_width(network, temperature_k)
            .ok_or(LeakageError::NetworkConducts)?;
        Ok(self.equivalent_off_current(w_eff, network.polarity(), temperature_k))
    }

    /// OFF current of a gate for one input vector (through its blocking
    /// network).
    ///
    /// # Errors
    ///
    /// See [`LeakageError`].
    pub fn gate_off_current(
        &self,
        cell: &Cell,
        vector: &[bool],
        temperature_k: f64,
    ) -> Result<f64, LeakageError> {
        let blocking = cell.bound_blocking(vector)?;
        self.network_off_current(&blocking, temperature_k)
    }

    /// Static power of a gate at one vector: `P = I_OFF · V_DD`.
    ///
    /// # Errors
    ///
    /// See [`LeakageError`].
    pub fn gate_static_power(
        &self,
        cell: &Cell,
        vector: &[bool],
        temperature_k: f64,
    ) -> Result<f64, LeakageError> {
        Ok(self.gate_off_current(cell, vector, temperature_k)? * self.tech.vdd)
    }

    /// Static power averaged over all `2^n` input vectors with equal
    /// probability — the state-agnostic per-gate estimate used in
    /// block-level roll-ups.
    ///
    /// # Errors
    ///
    /// See [`LeakageError`].
    pub fn gate_average_static_power(
        &self,
        cell: &Cell,
        temperature_k: f64,
    ) -> Result<f64, LeakageError> {
        let n = cell.inputs().len();
        let mut acc = 0.0;
        let count = 1u64 << n;
        for bits in 0..count {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            acc += self.gate_static_power(cell, &v, temperature_k)?;
        }
        Ok(acc / count as f64)
    }

    /// Static power with per-input one-probabilities: each input `i` is 1
    /// with probability `p1[i]` independently, and the vector-dependent
    /// leakage is averaged under that distribution. This is the standard
    /// signal-probability refinement over the uniform average (e.g. inputs
    /// held low in standby make deep stacks far more likely).
    ///
    /// # Errors
    ///
    /// [`LeakageError::Bind`] when `p1.len()` differs from the cell arity
    /// (reported as a wrong-arity bind error), plus the usual conditions.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn gate_static_power_weighted(
        &self,
        cell: &Cell,
        p1: &[f64],
        temperature_k: f64,
    ) -> Result<f64, LeakageError> {
        let n = cell.inputs().len();
        if p1.len() != n {
            return Err(LeakageError::Bind(BindCellError::WrongArity {
                expected: n,
                found: p1.len(),
            }));
        }
        assert!(
            p1.iter().all(|&p| (0.0..=1.0).contains(&p)),
            "probabilities must be in [0, 1]"
        );
        let mut acc = 0.0;
        for bits in 0..(1u64 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let weight: f64 = v
                .iter()
                .zip(p1)
                .map(|(&b, &p)| if b { p } else { 1.0 - p })
                .product();
            if weight == 0.0 {
                continue;
            }
            acc += weight * self.gate_static_power(cell, &v, temperature_k)?;
        }
        Ok(acc)
    }

    /// Worst-case (maximum over vectors) static power of a gate.
    ///
    /// # Errors
    ///
    /// See [`LeakageError`].
    pub fn gate_worst_static_power(
        &self,
        cell: &Cell,
        temperature_k: f64,
    ) -> Result<f64, LeakageError> {
        let n = cell.inputs().len();
        let mut worst: f64 = 0.0;
        for bits in 0..(1u64 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            worst = worst.max(self.gate_static_power(cell, &v, temperature_k)?);
        }
        Ok(worst)
    }
}

/// Recursive effective width; `None` = the sub-network conducts.
fn effective_width_node(
    node: &BoundNode,
    params: &CollapseParams,
    temperature_k: f64,
) -> Option<f64> {
    match node {
        BoundNode::Device { width, gate_on } => {
            if *gate_on {
                None
            } else {
                Some(*width)
            }
        }
        BoundNode::Parallel(children) => {
            let mut sum = 0.0;
            for child in children {
                match effective_width_node(child, params, temperature_k) {
                    // An ON branch short-circuits the whole parallel group:
                    // OFF siblings are discarded (paper §2.1.1).
                    None => return None,
                    Some(w) => sum += w,
                }
            }
            Some(sum)
        }
        BoundNode::Series(children) => {
            // ON sub-networks are transparent; the remaining OFF
            // equivalents form a chain ordered bottom -> top.
            let chain: Vec<f64> = children
                .iter()
                .filter_map(|c| effective_width_node(c, params, temperature_k))
                .collect();
            if chain.is_empty() {
                return None;
            }
            Some(params.collapse_chain(&chain, temperature_k))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_netlist::{cells, Network};

    fn tech() -> Technology {
        Technology::cmos_120nm()
    }

    #[test]
    fn stack_current_decreases_with_depth() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let mut last = f64::INFINITY;
        for n in 1..=4 {
            let i = m.stack_off_current(&vec![1e-6; n], 300.0);
            assert!(i < last);
            last = i;
        }
    }

    #[test]
    fn nand_all_low_is_min_leakage_vector() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let g = cells::nand(3, &t);
        let mut currents = Vec::new();
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            currents.push((v.clone(), m.gate_off_current(&g, &v, 300.0).unwrap()));
        }
        let (min_v, _) = currents
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .unwrap()
            .clone();
        assert_eq!(min_v, vec![false, false, false]);
    }

    #[test]
    fn parallel_off_chains_add_widths() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let par = Network::Parallel(vec![Network::device(1e-6, 0), Network::device(2e-6, 1)]);
        let bound = BoundNetwork::pulldown(&par, &[false, false]);
        let w = m.effective_width(&bound, 300.0).unwrap();
        assert!((w - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn on_branch_discards_parallel_off_chain() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let par = Network::Parallel(vec![Network::device(1e-6, 0), Network::device(2e-6, 1)]);
        let bound = BoundNetwork::pulldown(&par, &[true, false]);
        assert_eq!(m.effective_width(&bound, 300.0), None);
    }

    #[test]
    fn on_series_devices_are_transparent() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let series = Network::Series(vec![
            Network::device(1e-6, 0),
            Network::device(1e-6, 1),
            Network::device(1e-6, 2),
        ]);
        // Middle device ON: effective 2-stack.
        let mixed = BoundNetwork::pulldown(&series, &[false, true, false]);
        let all_off = BoundNetwork::pulldown(&series, &[false, false, false]);
        let w_mixed = m.effective_width(&mixed, 300.0).unwrap();
        let w_all = m.effective_width(&all_off, 300.0).unwrap();
        assert!(w_mixed > w_all, "2-stack must out-leak 3-stack");
        // And exactly equals a plain 2-chain collapse.
        let params = CollapseParams::from_mos(&t.nmos, t.vdd);
        let w2 = params.collapse_chain(&[1e-6, 1e-6], 300.0);
        assert!((w_mixed - w2).abs() / w2 < 1e-12);
    }

    #[test]
    fn conducting_network_is_an_error() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let g = cells::nand(2, &t);
        let (down, _) = g.bind_both(&[true, true]).unwrap();
        assert!(matches!(
            m.network_off_current(&down, 300.0),
            Err(LeakageError::NetworkConducts)
        ));
    }

    #[test]
    fn leakage_grows_exponentially_with_temperature() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let g = cells::nand(2, &t);
        let cold = m.gate_off_current(&g, &[false, false], 298.15).unwrap();
        let hot = m.gate_off_current(&g, &[false, false], 398.15).unwrap();
        assert!(hot / cold > 10.0, "ratio = {}", hot / cold);
    }

    #[test]
    fn average_and_worst_bracket_each_vector() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let g = cells::aoi21(&t);
        let avg = m.gate_average_static_power(&g, 300.0).unwrap();
        let worst = m.gate_worst_static_power(&g, 300.0).unwrap();
        assert!(worst >= avg);
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let p = m.gate_static_power(&g, &v, 300.0).unwrap();
            assert!(p <= worst * (1.0 + 1e-12));
        }
    }

    #[test]
    fn pullup_blocking_network_uses_pmos() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let g = cells::nor(2, &t);
        // Output low (any input high): pull-up (pMOS series stack) blocks.
        let i = m.gate_off_current(&g, &[true, true], 300.0).unwrap();
        assert!(i > 0.0);
        // NOR at 11 has a 2-deep pMOS OFF stack; at 10 only one pMOS is
        // OFF (the other is ON and transparent)... in the series pull-up
        // both devices are in series, so 10 leaves a 1-deep stack:
        let i10 = m.gate_off_current(&g, &[true, false], 300.0).unwrap();
        assert!(i10 > i, "single OFF device must out-leak the 2-stack");
    }

    #[test]
    fn wrong_arity_is_reported() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let g = cells::nand(2, &t);
        assert!(matches!(
            m.gate_off_current(&g, &[true], 300.0),
            Err(LeakageError::Bind(_))
        ));
    }

    #[test]
    fn weighted_power_interpolates_between_vectors() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let g = cells::nand(2, &t);
        // Degenerate probabilities reproduce single vectors.
        let p00 = m
            .gate_static_power_weighted(&g, &[0.0, 0.0], 300.0)
            .unwrap();
        let exact00 = m.gate_static_power(&g, &[false, false], 300.0).unwrap();
        assert!((p00 - exact00).abs() / exact00 < 1e-12);
        // Uniform probabilities reproduce the uniform average.
        let half = m
            .gate_static_power_weighted(&g, &[0.5, 0.5], 300.0)
            .unwrap();
        let avg = m.gate_average_static_power(&g, 300.0).unwrap();
        assert!((half - avg).abs() / avg < 1e-12);
        // Inputs mostly low bias toward the stacked (low-leakage) state.
        let low = m
            .gate_static_power_weighted(&g, &[0.05, 0.05], 300.0)
            .unwrap();
        assert!(low < avg);
    }

    #[test]
    fn weighted_power_validates_inputs() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let g = cells::nand(2, &t);
        assert!(matches!(
            m.gate_static_power_weighted(&g, &[0.5], 300.0),
            Err(LeakageError::Bind(_))
        ));
        let panics = std::panic::catch_unwind(|| {
            let _ = m.gate_static_power_weighted(&g, &[0.5, 1.5], 300.0);
        });
        assert!(panics.is_err(), "out-of-range probability must panic");
    }
}
