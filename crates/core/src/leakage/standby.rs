//! Standby-vector optimization — the classic *application* of a
//! state-dependent leakage model.
//!
//! The paper's abstract promises "estimation **and optimization**"; the
//! canonical optimization enabled by a vector-dependent leakage model is
//! input-vector control: park idle logic at the input vector that leaves
//! the deepest OFF stacks. Because the model is closed-form, exhaustive
//! per-cell search is trivial, and block-level gains follow by summing the
//! per-group savings.

use crate::leakage::{GateLeakageModel, LeakageError};
use ptherm_netlist::circuit::Circuit;
use ptherm_netlist::Cell;

/// Result of a per-cell standby search.
#[derive(Debug, Clone, PartialEq)]
pub struct StandbyVector {
    /// The minimum-leakage input vector.
    pub vector: Vec<bool>,
    /// Static power at that vector, W.
    pub best_power: f64,
    /// Static power at the worst vector, W.
    pub worst_power: f64,
    /// Static power averaged over all vectors, W.
    pub average_power: f64,
}

impl StandbyVector {
    /// Savings of parking at the best vector instead of an average state.
    pub fn savings_vs_average(&self) -> f64 {
        1.0 - self.best_power / self.average_power
    }

    /// Spread between the leakiest and the quietest state.
    pub fn worst_to_best_ratio(&self) -> f64 {
        self.worst_power / self.best_power
    }
}

/// Exhaustively finds the minimum-leakage input vector of a cell at
/// `temperature_k`.
///
/// # Errors
///
/// Propagates [`LeakageError`] from the per-vector evaluation.
pub fn best_standby_vector(
    model: &GateLeakageModel<'_>,
    cell: &Cell,
    temperature_k: f64,
) -> Result<StandbyVector, LeakageError> {
    let n = cell.inputs().len();
    let mut best: Option<(Vec<bool>, f64)> = None;
    let mut worst = f64::NEG_INFINITY;
    let mut total = 0.0;
    let count = 1u64 << n;
    for bits in 0..count {
        let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let p = model.gate_static_power(cell, &v, temperature_k)?;
        total += p;
        worst = worst.max(p);
        if best.as_ref().is_none_or(|(_, bp)| p < *bp) {
            best = Some((v, p));
        }
    }
    let (vector, best_power) = best.expect("cells have at least one vector");
    Ok(StandbyVector {
        vector,
        best_power,
        worst_power: worst,
        average_power: total / count as f64,
    })
}

/// Block-level standby audit: per gate group, the best standby state and
/// the block totals in the average vs. parked conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct StandbyReport {
    /// Per-group results, in circuit group order: (cell name, instance
    /// count, per-gate standby result).
    pub groups: Vec<(String, usize, StandbyVector)>,
    /// Block static power with gates in average states, W.
    pub average_power: f64,
    /// Block static power with every gate parked at its best vector, W.
    pub parked_power: f64,
}

impl StandbyReport {
    /// Fractional block-level saving from input-vector control.
    pub fn savings(&self) -> f64 {
        1.0 - self.parked_power / self.average_power
    }
}

/// Audits a whole circuit for standby-vector savings at `temperature_k`.
///
/// # Errors
///
/// Propagates [`LeakageError`].
pub fn standby_report(
    model: &GateLeakageModel<'_>,
    circuit: &Circuit,
    temperature_k: f64,
) -> Result<StandbyReport, LeakageError> {
    let mut groups = Vec::with_capacity(circuit.groups.len());
    let mut average_power = 0.0;
    let mut parked_power = 0.0;
    for g in &circuit.groups {
        let sv = best_standby_vector(model, &g.cell, temperature_k)?;
        average_power += sv.average_power * g.count as f64;
        parked_power += sv.best_power * g.count as f64;
        groups.push((g.cell.name().to_owned(), g.count, sv));
    }
    Ok(StandbyReport {
        groups,
        average_power,
        parked_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_netlist::cells;
    use ptherm_tech::Technology;

    #[test]
    fn nand_parks_all_low() {
        let tech = Technology::cmos_120nm();
        let model = GateLeakageModel::new(&tech);
        for n in 2..=4 {
            let cell = cells::nand(n, &tech);
            let sv = best_standby_vector(&model, &cell, 300.0).unwrap();
            assert_eq!(sv.vector, vec![false; n], "nand{n} parks with a full stack");
            assert!(sv.worst_to_best_ratio() > 3.0);
        }
    }

    #[test]
    fn nor_parks_all_high() {
        // NOR's pull-up is the series stack: all-high inputs block it
        // deepest.
        let tech = Technology::cmos_120nm();
        let model = GateLeakageModel::new(&tech);
        let cell = cells::nor(3, &tech);
        let sv = best_standby_vector(&model, &cell, 300.0).unwrap();
        assert_eq!(sv.vector, vec![true; 3]);
    }

    #[test]
    fn report_totals_are_consistent() {
        let tech = Technology::cmos_120nm();
        let model = GateLeakageModel::new(&tech);
        let circuit = Circuit::random("blk", 5, 400, 1e9, &tech);
        let report = standby_report(&model, &circuit, 300.0).unwrap();
        assert!(report.parked_power < report.average_power);
        assert!(report.savings() > 0.1, "savings {:.3}", report.savings());
        // Average totals match the circuit-level roll-up.
        let direct = crate::leakage::circuit::circuit_static_power(&tech, &circuit, 300.0).unwrap();
        assert!((report.average_power - direct).abs() / direct < 1e-12);
    }

    #[test]
    fn savings_shrink_when_hot() {
        // Hotter devices weaken the stack effect, so vector control saves
        // relatively less at high temperature (still substantial).
        let tech = Technology::cmos_120nm();
        let model = GateLeakageModel::new(&tech);
        let cell = cells::nand(3, &tech);
        let cold = best_standby_vector(&model, &cell, 280.0).unwrap();
        let hot = best_standby_vector(&model, &cell, 400.0).unwrap();
        assert!(hot.worst_to_best_ratio() < cold.worst_to_best_ratio());
    }

    #[test]
    fn inverter_has_trivial_spread() {
        let tech = Technology::cmos_120nm();
        let model = GateLeakageModel::new(&tech);
        let sv = best_standby_vector(&model, &cells::inv(&tech), 300.0).unwrap();
        // Only two states; both leak through a single device — the spread
        // is the nMOS/pMOS asymmetry, not a stack effect.
        assert!(sv.worst_to_best_ratio() < 10.0);
        assert!(sv.worst_to_best_ratio() > 1.0);
    }
}
