//! §2 of the paper: compact analytical static-power estimation.
//!
//! * [`collapse`] — the two-transistor collapsing step (Eqs. 3–10) and the
//!   full-chain recursion (Eqs. 11–12),
//! * [`gate`] — [`GateLeakageModel`]: per-gate OFF current (Eq. 13) for any
//!   input vector, generalized to series-parallel networks,
//! * [`baselines`] — reconstructions of the prior models the paper compares
//!   against in Fig. 8,
//! * [`circuit`] — block-level static power roll-ups over gate-count
//!   circuits,
//! * [`sensitivity`] — closed-form temperature sensitivity and the
//!   thermal-runaway stability margin (extension),
//! * [`standby`] — minimum-leakage input-vector search, the classic
//!   optimization the model enables (extension).

pub mod baselines;
pub mod circuit;
pub mod collapse;
pub mod gate;
pub mod sensitivity;
pub mod standby;

pub use collapse::CollapseParams;
pub use gate::{GateLeakageModel, LeakageError};
