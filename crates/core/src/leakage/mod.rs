//! §2 of the paper: compact analytical static-power estimation.
//!
//! * [`collapse`] — the two-transistor collapsing step (Eqs. 3–10) and the
//!   full-chain recursion (Eqs. 11–12),
//! * [`gate`] — [`GateLeakageModel`]: per-gate OFF current (Eq. 13) for any
//!   input vector, generalized to series-parallel networks,
//! * [`baselines`] — reconstructions of the prior models the paper compares
//!   against in Fig. 8,
//! * [`circuit`] — block-level static power roll-ups over gate-count
//!   circuits,
//! * [`sensitivity`] — closed-form temperature sensitivity and the
//!   thermal-runaway stability margin (extension),
//! * [`standby`] — minimum-leakage input-vector search, the classic
//!   optimization the model enables (extension).
//!
//! The equation-by-equation map from the paper to this code (with
//! file-and-line pointers) lives in `docs/EQUATIONS.md` at the repository
//! root.
//!
//! # Example: the stack effect through Eq. 13
//!
//! ```
//! use ptherm_core::leakage::GateLeakageModel;
//! use ptherm_netlist::cells;
//! use ptherm_tech::Technology;
//!
//! let tech = Technology::cmos_120nm();
//! let model = GateLeakageModel::new(&tech);
//! let nand2 = cells::nand(2, &tech);
//! // Two series-OFF transistors leak far less than one: the stack effect
//! // the collapsing technique quantifies.
//! let both_off = model.gate_off_current(&nand2, &[false, false], 300.0).unwrap();
//! let one_off = model.gate_off_current(&nand2, &[false, true], 300.0).unwrap();
//! assert!(both_off < 0.5 * one_off);
//! ```

pub mod baselines;
pub mod circuit;
pub mod collapse;
pub mod gate;
pub mod sensitivity;
pub mod standby;

pub use collapse::CollapseParams;
pub use gate::{GateLeakageModel, LeakageError};
