//! Analytical temperature sensitivity of the leakage model — and the
//! closed-form thermal-runaway margin it enables.
//!
//! *Extension beyond the paper.* The paper stops at solving the coupled
//! fixed point; a CAD tool also needs to know **how stable** that point is.
//! Because Eq. (13) is closed-form, its logarithmic temperature derivative
//! is too:
//!
//! ```text
//! d ln I / dT = 2/T + K_T/(n·V_T) + (V_T0 − K_T·(T − T_ref))/(n·V_T·T)
//! ```
//!
//! (the three terms: the `(T/T_ref)²` prefactor, the threshold shift, and
//! the thermal-voltage growth in the exponent — the small `V_DD/V_T`
//! factor's derivative is negligible and omitted). The damped Picard loop
//! of [`crate::cosim`] converges iff the loop gain
//! `g = R_th,eff · dP/dT < 1`; `runaway_margin` evaluates `1 − g` at an
//! operating point, giving designers the classic electro-thermal stability
//! criterion without any numerics.

use ptherm_tech::constants::thermal_voltage;
use ptherm_tech::MosParams;

/// Logarithmic temperature sensitivity `d ln I_OFF / dT` (1/K) of the
/// equivalent-transistor current (Eq. 13) at temperature `t_k`.
pub fn leakage_log_sensitivity(params: &MosParams, t_ref: f64, t_k: f64) -> f64 {
    let vt = thermal_voltage(t_k);
    let vth = params.vt0 - params.k_t * (t_k - t_ref);
    2.0 / t_k + params.k_t / (params.n * vt) + vth / (params.n * vt * t_k)
}

/// Temperature rise that multiplies leakage by `e` (the "e-folding"
/// temperature), K. A compact way to express how violent the exponential
/// is at an operating point.
pub fn leakage_efolding_temperature(params: &MosParams, t_ref: f64, t_k: f64) -> f64 {
    1.0 / leakage_log_sensitivity(params, t_ref, t_k)
}

/// Stability margin `1 − R_th·dP/dT` of an electro-thermal operating point.
///
/// * `rth_eff` — effective thermal resistance seen by the block, K/W
///   (rise per watt at its own centre; obtainable from the thermal model
///   by differencing),
/// * `static_power` — leakage power at the operating point, W,
/// * `sensitivity` — `d ln P_static / dT` there, 1/K (static power shares
///   the current's sensitivity since `P = I·V_DD`).
///
/// Margin > 0: stable fixed point (Picard converges); margin ≤ 0: thermal
/// runaway — matching [`crate::cosim::CosimError::ThermalRunaway`].
pub fn runaway_margin(rth_eff: f64, static_power: f64, sensitivity: f64) -> f64 {
    1.0 - rth_eff * static_power * sensitivity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakage::GateLeakageModel;
    use ptherm_tech::{Polarity, Technology};

    #[test]
    fn analytic_sensitivity_matches_finite_differences() {
        let tech = Technology::cmos_120nm();
        let model = GateLeakageModel::new(&tech);
        for t in [280.0, 300.0, 350.0, 400.0] {
            let h = 0.01;
            let ip = model.equivalent_off_current(1e-6, Polarity::Nmos, t + h);
            let im = model.equivalent_off_current(1e-6, Polarity::Nmos, t - h);
            let fd = (ip.ln() - im.ln()) / (2.0 * h);
            let analytic = leakage_log_sensitivity(&tech.nmos, tech.t_ref, t);
            assert!(
                (analytic - fd).abs() / fd < 0.02,
                "T = {t}: analytic {analytic:.5} vs fd {fd:.5}"
            );
        }
    }

    #[test]
    fn sensitivity_decreases_with_temperature() {
        // The exponential softens as V_T grows and V_TH shrinks: hot
        // devices are (relatively) less temperature-sensitive.
        let tech = Technology::cmos_120nm();
        let cold = leakage_log_sensitivity(&tech.nmos, tech.t_ref, 280.0);
        let hot = leakage_log_sensitivity(&tech.nmos, tech.t_ref, 400.0);
        assert!(cold > hot);
        // Typical magnitude: leakage doubles every 8-15 K near room temp.
        let doubling = std::f64::consts::LN_2 / cold;
        assert!(
            (5.0..25.0).contains(&doubling),
            "doubling every {doubling:.1} K"
        );
    }

    #[test]
    fn efolding_temperature_is_inverse_sensitivity() {
        let tech = Technology::cmos_120nm();
        let s = leakage_log_sensitivity(&tech.nmos, tech.t_ref, 320.0);
        let e = leakage_efolding_temperature(&tech.nmos, tech.t_ref, 320.0);
        assert!((s * e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn margin_sign_predicts_cosim_outcome() {
        use crate::cosim::ElectroThermalSolver;
        use ptherm_floorplan::Floorplan;

        let plan = Floorplan::paper_three_blocks();
        let solver = ElectroThermalSolver::new(plan.clone());

        // Effective self-resistance of block 0 by differencing the model
        // (other blocks zeroed so only the self-term is measured).
        let mut warm = plan.clone();
        warm.set_power(0, 1.0);
        warm.set_power(1, 0.0);
        warm.set_power(2, 0.0);
        let m = crate::thermal::ThermalModel::with_image_orders(&warm, 2, 9);
        let rth_eff = m.temperature_rise(plan.blocks()[0].cx, plan.blocks()[0].cy);
        assert!(rth_eff > 1.0 && rth_eff < 50.0, "rth_eff = {rth_eff}");

        // Synthetic leakage: P = p0·2^((T-300)/d), sensitivity ln2/d. The
        // margin must be evaluated at the OPERATING point (power grows as
        // the block heats), so the test cases are chosen far from the
        // boundary where the cold-power margin is already decisive.
        let run = |p0: f64, d: f64| solver.solve(move |_, t| p0 * ((t - 300.0) / d).exp2());
        for (p0, d, expect_stable) in [(0.05f64, 20.0f64, true), (1.0, 4.0, false)] {
            let sens = std::f64::consts::LN_2 / d;
            let margin = runaway_margin(rth_eff, p0, sens);
            let converged = run(p0, d).is_ok();
            assert_eq!(
                converged, expect_stable,
                "p0 {p0}, d {d}: margin {margin:.2}"
            );
            if expect_stable {
                assert!(
                    margin > 0.5,
                    "stable case should show a wide margin: {margin:.2}"
                );
            } else {
                assert!(margin < 0.5, "runaway case margin: {margin:.2}");
            }
        }
    }
}
