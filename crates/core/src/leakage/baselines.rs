//! Reconstructions of the prior leakage models the paper compares against.
//!
//! None of these papers ship reference code, so each baseline is rebuilt
//! from its stated assumptions (documented per function). They exist to
//! reproduce the *relative* story of the paper's Fig. 8: all stack-aware
//! models track the exact solution, the proposed model tracks it best, and
//! ignoring the stack effect altogether is catastrophically wrong.

use crate::leakage::collapse::CollapseParams;
use crate::leakage::GateLeakageModel;
use ptherm_tech::constants::thermal_voltage;
use ptherm_tech::{Polarity, Technology};

/// Chen, Johnson, Wei & Roy, ISLPED'98 \[8\]: stack model assuming
/// `V_DS ≫ V_T` for every stacked device — i.e. the `(1 − e^{−V_DS/V_T})`
/// factor is dropped when solving for the internal node voltages. Body
/// effect and DIBL are retained. This is the paper's own characterization
/// of \[8\] ("can be applied to gates with an indeterminate number of
/// serially connected transistors").
///
/// Implementation: the collapsing recursion with the case-(a) node drop
/// (Eq. 7) instead of the empirical bridge (Eq. 10).
///
/// # Panics
///
/// Panics on an empty chain or non-positive widths.
pub fn chen98_stack_current(tech: &Technology, widths: &[f64], temperature_k: f64) -> f64 {
    assert!(!widths.is_empty(), "cannot collapse an empty chain");
    let params = CollapseParams::from_mos(&tech.nmos, tech.vdd);
    let vt = thermal_voltage(temperature_k);
    let mut w_eq = *widths.last().expect("non-empty");
    for &w_below in widths[..widths.len() - 1].iter().rev() {
        let x = params.delta_v_case_a(w_eq, w_below, temperature_k);
        w_eq *= (-(1.0 + params.gamma_b + params.sigma) * x / (params.n * vt)).exp();
    }
    GateLeakageModel::new(tech).equivalent_off_current(w_eq, Polarity::Nmos, temperature_k)
}

/// Gu & Elmasry, JSSC'96 \[7\]: valid only for stacks of **up to three**
/// devices, `V_DS ≫ V_T` assumed, and (per the simpler analysis of that
/// era) no body-effect contribution to the internal node drops.
///
/// Returns `None` for deeper stacks — exactly the limitation the paper
/// calls out.
///
/// # Panics
///
/// Panics on an empty chain or non-positive widths.
pub fn gu96_stack_current(tech: &Technology, widths: &[f64], temperature_k: f64) -> Option<f64> {
    assert!(!widths.is_empty(), "cannot collapse an empty chain");
    if widths.len() > 3 {
        return None;
    }
    let mut params = CollapseParams::from_mos(&tech.nmos, tech.vdd);
    params.gamma_b = 0.0;
    let vt = thermal_voltage(temperature_k);
    let mut w_eq = *widths.last().expect("non-empty");
    for &w_below in widths[..widths.len() - 1].iter().rev() {
        let x = params.delta_v_case_a(w_eq, w_below, temperature_k);
        w_eq *= (-(1.0 + params.gamma_b + params.sigma) * x / (params.n * vt)).exp();
    }
    Some(GateLeakageModel::new(tech).equivalent_off_current(w_eq, Polarity::Nmos, temperature_k))
}

/// No stack effect at all: the chain leaks like its bottom device across
/// the full rail. The naive estimate that motivated the stack literature.
///
/// # Panics
///
/// Panics on an empty chain.
pub fn naive_stack_current(tech: &Technology, widths: &[f64], temperature_k: f64) -> f64 {
    assert!(!widths.is_empty(), "cannot collapse an empty chain");
    GateLeakageModel::new(tech).equivalent_off_current(widths[0], Polarity::Nmos, temperature_k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::cmos_120nm()
    }

    #[test]
    fn all_models_agree_for_single_device() {
        let t = tech();
        let m = GateLeakageModel::new(&t);
        let w = [1e-6];
        let proposed = m.stack_off_current(&w, 300.0);
        let chen = chen98_stack_current(&t, &w, 300.0);
        let gu = gu96_stack_current(&t, &w, 300.0).unwrap();
        let naive = naive_stack_current(&t, &w, 300.0);
        for other in [chen, gu, naive] {
            assert!((proposed - other).abs() / proposed < 1e-12);
        }
    }

    #[test]
    fn baselines_capture_the_stack_effect() {
        let t = tech();
        let w = vec![1e-6; 3];
        let naive = naive_stack_current(&t, &w, 300.0);
        let chen = chen98_stack_current(&t, &w, 300.0);
        let proposed = GateLeakageModel::new(&t).stack_off_current(&w, 300.0);
        // Stack-aware estimates are far below the naive one.
        assert!(chen < 0.3 * naive);
        assert!(proposed < 0.3 * naive);
    }

    #[test]
    fn chen_overestimates_relative_to_proposed_for_equal_stacks() {
        // Dropping the (1 − e^{−x/VT}) factor underestimates the node drop
        // x, which under-shields the upper devices: Chen'98 reads higher
        // than the full empirical bridge.
        let t = tech();
        let w = vec![1e-6; 4];
        let chen = chen98_stack_current(&t, &w, 300.0);
        let proposed = GateLeakageModel::new(&t).stack_off_current(&w, 300.0);
        assert!(
            chen > proposed,
            "chen {chen:.3e} vs proposed {proposed:.3e}"
        );
    }

    #[test]
    fn gu_is_limited_to_three_devices() {
        let t = tech();
        assert!(gu96_stack_current(&t, &[1e-6; 3], 300.0).is_some());
        assert!(gu96_stack_current(&t, &[1e-6; 4], 300.0).is_none());
    }

    #[test]
    fn gu_differs_from_chen_through_body_effect() {
        // Body effect enters both α and the shielding exponent and largely
        // cancels for deep equal stacks; the 2-stack shows the residual
        // difference most clearly (~3% at these parameters).
        let t = tech();
        let w = vec![1e-6; 2];
        let chen = chen98_stack_current(&t, &w, 300.0);
        let gu = gu96_stack_current(&t, &w, 300.0).unwrap();
        assert!((chen - gu).abs() / chen > 0.01, "body effect must matter");
    }
}
