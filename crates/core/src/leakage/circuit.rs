//! Block-level static power: rolling the per-gate model up over gate-count
//! circuits.
//!
//! The paper's end goal is full-chip estimation ("hundreds of millions of
//! transistors") — which is why it insists on closed forms. At block level
//! the state of every gate input is unknown, so the standard treatment
//! applies: average the vector-dependent leakage over a uniform input
//! distribution (worst-case is also provided).

use crate::leakage::{GateLeakageModel, LeakageError};
use ptherm_netlist::circuit::Circuit;
use ptherm_tech::Technology;

/// Static power of a whole circuit at `temperature_k`, watts, averaging
/// each cell's leakage over its input vectors.
///
/// # Example
///
/// ```
/// use ptherm_core::leakage::circuit::circuit_static_power;
/// use ptherm_netlist::circuit::Circuit;
/// use ptherm_tech::Technology;
///
/// let tech = Technology::cmos_120nm();
/// let circuit = Circuit::random("blk", 7, 1_000, 1.0e9, &tech);
/// let cold = circuit_static_power(&tech, &circuit, 300.0).unwrap();
/// let hot = circuit_static_power(&tech, &circuit, 380.0).unwrap();
/// // The paper's central fact: static power rises steeply with T.
/// assert!(hot > 5.0 * cold);
/// ```
///
/// # Errors
///
/// Propagates [`LeakageError`] from any cell (non-complementary cells).
pub fn circuit_static_power(
    tech: &Technology,
    circuit: &Circuit,
    temperature_k: f64,
) -> Result<f64, LeakageError> {
    let model = GateLeakageModel::new(tech);
    let mut total = 0.0;
    for group in &circuit.groups {
        let per_gate = model.gate_average_static_power(&group.cell, temperature_k)?;
        total += per_gate * group.count as f64;
    }
    Ok(total)
}

/// Worst-case static power of a whole circuit (every gate at its leakiest
/// vector simultaneously — a pessimistic but standard sign-off bound).
///
/// # Errors
///
/// Propagates [`LeakageError`].
pub fn circuit_worst_static_power(
    tech: &Technology,
    circuit: &Circuit,
    temperature_k: f64,
) -> Result<f64, LeakageError> {
    let model = GateLeakageModel::new(tech);
    let mut total = 0.0;
    for group in &circuit.groups {
        let per_gate = model.gate_worst_static_power(&group.cell, temperature_k)?;
        total += per_gate * group.count as f64;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_power_scales_with_gate_count() {
        let tech = Technology::cmos_120nm();
        let small = Circuit::random("s", 5, 100, 1e9, &tech);
        let mut big = small.clone();
        for g in &mut big.groups {
            g.count *= 3;
        }
        let p1 = circuit_static_power(&tech, &small, 300.0).unwrap();
        let p2 = circuit_static_power(&tech, &big, 300.0).unwrap();
        assert!((p2 / p1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn worst_bounds_average() {
        let tech = Technology::cmos_120nm();
        let c = Circuit::random("c", 3, 200, 1e9, &tech);
        let avg = circuit_static_power(&tech, &c, 300.0).unwrap();
        let worst = circuit_worst_static_power(&tech, &c, 300.0).unwrap();
        assert!(worst > avg);
        assert!(worst < 20.0 * avg, "worst/avg = {}", worst / avg);
    }

    #[test]
    fn hot_block_leaks_much_more() {
        let tech = Technology::cmos_120nm();
        let c = Circuit::random("c", 3, 1000, 1e9, &tech);
        let cold = circuit_static_power(&tech, &c, 298.15).unwrap();
        let hot = circuit_static_power(&tech, &c, 398.15).unwrap();
        assert!(hot / cold > 10.0);
    }

    #[test]
    fn magnitude_is_plausible_for_120nm() {
        // 10k gates at 25C: leakage in the tens-of-uW to mW range.
        let tech = Technology::cmos_120nm();
        let c = Circuit::random("c", 7, 10_000, 1e9, &tech);
        let p = circuit_static_power(&tech, &c, 298.15).unwrap();
        assert!(p > 1e-6 && p < 1e-1, "P_static = {p} W");
    }
}
