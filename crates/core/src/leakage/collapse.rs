//! The transistor-stack collapsing technique (Eqs. 3–12).
//!
//! Two series OFF transistors — widths `W_top` above `W_bot` — carry the
//! same current. Equating Eq. (1) for both (with the threshold model of
//! Eq. 2) gives a transcendental equation for the voltage drop `x` across
//! the *bottom* device of the pair:
//!
//! ```text
//! e^{α·x/V_T} · (1 − e^{−x/V_T}) = R
//! R = (W_top / W_bot) · e^{σ·V_DD/(n·V_T)},     α = (1 + γ' + 2σ) / n
//! ```
//!
//! with asymptotics `x → (V_T/α)·ln R` for `x ≫ V_T` (the paper's Eq. 7)
//! and `x → V_T·R` for `x ≪ V_T` (Eq. 8). The paper bridges the two with
//! the empirical Eq. (10); the OCR of the equation is corrupted, so it is
//! **reconstructed** here from the asymptotics (see DESIGN.md §2):
//!
//! ```text
//! x = V_T · [1 + (1/α − 1)·σ_L(f)] · ln(1 + e^f),      f = ln R
//! ```
//!
//! where `σ_L` is the logistic function. Both limits are honoured exactly
//! and the mid-range error against the exact root is below 1% for 0.12 µm
//! parameters (verified against `ptherm-spice` in the Fig. 3 reproduction).
//!
//! The pair then collapses into one equivalent transistor (Eq. 6):
//!
//! ```text
//! W_eq = W_top · e^{−(1 + γ' + σ)·x/(n·V_T)}
//! ```
//!
//! and the chain collapses by repeating from the top (Fig. 2), which is
//! algebraically identical to the paper's Eqs. (11)–(12).

use ptherm_tech::constants::thermal_voltage;
use ptherm_tech::MosParams;

/// Device-flavour parameters needed by the collapsing algebra.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollapseParams {
    /// Subthreshold slope factor `n`.
    pub n: f64,
    /// Linearized body-effect coefficient `γ'`.
    pub gamma_b: f64,
    /// DIBL coefficient `σ`.
    pub sigma: f64,
    /// Supply voltage `V_DD`, V.
    pub vdd: f64,
}

impl CollapseParams {
    /// Extracts the collapsing parameters from a device parameter set.
    pub fn from_mos(params: &MosParams, vdd: f64) -> Self {
        CollapseParams {
            n: params.n,
            gamma_b: params.gamma_b,
            sigma: params.sigma,
            vdd,
        }
    }

    /// The paper's `α = (1 + γ' + 2σ)/n` (Eq. 9).
    pub fn alpha(&self) -> f64 {
        (1.0 + self.gamma_b + 2.0 * self.sigma) / self.n
    }

    /// The exponent `f = ln[(W_top/W_bot)·e^{σ·V_DD/(n·V_T)}]` (Eq. 9).
    ///
    /// # Panics
    ///
    /// Panics if a width is non-positive.
    pub fn log_ratio(&self, w_top: f64, w_bot: f64, temperature_k: f64) -> f64 {
        assert!(w_top > 0.0 && w_bot > 0.0, "widths must be positive");
        let vt = thermal_voltage(temperature_k);
        (w_top / w_bot).ln() + self.sigma * self.vdd / (self.n * vt)
    }

    /// Empirical drain-source drop across the bottom device of the pair —
    /// the reconstruction of the paper's Eq. (10).
    pub fn delta_v(&self, w_top: f64, w_bot: f64, temperature_k: f64) -> f64 {
        let vt = thermal_voltage(temperature_k);
        let f = self.log_ratio(w_top, w_bot, temperature_k);
        let alpha = self.alpha();
        let logistic = 1.0 / (1.0 + (-f).exp());
        // ln(1 + e^f), numerically stable.
        let softplus = if f > 30.0 {
            f
        } else if f < -30.0 {
            f.exp()
        } else {
            (1.0 + f.exp()).ln()
        };
        vt * (1.0 + (1.0 / alpha - 1.0) * logistic) * softplus
    }

    /// Large-drop asymptote `x = (V_T/α)·ln R` (the paper's Eq. 7 — also
    /// the core of the Chen'98-style baselines). Clamped at zero for
    /// `R < 1`.
    pub fn delta_v_case_a(&self, w_top: f64, w_bot: f64, temperature_k: f64) -> f64 {
        let vt = thermal_voltage(temperature_k);
        let f = self.log_ratio(w_top, w_bot, temperature_k);
        (vt * f / self.alpha()).max(0.0)
    }

    /// Small-drop asymptote `x = V_T·R` (the paper's Eq. 8).
    pub fn delta_v_case_b(&self, w_top: f64, w_bot: f64, temperature_k: f64) -> f64 {
        let vt = thermal_voltage(temperature_k);
        let f = self.log_ratio(w_top, w_bot, temperature_k);
        vt * f.exp()
    }

    /// Collapses the pair into one equivalent width (Eq. 6): the `x` drop
    /// shields the upper device, shrinking it by
    /// `e^{−(1+γ'+σ)·x/(n·V_T)}`.
    pub fn collapse_pair(&self, w_top: f64, w_bot: f64, temperature_k: f64) -> f64 {
        let vt = thermal_voltage(temperature_k);
        let x = self.delta_v(w_top, w_bot, temperature_k);
        w_top * (-(1.0 + self.gamma_b + self.sigma) * x / (self.n * vt)).exp()
    }

    /// Collapses a whole OFF chain (widths ordered **bottom → top**, the
    /// paper's `T_1 … T_N`) into a single equivalent width (Eqs. 11–12).
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or contains a non-positive width.
    pub fn collapse_chain(&self, widths: &[f64], temperature_k: f64) -> f64 {
        assert!(!widths.is_empty(), "cannot collapse an empty chain");
        // Pairwise from the top (Fig. 2): W_eq represents everything above
        // the device currently being absorbed. Each collapse multiplies by
        // e^{−(1+γ'+σ)·x_i/(n·V_T)}, so the final width carries the sum of
        // the node drops — exactly Eqs. (11)–(12).
        let mut w_eq = *widths.last().expect("non-empty");
        for &w_below in widths[..widths.len() - 1].iter().rev() {
            w_eq = self.collapse_pair(w_eq, w_below, temperature_k);
        }
        w_eq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_tech::Technology;

    fn params() -> CollapseParams {
        let t = Technology::cmos_120nm();
        CollapseParams::from_mos(&t.nmos, t.vdd)
    }

    #[test]
    fn alpha_matches_formula() {
        let p = params();
        assert!((p.alpha() - (1.0 + 0.20 + 0.16) / 1.40).abs() < 1e-12);
    }

    #[test]
    fn delta_v_bridges_the_asymptotes() {
        let p = params();
        let t = 300.0;
        // Large R: wide top over narrow bottom -> case (a).
        let xa = p.delta_v(64e-6, 1e-6, t);
        let ca = p.delta_v_case_a(64e-6, 1e-6, t);
        assert!((xa - ca).abs() / ca < 0.05, "case a: {xa} vs {ca}");
        // Small R: narrow top over wide bottom -> case (b).
        let xb = p.delta_v(1e-6, 1e-5 * 2f64.powi(12), t);
        let cb = p.delta_v_case_b(1e-6, 1e-5 * 2f64.powi(12), t);
        assert!((xb - cb).abs() / cb < 0.05, "case b: {xb} vs {cb}");
    }

    #[test]
    fn delta_v_solves_the_transcendental_equation() {
        // The reconstruction must satisfy e^{αx/VT}(1−e^{−x/VT}) = R to ~1%
        // across four decades of width ratio (Fig. 3's claim).
        let p = params();
        let t = 300.0;
        let vt = thermal_voltage(t);
        for k in -6..=6 {
            let w_top = 1e-6 * 2f64.powi(k);
            let w_bot = 1e-6;
            let x = p.delta_v(w_top, w_bot, t);
            let r = (w_top / w_bot) * (p.sigma * p.vdd / (p.n * vt)).exp();
            let lhs = (p.alpha() * x / vt).exp() * (1.0 - (-x / vt).exp());
            let rel = (lhs - r).abs() / r;
            assert!(rel < 0.04, "ratio 2^{k}: residual {rel:.3}");
        }
    }

    #[test]
    fn equal_width_two_stack_drop_is_a_few_thermal_voltages() {
        // The classic result: V_1 of an equal 2-stack sits ~V_T·ln2-to-a-few
        // V_T above ground (DIBL pushes it up a bit).
        let p = params();
        let x = p.delta_v(1e-6, 1e-6, 300.0);
        let vt = thermal_voltage(300.0);
        assert!(x > 0.5 * vt && x < 4.0 * vt, "x = {x}");
    }

    #[test]
    fn collapse_pair_shrinks_the_width() {
        let p = params();
        let w_eq = p.collapse_pair(1e-6, 1e-6, 300.0);
        assert!(w_eq < 1e-6);
        assert!(w_eq > 0.0);
        // Stack suppression factor ~5-15x at these parameters.
        let factor = 1e-6 / w_eq;
        assert!(factor > 3.0 && factor < 30.0, "suppression {factor}");
    }

    #[test]
    fn chain_collapse_is_monotone_in_depth() {
        let p = params();
        let mut last = f64::INFINITY;
        for n in 1..=6 {
            let w = p.collapse_chain(&vec![1e-6; n], 300.0);
            assert!(w < last, "depth {n} must shrink the equivalent width");
            last = w;
        }
    }

    #[test]
    fn single_device_chain_is_identity() {
        let p = params();
        assert_eq!(p.collapse_chain(&[3e-6], 300.0), 3e-6);
    }

    #[test]
    fn temperature_weakens_the_stack_effect() {
        // Hotter: larger V_T -> smaller x/V_T shielding exponent -> the
        // equivalent width shrinks less.
        let p = params();
        let cold = p.collapse_chain(&[1e-6, 1e-6], 280.0);
        let hot = p.collapse_chain(&[1e-6, 1e-6], 400.0);
        assert!(hot > cold, "stack effect must weaken with temperature");
    }

    #[test]
    #[should_panic(expected = "empty chain")]
    fn empty_chain_panics() {
        params().collapse_chain(&[], 300.0);
    }

    #[test]
    #[should_panic(expected = "widths must be positive")]
    fn non_positive_width_panics() {
        params().delta_v(0.0, 1e-6, 300.0);
    }
}
