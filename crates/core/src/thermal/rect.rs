//! Closed-form temperature rises: Eqs. (16), (18), (19) and (20).
//!
//! All functions return the temperature **rise** (kelvin) at a surface
//! field point caused by one rectangular source dissipating `power` watts
//! on a semi-infinite substrate with adiabatic top (the half-space Green's
//! function `1/(2πkr)`). Boundary conditions of a finite die are handled
//! one level up by the method of images.
//!
//! Geometry: source centred at the origin, `w` along x, `l` along y; field
//! point `(x, y)` relative to the source centre, optionally at depth `z`
//! (bottom-mirror images evaluate at `z = 2·thickness`).

/// Eq. (16): ideal point source, `T = P/(2πk·r)`.
///
/// Returns infinity at `r = 0` (the paper caps it with Eq. 18's value via
/// Eq. 20).
pub fn point_source_rise(power: f64, k: f64, r: f64) -> f64 {
    power / (2.0 * std::f64::consts::PI * k * r)
}

/// Eq. (18): exact temperature at the **centre** of a uniformly
/// dissipating `w × l` rectangle:
///
/// ```text
/// T0 = P/(2πk·w·l) · [ l·ln((c+w)/(c−w)) + w·ln((c+l)/(c−l)) ],  c = √(w²+l²)
/// ```
///
/// # Panics
///
/// Panics if `w`, `l` or `k` is not strictly positive.
pub fn center_rise(power: f64, k: f64, w: f64, l: f64) -> f64 {
    assert!(w > 0.0 && l > 0.0 && k > 0.0, "w, l, k must be positive");
    let c = (w * w + l * l).sqrt();
    power / (2.0 * std::f64::consts::PI * k * w * l)
        * (l * ((c + w) / (c - w)).ln() + w * ((c + l) / (c - l)).ln())
}

/// Eq. (19): far-field of the rectangle treated as a finite **line** source
/// along its longer axis:
///
/// ```text
/// T = P/(2πk·s) · ln[ (u + s/2 + r₊) / (u − s/2 + r₋) ]
/// r± = √((u ± s/2)² + v² + z²)
/// ```
///
/// where `s = max(w, l)` is the line length, `u` the field coordinate along
/// the line and `v` across it. Exact for a true line source; diverges as
/// the field point approaches the line (Eq. 20 caps it with Eq. 18).
///
/// # Panics
///
/// Panics if `w`, `l` or `k` is not strictly positive.
pub fn line_far_field_rise(power: f64, k: f64, w: f64, l: f64, x: f64, y: f64, z: f64) -> f64 {
    assert!(w > 0.0 && l > 0.0 && k > 0.0, "w, l, k must be positive");
    // Orient along the longer side (the paper assumes W > L and notes the
    // result also holds for W = L).
    let (s, u, v) = if w >= l { (w, x, y) } else { (l, y, x) };
    // The log form is symmetric in u but numerically degenerate (0/0) on
    // the negative axis; evaluate on the positive side.
    let u = u.abs();
    let half = s / 2.0;
    let r_plus = ((u + half) * (u + half) + v * v + z * z).sqrt();
    let r_minus = ((u - half) * (u - half) + v * v + z * z).sqrt();
    let denom = u - half + r_minus;
    if denom <= 0.0 {
        // On the line itself (v = z = 0, |u| < s/2): the line field
        // diverges; report infinity so the Eq. 20 min() picks Eq. 18.
        return f64::INFINITY;
    }
    power / (2.0 * std::f64::consts::PI * k * s) * ((u + half + r_plus) / denom).ln()
}

/// Eq. (20): the paper's combined estimate
/// `T(x, y) = min{ T0, T_line(x, y) }` — the line far-field capped by the
/// exact centre temperature near/on the source.
pub fn rect_rise(power: f64, k: f64, w: f64, l: f64, x: f64, y: f64) -> f64 {
    center_rise(power, k, w, l).min(line_far_field_rise(power, k, w, l, x, y, 0.0))
}

/// Depth-offset variant of Eq. (20) used for bottom-mirror images: the
/// field point sits `z` above/below the source plane.
pub fn rect_rise_depth(power: f64, k: f64, w: f64, l: f64, x: f64, y: f64, z: f64) -> f64 {
    if z == 0.0 {
        return rect_rise(power, k, w, l, x, y);
    }
    // The centre cap still applies (an image can never contribute more
    // than its on-source peak).
    center_rise(power, k, w, l).min(line_far_field_rise(power, k, w, l, x, y, z))
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: f64 = 148.0;

    #[test]
    fn center_rise_matches_paper_example_scale() {
        // Fig. 5: W = 1 um, L = 0.1 um, P = 10 mW -> tens of kelvin peak.
        let t0 = center_rise(10e-3, K, 1e-6, 0.1e-6);
        assert!(t0 > 10.0 && t0 < 200.0, "T0 = {t0}");
    }

    #[test]
    fn line_field_reduces_to_point_source_far_away() {
        let (w, l, p) = (1e-6, 0.1e-6, 10e-3);
        let r = 100e-6;
        let t = line_far_field_rise(p, K, w, l, 0.0, r, 0.0);
        let point = point_source_rise(p, K, r);
        assert!((t - point).abs() / point < 1e-3, "{t} vs {point}");
    }

    #[test]
    fn line_field_diverges_on_the_line() {
        let t = line_far_field_rise(1e-3, K, 1e-6, 0.1e-6, 0.0, 0.0, 0.0);
        assert!(t.is_infinite());
    }

    #[test]
    fn combined_rise_is_continuous_and_capped() {
        let (w, l, p) = (1e-6, 0.1e-6, 10e-3);
        let t0 = center_rise(p, K, w, l);
        // On the source: capped at T0.
        assert_eq!(rect_rise(p, K, w, l, 0.0, 0.0), t0);
        // Far away: below T0 and decreasing.
        let t1 = rect_rise(p, K, w, l, 3e-6, 0.0);
        let t2 = rect_rise(p, K, w, l, 6e-6, 0.0);
        assert!(t1 < t0 && t2 < t1);
    }

    #[test]
    fn longer_axis_orientation_is_automatic() {
        // Swapping w/l and x/y must give the same field.
        let a = rect_rise(1e-3, K, 2e-6, 0.5e-6, 4e-6, 1e-6);
        let b = rect_rise(1e-3, K, 0.5e-6, 2e-6, 1e-6, 4e-6);
        assert!((a - b).abs() / a < 1e-12);
    }

    #[test]
    fn depth_variant_matches_plain_at_zero_and_decays() {
        let (w, l, p) = (1e-6, 1e-6, 1e-3);
        let plain = rect_rise(p, K, w, l, 2e-6, 0.0);
        assert_eq!(rect_rise_depth(p, K, w, l, 2e-6, 0.0, 0.0), plain);
        let deep = rect_rise_depth(p, K, w, l, 2e-6, 0.0, 50e-6);
        assert!(deep < plain);
        // At large depth it approaches the 3-D point source.
        let z = 500e-6;
        let t = rect_rise_depth(p, K, w, l, 0.0, 0.0, z);
        let point = point_source_rise(p, K, z);
        assert!((t - point).abs() / point < 1e-2, "{t} vs {point}");
    }

    #[test]
    fn eq18_equals_exact_corner_integral() {
        // Independent check against the exact Eq. 17 evaluation from
        // ptherm-thermal-num.
        let (w, l, p) = (1e-6, 0.1e-6, 10e-3);
        let exact = ptherm_thermal_num::rect_surface_temperature(p, K, w, l, 0.0, 0.0);
        let eq18 = center_rise(p, K, w, l);
        assert!((exact - eq18).abs() / exact < 1e-12, "{eq18} vs {exact}");
    }

    #[test]
    fn eq20_accuracy_against_exact_profile() {
        // The Fig. 5 claim: min(T0, T_line) tracks the exact Eq. 17 profile
        // closely enough for IC-level estimation. Check within a few % at
        // moderate distance and within ~35% everywhere (the worst mismatch
        // sits at the source edge where the cap flattens the profile).
        let (w, l, p) = (1e-6, 0.1e-6, 10e-3);
        for (x, y, tol) in [
            (2e-6, 0.0, 0.08),
            (5e-6, 0.0, 0.03),
            (0.0, 2e-6, 0.08),
            (3e-6, 3e-6, 0.05),
            (0.6e-6, 0.0, 0.35),
        ] {
            let exact = ptherm_thermal_num::rect_surface_temperature(p, K, w, l, x, y);
            let model = rect_rise(p, K, w, l, x, y);
            let rel = (model - exact).abs() / exact;
            assert!(rel < tol, "({x:.1e},{y:.1e}): rel {rel:.3}");
        }
    }

    #[test]
    fn linearity_in_power() {
        let a = rect_rise(1e-3, K, 1e-6, 1e-6, 2e-6, 1e-6);
        let b = rect_rise(4e-3, K, 1e-6, 1e-6, 2e-6, 1e-6);
        assert!((b / a - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn degenerate_rectangle_rejected() {
        center_rise(1e-3, K, 0.0, 1e-6);
    }
}
