//! Per-block thermal capacitances — the `C` of the chip-scale transient
//! `C dT/dt = P(T) − G·(T − T_amb)`.
//!
//! The paper's steady-state closed forms (Eqs. 16–21) carry no time
//! dependence; its Fig. 9 transient models one transistor as a lumped RC.
//! Scaling that picture up to the floorplan gives each block the thermal
//! capacitance of the silicon column it heats:
//!
//! ```text
//! C_i = c_v · w_i · l_i · t_sub          [J/K]
//! ```
//!
//! with `c_v` the volumetric heat capacity (silicon: ≈1.66 MJ/(m³·K),
//! [`ptherm_tech::constants::SILICON_VOLUMETRIC_HEAT_CAPACITY`]) and
//! `t_sub` the substrate thickness. Together with the steady-state
//! influence matrix `R` (so `G = R⁻¹`) this closes the transient system
//! integrated by [`crate::cosim::transient`]; the per-block time constant
//! is `τ_i ≈ R_ii · C_i`, the chip-scale analogue of the Fig. 9 `τ`.
//!
//! The column model deliberately mirrors the lumped-RC abstraction rather
//! than resolving vertical heat spreading — the same fidelity trade the
//! paper makes for `R` itself.

use ptherm_floorplan::Floorplan;
use ptherm_tech::constants::SILICON_VOLUMETRIC_HEAT_CAPACITY;

/// Per-block thermal capacitances for `floorplan` at an explicit
/// volumetric heat capacity `c_v` (J/(m³·K)): block footprint × substrate
/// thickness × `c_v`.
///
/// # Example
///
/// ```
/// use ptherm_core::thermal::capacitance::block_capacitances;
/// use ptherm_floorplan::Floorplan;
///
/// let fp = Floorplan::paper_three_blocks();
/// let c = block_capacitances(&fp, 1.66e6);
/// assert_eq!(c.len(), fp.blocks().len());
/// assert!(c.iter().all(|&ci| ci > 0.0));
/// ```
pub fn block_capacitances(floorplan: &Floorplan, volumetric_heat_capacity: f64) -> Vec<f64> {
    let thickness = floorplan.geometry().thickness;
    floorplan
        .blocks()
        .iter()
        .map(|b| volumetric_heat_capacity * b.area() * thickness)
        .collect()
}

/// [`block_capacitances`] at silicon's volumetric heat capacity — the
/// default the transient engine derives when none is supplied.
pub fn silicon_block_capacitances(floorplan: &Floorplan) -> Vec<f64> {
    block_capacitances(floorplan, SILICON_VOLUMETRIC_HEAT_CAPACITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_floorplan::{generator, ChipGeometry, Floorplan};

    #[test]
    fn capacitance_scales_with_area_and_thickness() {
        let fp = Floorplan::paper_three_blocks();
        let c = silicon_block_capacitances(&fp);
        assert_eq!(c.len(), 3);
        for (ci, b) in c.iter().zip(fp.blocks()) {
            let expect = SILICON_VOLUMETRIC_HEAT_CAPACITY * b.area() * fp.geometry().thickness;
            assert_eq!(*ci, expect);
        }
        // Linear in c_v.
        let doubled = block_capacitances(&fp, 2.0 * SILICON_VOLUMETRIC_HEAT_CAPACITY);
        for (a, b) in c.iter().zip(&doubled) {
            assert!((b - 2.0 * a).abs() < 1e-18 * b.abs().max(1.0));
        }
    }

    #[test]
    fn uniform_tiling_gives_uniform_capacitances() {
        let fp = generator::tiled(ChipGeometry::paper_1mm(), 4, 4, 0.0, 0.0, 3).expect("tiling");
        let c = silicon_block_capacitances(&fp);
        assert_eq!(c.len(), 16);
        for ci in &c {
            assert!((ci - c[0]).abs() < 1e-18, "{ci} vs {}", c[0]);
        }
    }

    #[test]
    fn block_time_constants_are_physically_plausible() {
        // 1 mm die, 300 um substrate: block taus land in the
        // microsecond-to-millisecond range real dies show.
        let fp = Floorplan::paper_three_blocks();
        let op = crate::cosim::ThermalOperator::new(&fp);
        let c = silicon_block_capacitances(&fp);
        for (i, ci) in c.iter().enumerate() {
            let tau = op.influence()[(i, i)] * ci;
            assert!(tau > 1e-7 && tau < 1e-1, "tau[{i}] = {tau}");
        }
    }

    #[test]
    fn empty_floorplan_yields_no_capacitances() {
        let fp = Floorplan::new(ChipGeometry::paper_1mm(), Vec::new()).expect("empty plan");
        assert!(silicon_block_capacitances(&fp).is_empty());
    }
}
