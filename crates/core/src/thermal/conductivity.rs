//! Temperature-dependent conductivity — an *extension* beyond the paper.
//!
//! The paper treats `k_Si` as a constant (Eqs. 16–19). Real silicon loses
//! ~30 % of its conductivity between 300 K and 400 K (`k ∝ T^{-4/3}`),
//! which matters exactly in the regime the paper targets: hot, leaky
//! sub-100 nm parts. Because the closed forms are linear in `1/k`, a
//! self-consistent conductivity needs only a scalar outer iteration:
//! evaluate the profile, update `k` at the resulting mean block
//! temperature, repeat. Two to three rounds suffice (the map is strongly
//! contractive — `k` varies slowly compared to the exponential leakage).

use crate::thermal::ThermalModel;
use ptherm_floorplan::Floorplan;
use ptherm_tech::constants::silicon_thermal_conductivity;

/// Block-centre temperatures with `k = k(T)` solved self-consistently.
///
/// Returns the temperatures and the converged conductivity. The floorplan's
/// stored conductivity is used only as the starting guess.
///
/// # Panics
///
/// Panics if `max_iterations == 0`.
pub fn block_temperatures_with_kt(
    floorplan: &Floorplan,
    lateral_order: usize,
    z_order: usize,
    max_iterations: usize,
) -> (Vec<f64>, f64) {
    assert!(max_iterations > 0, "need at least one iteration");
    let mut geometry = *floorplan.geometry();
    let blocks = floorplan.blocks().to_vec();
    let mut temps = vec![geometry.sink_temperature; blocks.len()];
    for _ in 0..max_iterations {
        let t_mean = temps.iter().sum::<f64>() / temps.len().max(1) as f64;
        geometry.conductivity = silicon_thermal_conductivity(t_mean);
        let plan = Floorplan::new(geometry, blocks.clone())
            .expect("geometry change cannot invalidate block placement");
        let model = ThermalModel::with_image_orders(&plan, lateral_order, z_order);
        let fresh = model.block_center_temperatures();
        let delta = temps
            .iter()
            .zip(&fresh)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        temps = fresh;
        if delta < 1e-6 {
            break;
        }
    }
    (temps, geometry.conductivity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_floorplan::{Block, ChipGeometry};

    fn hot_plan(sink: f64, power: f64) -> Floorplan {
        let mut g = ChipGeometry::paper_1mm();
        g.sink_temperature = sink;
        Floorplan::new(
            g,
            vec![Block::new("b", 0.5e-3, 0.5e-3, 0.4e-3, 0.4e-3, power)],
        )
        .expect("valid plan")
    }

    #[test]
    fn cold_chip_matches_constant_k() {
        // At the 300 K reference with negligible power, k(T) = k(300) and
        // the result equals the constant-k model.
        let plan = hot_plan(300.0, 1e-3);
        let (temps, k) = block_temperatures_with_kt(&plan, 2, 9, 5);
        let constant = ThermalModel::with_image_orders(&plan, 2, 9).block_center_temperatures();
        assert!((k - 148.0).abs() < 0.5, "k = {k}");
        assert!((temps[0] - constant[0]).abs() < 0.01);
    }

    #[test]
    fn hot_chip_runs_hotter_with_kt() {
        // 400 K sink: conductivity drops ~30%, so rises grow accordingly.
        let plan = hot_plan(400.0, 2.0);
        let (temps, k) = block_temperatures_with_kt(&plan, 2, 9, 6);
        let constant = ThermalModel::with_image_orders(&plan, 2, 9).block_center_temperatures();
        assert!(k < 120.0, "k = {k}");
        let rise_kt = temps[0] - 400.0;
        let rise_const = constant[0] - 400.0;
        assert!(
            rise_kt > 1.2 * rise_const,
            "k(T) rise {rise_kt:.2} vs constant {rise_const:.2}"
        );
    }

    #[test]
    fn iteration_converges_quickly() {
        let plan = hot_plan(350.0, 1.0);
        let (two, _) = block_temperatures_with_kt(&plan, 2, 9, 2);
        let (many, _) = block_temperatures_with_kt(&plan, 2, 9, 10);
        assert!((two[0] - many[0]).abs() < 0.05, "{} vs {}", two[0], many[0]);
    }
}
