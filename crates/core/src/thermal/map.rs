//! FFT-accelerated high-resolution thermal maps (power blurring).
//!
//! The dense [`ThermalOperator`](crate::cosim::ThermalOperator) gives
//! block-centre temperatures through an `n × n` influence matrix — the
//! right shape for the Picard fixed point, but quadratically expensive
//! when the question is *spatial*: a hotspot-localization map with
//! thousands of tiles would need a dense operator with millions of
//! entries. This module keeps the same physics (Eq. 20 kernels under the
//! §3.3 method of images) but exploits a different structure, the one
//! Kemper et al.'s "Ultrafast Temperature Profile Calculation in IC
//! Chips" (power blurring) is built on: on a **uniform tile grid** every
//! source is the same rectangle, so the temperature field is a
//! *convolution* of the rasterized power map with one tile
//! Green's-function kernel — and convolutions are `O(N log N)` by FFT.
//!
//! # Exactness contract
//!
//! The kernel is not an approximation of the dense operator — it is the
//! **same truncated image sum**, reorganized. For a source tile centred
//! at `x_j` the lateral images sit at `2mW ± x_j` (`m ∈ [−k, k]`), so
//! the rise at `x_i` splits into a *difference* family `K(x_i − x_j −
//! 2mW)` and a *sum* family `K(x_i + x_j − 2mW)` per axis; each family
//! is a cyclic convolution (the sum family convolves the index-reversed
//! power map, which in frequency space is just the spectrum read at
//! mirrored indices). Four kernels — (diff, diff), (sum, diff), (diff,
//! sum), (sum, sum) — with the bottom-mirror depth column
//! ([`depth_series`]) folded in reproduce the dense operator's image
//! set *term for term*, including its truncation window. On a floorplan
//! whose blocks coincide with grid tiles the map therefore matches the
//! dense operator to floating-point rounding (the cross-validation
//! tests and the `map` bench assert ≤ 1e-6 K), and the FFT evaluation
//! matches the direct `O(N²)` convolution of the same kernels to
//! ≤ 1e-9 K.
//!
//! Everything expensive — rasterization stencils, the extended kernel
//! table, the four torus kernels and their spectra — is computed once
//! per `(floorplan geometry × grid × image orders)` key
//! ([`map_operator_fingerprint`]) and shared read-only across threads;
//! a per-worker [`MapWorkspace`] makes each map render allocation-free.
//! Leakage feedback stays in the existing batched Picard loop:
//! [`SweepEngine::run_map`](crate::cosim::SweepEngine::run_map) solves
//! the block-level fixed point on the `MultiVec` GEMM path and renders
//! maps from the converged power vectors.

use crate::thermal::images::depth_series;
use crate::thermal::profile::BlockKernel;
use ptherm_floorplan::{rasterize_stencil, Block, Floorplan};
use ptherm_math::fft::{Fft2, Fft2Scratch};

/// Fingerprint of the map operator a build would produce: the
/// floorplan's grid fingerprint (geometry × tile grid) mixed with the
/// image orders — everything the deterministic build reads. Computable
/// without building, which is what lets the fleet cache decide hit/miss
/// before paying for kernel assembly.
pub fn map_operator_fingerprint(
    floorplan: &Floorplan,
    lateral_order: usize,
    z_order: usize,
    nx: usize,
    ny: usize,
) -> u64 {
    let mut f = ptherm_floorplan::fingerprint::Fingerprinter::new("ptherm.map.v1");
    f.write_u64(floorplan.grid_fingerprint(nx, ny));
    f.write_u64(lateral_order as u64);
    f.write_u64(z_order as u64);
    f.finish()
}

/// The spectrum of one parity kernel — all the production render path
/// needs. The spatial samples are **not** retained: only the
/// direct-convolution oracle reads them, and a fleet cache entry
/// carrying four dead `mx·my` planes would be ~50% larger for nothing,
/// so [`MapOperator::rise_map_direct`] rebuilds them on demand from the
/// stored [`KernelShape`].
#[derive(Debug, Clone)]
struct MapSpectrum {
    re: Vec<f64>,
    im: Vec<f64>,
}

/// Everything the deterministic spatial-kernel assembly reads — stored
/// so the direct oracle can rebuild the spatial planes the constructor
/// transformed and dropped (bit-identically: the build is the same
/// code, and it is thread-count-invariant).
#[derive(Debug, Clone)]
struct KernelShape {
    nx: usize,
    ny: usize,
    mx: usize,
    my: usize,
    tile_w: f64,
    tile_l: f64,
    conductivity: f64,
    thickness: f64,
    lateral_order: usize,
    z_order: usize,
}

impl KernelShape {
    /// Builds the four spatial parity kernels — (diff,diff), (sum,diff),
    /// (diff,sum), (sum,sum) — on `threads` workers (the extended table
    /// is row-partitioned; every entry is computed identically on any
    /// worker, so the result is bit-identical from 1 to N threads).
    fn spatial_kernels(&self, threads: usize) -> [Vec<f64>; 4] {
        let &KernelShape {
            nx,
            ny,
            mx,
            my,
            tile_w,
            tile_l,
            lateral_order,
            z_order,
            ..
        } = self;
        // Unit-power kernel of one grid tile: every source on the grid is
        // the same rectangle, which is what collapses Eq. 21 into a
        // convolution.
        let tile = Block::new("tile", 0.0, 0.0, tile_w, tile_l, 1.0);
        let kernel = BlockKernel::for_block(&tile, self.conductivity, 1.0);
        let depth: Vec<(f64, f64)> = depth_series(self.thickness, z_order).collect();

        // Extended table KE[X][Y] = Σ_z w_z · K(X·hx, Y·hy, depth_z): the
        // depth-folded kernel at every non-negative integer displacement
        // any lattice term can reach. The largest argument comes from the
        // sum family at the far lattice edge: σ + 2k·n ≤ (2k+2)·n − 1.
        let ex = (2 * lateral_order + 2) * nx;
        let ey = (2 * lateral_order + 2) * ny;
        let mut ke = vec![0.0; (ex + 1) * (ey + 1)];
        ptherm_par::par_partition_mut(threads, &mut ke, ex + 1, |first_row, rows| {
            for (dy, row) in rows.chunks_mut(ex + 1).enumerate() {
                let y = (first_row + dy) as f64 * tile_l;
                for (dx, entry) in row.iter_mut().enumerate() {
                    let x = dx as f64 * tile_w;
                    let mut rise = 0.0;
                    for &(w, z) in &depth {
                        rise += w * kernel.rise(x, y, z);
                    }
                    *entry = rise;
                }
            }
        });

        // Live torus indices per axis and family. Difference: δ = i − j ∈
        // [−(n−1), n−1] at torus index δ mod m. Sum: σ = i + j + 1 ∈
        // [1, 2n−1] at torus index σ − 1 (never wraps). Every other torus
        // entry only ever multiplies zero-padding or discarded outputs
        // and stays 0.
        let diff_axis = |n: usize, m: usize| -> Vec<(usize, i64)> {
            let mut v: Vec<(usize, i64)> = (0..n as i64).map(|d| (d as usize, d)).collect();
            v.extend((1..n as i64).map(|d| (m - d as usize, -d)));
            v
        };
        let sum_axis = |n: usize| -> Vec<(usize, i64)> {
            (0..=2 * (n as i64) - 2)
                .map(|d| (d as usize, d + 1))
                .collect()
        };
        let (diff_x, sum_x) = (diff_axis(nx, mx), sum_axis(nx));
        let (diff_y, sum_y) = (diff_axis(ny, my), sum_axis(ny));

        let k = lateral_order as i64;
        let lattice = |axis: i64, n: usize, arg: i64| -> usize {
            (arg - 2 * axis * n as i64).unsigned_abs() as usize
        };
        let build = |xs: &[(usize, i64)], ys: &[(usize, i64)]| -> Vec<f64> {
            let mut spatial = vec![0.0; mx * my];
            for &(dy, ay) in ys {
                for &(dx, ax) in xs {
                    let mut rise = 0.0;
                    for m in -k..=k {
                        let x = lattice(m, nx, ax);
                        for n in -k..=k {
                            let y = lattice(n, ny, ay);
                            rise += ke[x + (ex + 1) * y];
                        }
                    }
                    spatial[dx + mx * dy] = rise;
                }
            }
            spatial
        };
        [
            build(&diff_x, &diff_y),
            build(&sum_x, &diff_y),
            build(&diff_x, &sum_y),
            build(&sum_x, &sum_y),
        ]
    }
}

/// Precomputed, immutable spatial thermal operator of one floorplan on
/// an `nx × ny` tile grid.
///
/// Shareable across threads (`&MapOperator` is `Send + Sync`); the
/// sweep engine builds one and fans scenario map renders over it, each
/// worker bringing its own [`MapWorkspace`].
///
/// # Example
///
/// ```
/// use ptherm_core::thermal::map::{MapOperator, MapWorkspace};
/// use ptherm_floorplan::Floorplan;
///
/// let fp = Floorplan::paper_three_blocks();
/// let op = MapOperator::new(&fp, 32, 32);
/// let mut ws = MapWorkspace::new();
/// let mut map = vec![0.0; op.tiles()];
/// op.temperature_map_into(&[0.35, 0.30, 0.25], 300.0, &mut ws, &mut map);
/// // Every tile sits above the sink and below the melting point.
/// assert!(map.iter().all(|&t| t > 300.0 && t < 400.0));
/// ```
#[derive(Debug, Clone)]
pub struct MapOperator {
    /// Grid and torus dimensions, tile pitch, physics constants and
    /// image orders — everything the kernel assembly reads. The torus
    /// is `next_power_of_two(2·n)` per axis, large enough that neither
    /// the difference (`|δ| ≤ n−1`) nor the sum (`σ ≤ 2n−1`) index
    /// family wraps onto live power cells.
    shape: KernelShape,
    sink_temperature: f64,
    fingerprint: u64,
    /// Per-block rasterization stencils (tile index, power fraction).
    stencils: Vec<Vec<(u32, f64)>>,
    /// Parity-kernel spectra in the order (diff,diff), (sum,diff),
    /// (diff,sum), (sum,sum).
    spectra: [MapSpectrum; 4],
    fft: Fft2,
}

impl MapOperator {
    /// Builds the operator with the workspace accuracy defaults (lateral
    /// image order 2, depth series order 9) — matching
    /// [`ThermalOperator::new`](crate::cosim::ThermalOperator::new).
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    pub fn new(floorplan: &Floorplan, nx: usize, ny: usize) -> Self {
        Self::with_image_orders(floorplan, nx, ny, 2, 9)
    }

    /// Builds the operator with an explicit image configuration on one
    /// worker per available CPU. Block powers recorded in `floorplan`
    /// are ignored: the operator is per-watt and applies to any power
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    pub fn with_image_orders(
        floorplan: &Floorplan,
        nx: usize,
        ny: usize,
        lateral_order: usize,
        z_order: usize,
    ) -> Self {
        Self::with_image_orders_threaded(
            floorplan,
            nx,
            ny,
            lateral_order,
            z_order,
            ptherm_par::default_threads(),
        )
    }

    /// [`Self::with_image_orders`] with an explicit worker count.
    ///
    /// Only the extended kernel table is threaded (row-partitioned, each
    /// entry computed identically on any worker), so the build is
    /// bit-identical from 1 to N threads — the same contract as the
    /// dense operator's threaded build.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    pub fn with_image_orders_threaded(
        floorplan: &Floorplan,
        nx: usize,
        ny: usize,
        lateral_order: usize,
        z_order: usize,
        threads: usize,
    ) -> Self {
        assert!(nx > 0 && ny > 0, "map grid dimensions must be positive");
        let g = floorplan.geometry();
        let shape = KernelShape {
            nx,
            ny,
            mx: (2 * nx).next_power_of_two(),
            my: (2 * ny).next_power_of_two(),
            tile_w: g.width / nx as f64,
            tile_l: g.length / ny as f64,
            conductivity: g.conductivity,
            thickness: g.thickness,
            lateral_order,
            z_order,
        };
        let fingerprint = map_operator_fingerprint(floorplan, lateral_order, z_order, nx, ny);

        let stencils = floorplan
            .blocks()
            .iter()
            .map(|b| {
                rasterize_stencil(nx, ny, g.width, g.length, b)
                    .into_iter()
                    .map(|(cell, fraction)| (cell as u32, fraction))
                    .collect()
            })
            .collect();

        // Assemble the spatial kernels, keep only their spectra (the
        // render path is frequency-domain; the oracle rebuilds spatial
        // planes on demand).
        let fft = Fft2::new(shape.mx, shape.my);
        let mut scratch = Fft2Scratch::new();
        let plane = shape.mx * shape.my;
        let spectra = shape.spatial_kernels(threads).map(|spatial| {
            let mut re = vec![0.0; plane];
            let mut im = vec![0.0; plane];
            fft.forward_real(&spatial, &mut re, &mut im, &mut scratch);
            MapSpectrum { re, im }
        });

        MapOperator {
            shape,
            sink_temperature: g.sink_temperature,
            fingerprint,
            stencils,
            spectra,
            fft,
        }
    }

    /// Stable content fingerprint (see [`map_operator_fingerprint`]):
    /// equal fingerprints imply bit-identical kernels and stencils, the
    /// contract the fleet cache relies on.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Grid width in tiles.
    pub fn nx(&self) -> usize {
        self.shape.nx
    }

    /// Grid height in tiles.
    pub fn ny(&self) -> usize {
        self.shape.ny
    }

    /// Number of tiles (`nx · ny`), the length of every map slice.
    pub fn tiles(&self) -> usize {
        self.shape.nx * self.shape.ny
    }

    /// Number of floorplan blocks the operator rasterizes.
    pub fn blocks(&self) -> usize {
        self.stencils.len()
    }

    /// Sink temperature the source floorplan declared, K.
    pub fn sink_temperature(&self) -> f64 {
        self.sink_temperature
    }

    /// Lateral image order the kernels were built with.
    pub fn lateral_order(&self) -> usize {
        self.shape.lateral_order
    }

    /// Depth-series order the kernels were built with.
    pub fn z_order(&self) -> usize {
        self.shape.z_order
    }

    /// Centre of tile `(ix, iy)` in die coordinates, m.
    ///
    /// # Panics
    ///
    /// Panics if the tile is out of range.
    pub fn tile_center(&self, ix: usize, iy: usize) -> (f64, f64) {
        assert!(
            ix < self.shape.nx && iy < self.shape.ny,
            "tile out of range"
        );
        (
            (ix as f64 + 0.5) * self.shape.tile_w,
            (iy as f64 + 0.5) * self.shape.tile_l,
        )
    }

    /// Row-major index of the tile containing the die point `(x, y)`
    /// (clamped to the grid, so boundary points land in edge tiles).
    pub fn tile_of(&self, x: f64, y: f64) -> usize {
        let ix = ((x / self.shape.tile_w) as usize).min(self.shape.nx - 1);
        let iy = ((y / self.shape.tile_l) as usize).min(self.shape.ny - 1);
        ix + self.shape.nx * iy
    }

    /// The precomputed area-overlap stencil of block `i` as
    /// `(tile index, power fraction)` pairs — the starting point the
    /// spectral engine's CG refinement improves on.
    pub(crate) fn stencil_of(&self, block: usize) -> &[(u32, f64)] {
        &self.stencils[block]
    }

    /// Torus dimensions `(mx, my)` the parity kernels live on — the
    /// indexing contract of [`Self::spatial_kernels`] (see
    /// [`Self::rise_map_direct`] for the four-term lookup).
    pub(crate) fn torus(&self) -> (usize, usize) {
        (self.shape.mx, self.shape.my)
    }

    /// Tile pitch `(tile_w, tile_l)` in metres.
    pub(crate) fn tile_pitch(&self) -> (f64, f64) {
        (self.shape.tile_w, self.shape.tile_l)
    }

    /// Rebuilds the four spatial parity kernels — (diff,diff),
    /// (sum,diff), (diff,sum), (sum,sum) — bit-identically to the
    /// construction-time assembly (the operator itself retains only
    /// their spectra). Used by the direct oracle and by the spectral
    /// engine's stencil-refinement stage.
    pub(crate) fn spatial_kernels(&self, threads: usize) -> [Vec<f64>; 4] {
        self.shape.spatial_kernels(threads)
    }

    /// Rasterizes a per-block power vector onto the tile grid (W per
    /// tile, power-conserving) through the precomputed stencils.
    ///
    /// # Panics
    ///
    /// Panics if `block_powers` is not of length [`Self::blocks`] or
    /// `out` is not of length [`Self::tiles`].
    pub fn rasterize_into(&self, block_powers: &[f64], out: &mut [f64]) {
        assert_eq!(block_powers.len(), self.blocks(), "power length mismatch");
        assert_eq!(out.len(), self.tiles(), "map length mismatch");
        out.fill(0.0);
        for (stencil, &p) in self.stencils.iter().zip(block_powers) {
            for &(cell, fraction) in stencil {
                out[cell as usize] += p * fraction;
            }
        }
    }

    /// Temperature-rise map above the sink for one block power vector,
    /// written into `out` (row-major `nx × ny`, K) with zero allocation
    /// once `ws` is warm. This is the FFT path: rasterize, transform,
    /// four mirrored spectral products, transform back.
    ///
    /// # Panics
    ///
    /// Panics if `block_powers` is not of length [`Self::blocks`] or
    /// `out` is not of length [`Self::tiles`].
    pub fn rise_map_into(&self, block_powers: &[f64], ws: &mut MapWorkspace, out: &mut [f64]) {
        let (nx, ny) = (self.shape.nx, self.shape.ny);
        let mut tile_powers = std::mem::take(&mut ws.tile_powers);
        tile_powers.clear();
        tile_powers.resize(nx * ny, 0.0);
        self.rasterize_into(block_powers, &mut tile_powers);
        self.rise_from_tiles_into(&tile_powers, ws, out);
        ws.tile_powers = tile_powers;
    }

    /// The FFT apply from an already-rasterized tile power grid (W per
    /// tile, row-major `nx × ny`): transform, four mirrored spectral
    /// products, transform back. [`Self::rise_map_into`] is this plus
    /// the stencil scatter; the spectral Picard engine
    /// ([`crate::cosim::SpectralOperator`]) scatters through its own
    /// (possibly CG-refined) stencils and enters here.
    pub(crate) fn rise_from_tiles_into(
        &self,
        tile_powers: &[f64],
        ws: &mut MapWorkspace,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), self.tiles(), "map length mismatch");
        assert_eq!(
            tile_powers.len(),
            self.tiles(),
            "tile power length mismatch"
        );
        let (nx, ny, mx, my) = (self.shape.nx, self.shape.ny, self.shape.mx, self.shape.my);

        // Zero-padded power grid on the torus.
        let plane = mx * my;
        ws.re.clear();
        ws.re.resize(plane, 0.0);
        ws.im.clear();
        ws.im.resize(plane, 0.0);
        for iy in 0..ny {
            ws.re[iy * mx..iy * mx + nx].copy_from_slice(&tile_powers[iy * nx..(iy + 1) * nx]);
        }
        self.fft.forward(&mut ws.re, &mut ws.im, &mut ws.scratch);

        // Accumulate the four parity products. The sum families convolve
        // the index-reversed power map; for a spectrum that is just the
        // same panel read at mirrored frequencies, so one forward
        // transform serves all four terms.
        ws.acc_re.clear();
        ws.acc_re.resize(plane, 0.0);
        ws.acc_im.clear();
        ws.acc_im.resize(plane, 0.0);
        let [dd, sd, ds, ss] = &self.spectra;
        for ky in 0..my {
            let kyr = (my - ky) % my;
            for kx in 0..mx {
                let kxr = (mx - kx) % mx;
                let i = kx + mx * ky;
                let i_rx = kxr + mx * ky;
                let i_ry = kx + mx * kyr;
                let i_rxy = kxr + mx * kyr;
                let mut ar = dd.re[i] * ws.re[i] - dd.im[i] * ws.im[i];
                let mut ai = dd.re[i] * ws.im[i] + dd.im[i] * ws.re[i];
                ar += sd.re[i] * ws.re[i_rx] - sd.im[i] * ws.im[i_rx];
                ai += sd.re[i] * ws.im[i_rx] + sd.im[i] * ws.re[i_rx];
                ar += ds.re[i] * ws.re[i_ry] - ds.im[i] * ws.im[i_ry];
                ai += ds.re[i] * ws.im[i_ry] + ds.im[i] * ws.re[i_ry];
                ar += ss.re[i] * ws.re[i_rxy] - ss.im[i] * ws.im[i_rxy];
                ai += ss.re[i] * ws.im[i_rxy] + ss.im[i] * ws.re[i_rxy];
                ws.acc_re[i] = ar;
                ws.acc_im[i] = ai;
            }
        }
        self.fft
            .inverse(&mut ws.acc_re, &mut ws.acc_im, &mut ws.scratch);
        for iy in 0..ny {
            out[iy * nx..(iy + 1) * nx].copy_from_slice(&ws.acc_re[iy * mx..iy * mx + nx]);
        }
    }

    /// Absolute temperature map above `sink_k`, written into `out`.
    ///
    /// # Panics
    ///
    /// See [`Self::rise_map_into`].
    pub fn temperature_map_into(
        &self,
        block_powers: &[f64],
        sink_k: f64,
        ws: &mut MapWorkspace,
        out: &mut [f64],
    ) {
        self.rise_map_into(block_powers, ws, out);
        for t in out.iter_mut() {
            *t += sink_k;
        }
    }

    /// The `O(N²)` direct-convolution oracle: the same rasterization and
    /// the same four spatial kernels summed tile by tile, no transform.
    /// The `map` bench measures the FFT path against this, and the
    /// cross-validation tests hold the two to ≤ 1e-9 K.
    ///
    /// The spatial kernel planes are **rebuilt on each call** (the
    /// operator retains only their spectra, so fleet cache entries do
    /// not carry planes the production path never reads); the rebuild
    /// is bit-identical to the construction-time assembly. This path is
    /// a validation/bench oracle, not a serving path.
    ///
    /// # Panics
    ///
    /// See [`Self::rise_map_into`].
    pub fn rise_map_direct(&self, block_powers: &[f64], ws: &mut MapWorkspace, out: &mut [f64]) {
        assert_eq!(out.len(), self.tiles(), "map length mismatch");
        let (nx, ny, mx, my) = (self.shape.nx, self.shape.ny, self.shape.mx, self.shape.my);
        ws.tile_powers.clear();
        ws.tile_powers.resize(nx * ny, 0.0);
        self.rasterize_into(block_powers, &mut ws.tile_powers);
        let [dd, sd, ds, ss] = &self.shape.spatial_kernels(1);
        for iy in 0..ny {
            for ix in 0..nx {
                let mut rise = 0.0;
                for jy in 0..ny {
                    let ddy = (iy + my - jy) % my;
                    let sdy = iy + jy;
                    for jx in 0..nx {
                        let p = ws.tile_powers[jx + nx * jy];
                        if p == 0.0 {
                            continue;
                        }
                        let ddx = (ix + mx - jx) % mx;
                        let sdx = ix + jx;
                        rise += p
                            * (dd[ddx + mx * ddy]
                                + sd[sdx + mx * ddy]
                                + ds[ddx + mx * sdy]
                                + ss[sdx + mx * sdy]);
                    }
                }
                out[ix + nx * iy] = rise;
            }
        }
    }
}

/// Reusable per-worker scratch for map renders: the rasterized power
/// grid, the split-complex FFT panels and the column scratch. Buffers
/// size themselves on first use and are reused afterwards, so steady
/// map rendering performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct MapWorkspace {
    tile_powers: Vec<f64>,
    re: Vec<f64>,
    im: Vec<f64>,
    acc_re: Vec<f64>,
    acc_im: Vec<f64>,
    scratch: Fft2Scratch,
}

impl MapWorkspace {
    /// An empty workspace; buffers size themselves on first render.
    pub fn new() -> Self {
        MapWorkspace::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::ThermalOperator;
    use ptherm_floorplan::ChipGeometry;

    /// A floorplan whose blocks ARE the tiles of an `nx × ny` grid
    /// ([`ptherm_floorplan::generator::tile_aligned`]), with
    /// deterministic non-uniform powers — the configuration on which
    /// the map must reproduce the dense operator exactly.
    fn tile_aligned_floorplan(nx: usize, ny: usize) -> Floorplan {
        ptherm_floorplan::generator::tile_aligned(ChipGeometry::paper_1mm(), nx, ny, |i| {
            0.002 + 0.001 * ((i * 7) % 13) as f64
        })
        .expect("aligned tiling is valid")
    }

    fn powers(fp: &Floorplan) -> Vec<f64> {
        fp.blocks().iter().map(|b| b.power).collect()
    }

    #[test]
    fn fft_matches_the_direct_convolution_oracle() {
        // Non-aligned blocks, non-square non-power-of-two grid: the FFT
        // evaluation must agree with the direct sum of the same kernels.
        let fp = Floorplan::paper_three_blocks();
        let op = MapOperator::with_image_orders(&fp, 24, 20, 2, 9);
        let mut ws = MapWorkspace::new();
        let p = powers(&fp);
        let mut fft = vec![0.0; op.tiles()];
        let mut direct = vec![0.0; op.tiles()];
        op.rise_map_into(&p, &mut ws, &mut fft);
        op.rise_map_direct(&p, &mut ws, &mut direct);
        let gap = fft
            .iter()
            .zip(&direct)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(gap <= 1e-9, "max |ΔT| = {gap:e} K");
        // And the field is physically sensible: all rises positive.
        assert!(direct.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn map_matches_the_dense_operator_on_a_coincident_grid() {
        // Blocks coincide with tiles, so both paths evaluate the same
        // truncated image sum — agreement is pure rounding, far inside
        // the 1e-6 K acceptance bar.
        for (nx, ny) in [(4, 4), (6, 5)] {
            let fp = tile_aligned_floorplan(nx, ny);
            let p = powers(&fp);
            let map_op = MapOperator::with_image_orders(&fp, nx, ny, 2, 9);
            let dense = ThermalOperator::with_image_orders(&fp, 2, 9);
            let mut ws = MapWorkspace::new();
            let mut map = vec![0.0; map_op.tiles()];
            map_op.temperature_map_into(&p, 300.0, &mut ws, &mut map);
            let mut dense_t = vec![0.0; p.len()];
            dense.temperatures_with_sink_into(&p, 300.0, &mut dense_t);
            for (b, (block, &t_dense)) in fp.blocks().iter().zip(&dense_t).enumerate() {
                let tile = map_op.tile_of(block.cx, block.cy);
                let gap = (map[tile] - t_dense).abs();
                assert!(
                    gap <= 1e-6,
                    "{nx}x{ny} block {b}: map {} vs dense {t_dense} (gap {gap:e})",
                    map[tile]
                );
            }
        }
    }

    #[test]
    fn map_is_linear_in_power() {
        let fp = Floorplan::paper_three_blocks();
        let op = MapOperator::new(&fp, 16, 16);
        let mut ws = MapWorkspace::new();
        let mut r1 = vec![0.0; op.tiles()];
        let mut r2 = vec![0.0; op.tiles()];
        op.rise_map_into(&[0.1, 0.2, 0.3], &mut ws, &mut r1);
        op.rise_map_into(&[0.2, 0.4, 0.6], &mut ws, &mut r2);
        for (a, b) in r1.iter().zip(&r2) {
            assert!((b - 2.0 * a).abs() < 1e-10 * b.abs().max(1.0));
        }
    }

    #[test]
    fn zero_power_map_sits_at_the_sink() {
        let fp = Floorplan::paper_three_blocks();
        let op = MapOperator::new(&fp, 8, 8);
        let mut ws = MapWorkspace::new();
        let mut map = vec![1.0; op.tiles()];
        op.temperature_map_into(&[0.0; 3], 310.0, &mut ws, &mut map);
        // All-zero powers transform to exact zeros: bitwise 310.0.
        assert!(map.iter().all(|&t| t == 310.0));
    }

    #[test]
    fn hotspot_agrees_with_the_pointwise_model() {
        // The map's hottest tile must be the hottest tile of the
        // pointwise Eq. 21 model sampled on the same grid (it lands on
        // block B, the highest power-density block, not the highest
        // power one — the kind of call a block-level view gets wrong).
        let fp = Floorplan::paper_three_blocks();
        let n = 32;
        let op = MapOperator::new(&fp, n, n);
        let mut ws = MapWorkspace::new();
        let mut map = vec![0.0; op.tiles()];
        op.temperature_map_into(&powers(&fp), 300.0, &mut ws, &mut map);
        let argmax = |values: &[f64]| {
            values
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap()
        };
        let hottest = argmax(&map);
        let pointwise = crate::thermal::ThermalModel::new(&fp).surface_grid(n, n);
        // The peak tile must sit on block B — the highest power-density
        // block, which a fine map resolves where a block-power ranking
        // would not.
        let b = &fp.blocks()[1];
        let center = op.tile_center(hottest % n, hottest / n);
        assert!(
            (center.0 - b.cx).abs() <= b.w / 2.0 && (center.1 - b.cy).abs() <= b.l / 2.0,
            "peak at {center:?} is off block B ({}, {})",
            b.cx,
            b.cy
        );
        // Peak rise agrees with the pointwise Eq. 21 model to a few
        // percent (tile-superposed sources integrate the rectangle more
        // finely than Eq. 20's min() form, so exact equality is not
        // expected).
        let map_peak = map[hottest] - 300.0;
        let pw_peak = pointwise[argmax(&pointwise)] - 300.0;
        let rel = (map_peak - pw_peak).abs() / pw_peak;
        assert!(rel < 0.05, "peak rise {map_peak} vs pointwise {pw_peak}");
    }

    #[test]
    fn mirror_asymmetry_is_truncation_scale_and_converges_away() {
        // A centred block is physically mirror-symmetric, but the
        // truncated image lattice (anchored at m = 0, exactly like the
        // dense operator's) is not — the residual asymmetry is the
        // truncation tail, and it must shrink as the lateral order grows.
        let g = ChipGeometry::paper_1mm();
        let fp = Floorplan::new(
            g,
            vec![Block::new("c", 0.5e-3, 0.5e-3, 0.3e-3, 0.3e-3, 0.5)],
        )
        .unwrap();
        let n = 12;
        let mut ws = MapWorkspace::new();
        let mut max_asym = |order: usize| -> (f64, f64) {
            let op = MapOperator::with_image_orders(&fp, n, n, order, 9);
            let mut map = vec![0.0; op.tiles()];
            op.rise_map_into(&[0.5], &mut ws, &mut map);
            let mut asym = 0.0f64;
            let mut peak = 0.0f64;
            for iy in 0..n {
                for ix in 0..n {
                    let here = map[ix + n * iy];
                    asym = asym.max((here - map[(n - 1 - ix) + n * iy]).abs());
                    asym = asym.max((here - map[ix + n * (n - 1 - iy)]).abs());
                    peak = peak.max(here);
                }
            }
            (asym, peak)
        };
        let (a1, peak) = max_asym(1);
        let (a4, _) = max_asym(4);
        assert!(a4 < a1, "order 4 asymmetry {a4:e} vs order 1 {a1:e}");
        assert!(a4 < 5e-3 * peak, "order 4 asymmetry {a4:e}, peak {peak:e}");
    }

    #[test]
    fn rasterization_conserves_power() {
        let fp = Floorplan::paper_three_blocks();
        let op = MapOperator::new(&fp, 10, 14);
        let p = [0.35, 0.30, 0.25];
        let mut tiles = vec![0.0; op.tiles()];
        op.rasterize_into(&p, &mut tiles);
        let total: f64 = tiles.iter().sum();
        assert!((total - 0.9).abs() < 1e-12);
        // And matches the floorplan's own power map bit for bit (same
        // stencils, same application order).
        assert_eq!(tiles, fp.power_map(10, 14));
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        let fp = Floorplan::paper_three_blocks();
        let serial = MapOperator::with_image_orders_threaded(&fp, 16, 12, 2, 5, 1);
        for threads in [2, 4, 8] {
            let parallel = MapOperator::with_image_orders_threaded(&fp, 16, 12, 2, 5, threads);
            for (a, b) in serial.spectra.iter().zip(&parallel.spectra) {
                assert_eq!(a.re, b.re, "threads = {threads}");
                assert_eq!(a.im, b.im, "threads = {threads}");
            }
            let spatial_serial = serial.shape.spatial_kernels(1);
            let spatial_parallel = parallel.shape.spatial_kernels(threads);
            assert_eq!(spatial_serial, spatial_parallel, "threads = {threads}");
        }
    }

    #[test]
    fn fingerprint_keys_geometry_grid_and_orders_not_powers() {
        let fp = Floorplan::paper_three_blocks();
        let mut repowered = fp.clone();
        repowered.set_power(0, 42.0);
        assert_eq!(
            MapOperator::new(&fp, 8, 8).fingerprint(),
            MapOperator::new(&repowered, 8, 8).fingerprint()
        );
        // Grid dims, image orders and geometry are all part of the key.
        assert_ne!(
            map_operator_fingerprint(&fp, 2, 9, 8, 8),
            map_operator_fingerprint(&fp, 2, 9, 8, 16)
        );
        assert_ne!(
            map_operator_fingerprint(&fp, 2, 9, 8, 8),
            map_operator_fingerprint(&fp, 1, 9, 8, 8)
        );
        assert_eq!(
            map_operator_fingerprint(&fp, 2, 9, 8, 8),
            MapOperator::new(&fp, 8, 8).fingerprint()
        );
    }

    #[test]
    fn empty_floorplan_maps_to_the_sink_everywhere() {
        let fp = Floorplan::new(ChipGeometry::paper_1mm(), Vec::new()).unwrap();
        let op = MapOperator::new(&fp, 8, 8);
        assert_eq!(op.blocks(), 0);
        let mut ws = MapWorkspace::new();
        let mut map = vec![0.0; op.tiles()];
        op.temperature_map_into(&[], 300.0, &mut ws, &mut map);
        assert!(map.iter().all(|&t| t == 300.0));
    }

    #[test]
    fn higher_lateral_order_warms_the_interior() {
        // More reflected images return more heat: order 2 must sit above
        // order 0 everywhere in the interior (same depth treatment).
        let fp = Floorplan::paper_three_blocks();
        let p = powers(&fp);
        let lo = MapOperator::with_image_orders(&fp, 12, 12, 0, 1);
        let hi = MapOperator::with_image_orders(&fp, 12, 12, 2, 1);
        let mut ws = MapWorkspace::new();
        let mut a = vec![0.0; lo.tiles()];
        let mut b = vec![0.0; hi.tiles()];
        lo.rise_map_into(&p, &mut ws, &mut a);
        hi.rise_map_into(&p, &mut ws, &mut b);
        assert!(a.iter().zip(&b).all(|(l, h)| h > l));
    }

    #[test]
    #[should_panic(expected = "map grid dimensions must be positive")]
    fn zero_grid_is_rejected() {
        let _ = MapOperator::new(&Floorplan::paper_three_blocks(), 0, 8);
    }
}
