//! The floorplan-level thermal model: Eq. (21) with the method of images.
//!
//! `T(x, y) = T_sink + Σ_blocks Σ_images sign·min{T0_i, T_line,i}(x − x_i, y − y_i)`
//!
//! Everything is closed-form; a full-chip temperature query costs a few
//! dozen logarithms — that is the speedup the paper claims over numerical
//! PDE solvers (quantified in the `thermal` Criterion bench against the
//! finite-difference reference).

use crate::thermal::images::{expand_images, ImageSource};
use crate::thermal::rect::center_rise;
use ptherm_floorplan::{Block, Floorplan};

/// Per-block constants hoisted out of the inner image loop: the Eq. 18 cap
/// and the Eq. 19 line prefactor only depend on block power and geometry.
///
/// Shared between the pointwise [`ThermalModel`] and the batched
/// [`ThermalOperator`](crate::cosim::ThermalOperator) (which evaluates it
/// at unit power: Eq. 20 is linear in `P`, so per-watt rises compose).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockKernel {
    /// Eq. 18 centre rise (the cap of Eq. 20), K.
    t0: f64,
    /// `P/(2πk·s)` for the line formula, K.
    line_prefactor: f64,
    /// Line half-length `s/2`, m.
    half: f64,
    /// True when the line runs along y (block longer in y).
    along_y: bool,
}

impl BlockKernel {
    /// Kernel of `block` dissipating `power` watts into a substrate of
    /// conductivity `k` (the block's own power assignment is ignored so
    /// unit-power kernels can be built for the influence matrix).
    pub(crate) fn for_block(block: &Block, k: f64, power: f64) -> Self {
        let s = block.w.max(block.l);
        BlockKernel {
            t0: if power > 0.0 {
                center_rise(power, k, block.w, block.l)
            } else {
                0.0
            },
            line_prefactor: power / (2.0 * std::f64::consts::PI * k * s),
            half: s / 2.0,
            along_y: block.l > block.w,
        }
    }

    /// Eq. 20 at offset `(dx, dy)` from the block centre, at image depth
    /// `z` — the hot loop of every temperature query.
    #[inline]
    pub(crate) fn rise(&self, dx: f64, dy: f64, z: f64) -> f64 {
        let (u, v) = if self.along_y { (dy, dx) } else { (dx, dy) };
        let u = u.abs();
        let w2 = v * v + z * z;
        let r_plus = ((u + self.half) * (u + self.half) + w2).sqrt();
        let r_minus = ((u - self.half) * (u - self.half) + w2).sqrt();
        let denom = u - self.half + r_minus;
        if denom <= 0.0 {
            return self.t0;
        }
        let line = self.line_prefactor * ((u + self.half + r_plus) / denom).ln();
        self.t0.min(line)
    }
}

/// Analytical thermal model of one floorplan.
///
/// # Example
///
/// ```
/// use ptherm_core::thermal::ThermalModel;
/// use ptherm_floorplan::Floorplan;
///
/// let fp = Floorplan::paper_three_blocks();
/// let model = ThermalModel::new(&fp);
/// let t_hot = model.temperature(0.30e-3, 0.70e-3); // inside block A
/// let t_corner = model.temperature(0.99e-3, 0.01e-3);
/// assert!(t_hot > t_corner);
/// ```
#[derive(Debug, Clone)]
pub struct ThermalModel<'a> {
    floorplan: &'a Floorplan,
    lateral_order: usize,
    z_order: usize,
    /// Precomputed per-block image lattices.
    images: Vec<Vec<ImageSource>>,
    /// Precomputed per-block kernel constants.
    kernels: Vec<BlockKernel>,
}

impl<'a> ThermalModel<'a> {
    /// Builds the model with the accuracy defaults used throughout the
    /// experiments: lateral image order 2, depth series order 9.
    ///
    /// The depth series generalizes the paper's single bottom mirror; use
    /// [`ThermalModel::paper_defaults`] for the faithful configuration.
    pub fn new(floorplan: &'a Floorplan) -> Self {
        Self::with_image_orders(floorplan, 2, 9)
    }

    /// The paper's exact image configuration: lateral reflections plus
    /// **one** negative bottom mirror (§3.3).
    pub fn paper_defaults(floorplan: &'a Floorplan) -> Self {
        Self::with_image_orders(floorplan, 2, 1)
    }

    /// Builds the model with explicit lateral order and bottom-mirror
    /// on/off switch (`true` = the paper's single mirror).
    pub fn with_images(
        floorplan: &'a Floorplan,
        lateral_order: usize,
        bottom_mirror: bool,
    ) -> Self {
        Self::with_image_orders(floorplan, lateral_order, usize::from(bottom_mirror))
    }

    /// Builds the model with explicit image configuration: `lateral_order`
    /// reflections per side and a depth series of `z_order` alternating
    /// bottom images (the `fig6` ablation sweeps both).
    pub fn with_image_orders(
        floorplan: &'a Floorplan,
        lateral_order: usize,
        z_order: usize,
    ) -> Self {
        let g = floorplan.geometry();
        let images = floorplan
            .blocks()
            .iter()
            .map(|b| {
                expand_images(
                    b.cx,
                    b.cy,
                    g.width,
                    g.length,
                    g.thickness,
                    lateral_order,
                    z_order,
                )
            })
            .collect();
        let kernels = floorplan
            .blocks()
            .iter()
            .map(|b| BlockKernel::for_block(b, g.conductivity, b.power))
            .collect();
        ThermalModel {
            floorplan,
            lateral_order,
            z_order,
            images,
            kernels,
        }
    }

    /// The floorplan being modelled.
    pub fn floorplan(&self) -> &Floorplan {
        self.floorplan
    }

    /// Lateral image order in use.
    pub fn lateral_order(&self) -> usize {
        self.lateral_order
    }

    /// Depth-series order in use (1 = the paper's single bottom mirror).
    pub fn z_order(&self) -> usize {
        self.z_order
    }

    /// Temperature rise above the sink at `(x, y)` on the die surface, K.
    pub fn temperature_rise(&self, x: f64, y: f64) -> f64 {
        let mut rise = 0.0;
        for ((block, images), kernel) in self
            .floorplan
            .blocks()
            .iter()
            .zip(&self.images)
            .zip(&self.kernels)
        {
            if block.power == 0.0 {
                continue;
            }
            for img in images {
                rise += img.sign * kernel.rise(x - img.cx, y - img.cy, img.depth);
            }
        }
        rise
    }

    /// Absolute temperature at `(x, y)`, K.
    pub fn temperature(&self, x: f64, y: f64) -> f64 {
        self.floorplan.geometry().sink_temperature + self.temperature_rise(x, y)
    }

    /// Temperatures at every block centre (the quantities the
    /// electro-thermal fixed point iterates on), K.
    pub fn block_center_temperatures(&self) -> Vec<f64> {
        self.floorplan
            .blocks()
            .iter()
            .map(|b| self.temperature(b.cx, b.cy))
            .collect()
    }

    /// Samples the surface on an `nx × ny` grid (row-major, cell centres), K.
    pub fn surface_grid(&self, nx: usize, ny: usize) -> Vec<f64> {
        let g = self.floorplan.geometry();
        let dx = g.width / nx as f64;
        let dy = g.length / ny as f64;
        let mut out = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            let y = (iy as f64 + 0.5) * dy;
            for ix in 0..nx {
                let x = (ix as f64 + 0.5) * dx;
                out.push(self.temperature(x, y));
            }
        }
        out
    }

    /// Surface temperature gradient `(∂T/∂x, ∂T/∂y)` at `(x, y)`, K/m, by
    /// central differences over the closed forms. The heat flux along the
    /// surface is `−k` times this; the paper's Fig. 7 argument is that it
    /// vanishes at the die edges.
    pub fn temperature_gradient(&self, x: f64, y: f64) -> (f64, f64) {
        let h = 1e-7 * self.floorplan.geometry().width.max(1e-6);
        let dx = (self.temperature(x + h, y) - self.temperature(x - h, y)) / (2.0 * h);
        let dy = (self.temperature(x, y + h) - self.temperature(x, y - h)) / (2.0 * h);
        (dx, dy)
    }

    /// Horizontal cross-section `T(x)` at height `y` with `n` samples —
    /// the paper's Fig. 7 view.
    pub fn cross_section(&self, y: f64, n: usize) -> Vec<(f64, f64)> {
        let g = self.floorplan.geometry();
        (0..n)
            .map(|i| {
                let x = g.width * (i as f64 + 0.5) / n as f64;
                (x, self.temperature(x, y))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_floorplan::{Block, ChipGeometry};

    fn single_block_plan(power: f64) -> Floorplan {
        Floorplan::new(
            ChipGeometry::paper_1mm(),
            vec![Block::new("b", 0.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, power)],
        )
        .expect("valid plan")
    }

    #[test]
    fn peak_sits_on_the_block() {
        let fp = Floorplan::paper_three_blocks();
        let m = ThermalModel::new(&fp);
        let on_block = m.temperature(0.30e-3, 0.70e-3);
        for (x, y) in [(0.05e-3, 0.05e-3), (0.95e-3, 0.95e-3), (0.95e-3, 0.05e-3)] {
            assert!(on_block > m.temperature(x, y));
        }
    }

    #[test]
    fn superposition_linearity() {
        let fp1 = single_block_plan(0.5);
        let fp2 = single_block_plan(1.0);
        let m1 = ThermalModel::new(&fp1);
        let m2 = ThermalModel::new(&fp2);
        let r1 = m1.temperature_rise(0.2e-3, 0.8e-3);
        let r2 = m2.temperature_rise(0.2e-3, 0.8e-3);
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_power_floorplan_is_isothermal() {
        let fp = single_block_plan(0.0);
        let m = ThermalModel::new(&fp);
        assert_eq!(m.temperature(0.5e-3, 0.5e-3), 300.0);
    }

    #[test]
    fn edge_flux_vanishes_with_images() {
        // The Fig. 7 property: dT/dx = 0 at both die edges. Finite
        // difference across each edge must be tiny compared to the interior
        // gradient.
        let fp = Floorplan::paper_three_blocks();
        let m = ThermalModel::with_images(&fp, 3, true);
        let y = 0.5e-3;
        let h = 1e-6;
        let edge_grad_left = (m.temperature(h, y) - m.temperature(0.0, y)) / h;
        let edge_grad_right = (m.temperature(1e-3, y) - m.temperature(1e-3 - h, y)) / h;
        // Interior reference gradient near block B's flank.
        let interior = ((m.temperature(0.60e-3, y) - m.temperature(0.60e-3 - h, y)) / h).abs();
        assert!(
            edge_grad_left.abs() < 0.05 * interior,
            "left {edge_grad_left} vs {interior}"
        );
        assert!(
            edge_grad_right.abs() < 0.05 * interior,
            "right {edge_grad_right} vs {interior}"
        );
    }

    #[test]
    fn images_raise_interior_temperature() {
        // Adiabatic walls reflect heat back: with images the die must be
        // hotter than the bare half-space estimate.
        let fp = Floorplan::paper_three_blocks();
        let bare = ThermalModel::with_images(&fp, 0, false);
        let imaged = ThermalModel::with_images(&fp, 2, false);
        let t_bare = bare.temperature(0.30e-3, 0.70e-3);
        let t_imaged = imaged.temperature(0.30e-3, 0.70e-3);
        assert!(t_imaged > t_bare);
    }

    #[test]
    fn bottom_mirror_cools_the_die() {
        let fp = Floorplan::paper_three_blocks();
        let no_sink = ThermalModel::with_images(&fp, 2, false);
        let sink = ThermalModel::with_images(&fp, 2, true);
        assert!(sink.temperature(0.30e-3, 0.70e-3) < no_sink.temperature(0.30e-3, 0.70e-3));
    }

    #[test]
    fn image_order_converges() {
        let fp = Floorplan::paper_three_blocks();
        let t: Vec<f64> = (0..=3)
            .map(|o| ThermalModel::with_images(&fp, o, true).temperature(0.5e-3, 0.5e-3))
            .collect();
        let d1 = (t[1] - t[0]).abs();
        let d3 = (t[3] - t[2]).abs();
        assert!(d3 < d1, "image series must converge: {t:?}");
        // Each source/bottom-sink image pair decays like 1/r³, so a ring of
        // images at order m contributes ~1/m² — the series converges, but
        // slowly: order 2 -> 3 still moves the answer by ~1-2% of the rise.
        // (The fig6 ablation quantifies this against the FDM reference.)
        let rise = t[3] - 300.0;
        assert!(d3 < 2.5e-2 * rise, "order 2->3 change {d3} vs rise {rise}");
    }

    #[test]
    fn block_center_temperatures_match_pointwise_queries() {
        let fp = Floorplan::paper_three_blocks();
        let m = ThermalModel::new(&fp);
        let centers = m.block_center_temperatures();
        for (b, t) in fp.blocks().iter().zip(&centers) {
            assert_eq!(*t, m.temperature(b.cx, b.cy));
        }
    }

    #[test]
    fn gradient_points_away_from_the_hot_block() {
        let fp = Floorplan::paper_three_blocks();
        let m = ThermalModel::new(&fp);
        // East of block A the temperature falls with x: dT/dx < 0.
        let (dx, _) = m.temperature_gradient(0.55e-3, 0.70e-3);
        assert!(dx < 0.0, "dT/dx east of the block = {dx}");
        // The gradient at the centre of a symmetric field is ~0 in y at
        // the block centre row... use the mirror property instead: the
        // x-gradient flips sign across the block centre.
        let (dx_west, _) = m.temperature_gradient(0.05e-3, 0.70e-3);
        assert!(dx_west > 0.0, "dT/dx west of the block = {dx_west}");
    }

    #[test]
    fn grid_and_cross_section_shapes() {
        let fp = Floorplan::paper_three_blocks();
        let m = ThermalModel::new(&fp);
        let grid = m.surface_grid(8, 4);
        assert_eq!(grid.len(), 32);
        let cs = m.cross_section(0.5e-3, 16);
        assert_eq!(cs.len(), 16);
        assert!(cs.windows(2).all(|w| w[1].0 > w[0].0));
    }
}
