//! Method of images for the die boundary conditions (§3.3, Fig. 6).
//!
//! Two identical sources mirrored across a plane force zero normal flux on
//! that plane; a source and its **negated** mirror force zero temperature.
//! The paper uses both tricks:
//!
//! * **adiabatic sides** — every block is reflected across the four die
//!   edges ("several images for each side"); reflections compose, giving
//!   the lattice `x' = 2·m·W ± x`, `y' = 2·n·L ± y`,
//! * **isothermal bottom** — every (reflected) block gets a `−P` image
//!   mirrored through the bottom plane, i.e. a sink at depth
//!   `2·thickness` below the surface.
//!
//! `lateral_order` bounds `|m|, |n|`; order 1–2 is already accurate to a
//! few percent against the finite-difference reference (the `fig6`/`fig7`
//! experiments sweep it as an ablation).
//!
//! The lattice is produced by **allocation-free iterators**
//! ([`lateral_images_iter`], [`expand_images_iter`]): each axis emits its
//! reflections in ascending order and drops the duplicates that appear
//! when a block sits exactly on a mirror plane *as it goes*, so no
//! per-block `Vec`, sort or dedup pass exists on the operator-assembly
//! hot path. The [`lateral_images`] / [`expand_images`] wrappers collect
//! the same sequence (in the same sorted order the old sort-based
//! implementation produced) for callers that want to cache the lattice.

/// One image source: position of its centre and the sign of its power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageSource {
    /// Image centre x, die coordinates, m.
    pub cx: f64,
    /// Image centre y, die coordinates, m.
    pub cy: f64,
    /// +1 for heat sources, −1 for the bottom-mirror sinks.
    pub sign: f64,
    /// Depth of the image plane below the surface (0 for lateral images,
    /// `2·thickness` for bottom mirrors), m.
    pub depth: f64,
}

/// Coincidence tolerance for images of a block sitting exactly on a
/// mirror plane (kept from the original sort-and-dedup implementation;
/// die coordinates are ~1e-3 m, so this is far below one ULP of any
/// distinct lattice site).
const DEDUP_EPS: f64 = 1e-15;

/// Ascending reflections of one coordinate: `2·m·period ± base` for
/// `m ∈ [−k, k]`, duplicates (base on a mirror plane) skipped on the fly.
#[derive(Debug, Clone)]
struct AxisImages {
    base: f64,
    period: f64,
    m: i64,
    m_end: i64,
    /// Next parity to emit: `false` = `2mp − base`, `true` = `2mp + base`.
    plus: bool,
    last: f64,
    any: bool,
}

impl AxisImages {
    fn new(base: f64, period: f64, order: usize) -> Self {
        let k = order as i64;
        AxisImages {
            base,
            period,
            m: -k,
            m_end: k,
            plus: false,
            last: f64::NAN,
            any: false,
        }
    }
}

impl Iterator for AxisImages {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        loop {
            if self.m > self.m_end {
                return None;
            }
            let center = 2.0 * self.m as f64 * self.period;
            let value = if self.plus {
                self.m += 1;
                self.plus = false;
                center + self.base
            } else {
                self.plus = true;
                center - self.base
            };
            // The sequence is non-decreasing, so comparing against the
            // last emitted value reproduces the old sorted-dedup exactly.
            if self.any && (value - self.last).abs() < DEDUP_EPS {
                continue;
            }
            self.last = value;
            self.any = true;
            return Some(value);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining_m = (self.m_end - self.m + 1).max(0) as usize;
        let upper = 2 * remaining_m - usize::from(self.plus && remaining_m > 0);
        (0, Some(upper))
    }
}

/// Lazy lateral image lattice of a block centre (including the original)
/// for a `die_w × die_l` die: the cross product of both axis reflection
/// sequences, emitted in ascending `(x, y)` lexicographic order with
/// zero allocation. See [`lateral_images`].
#[derive(Debug, Clone)]
pub struct LateralImages {
    xs: AxisImages,
    ys_template: AxisImages,
    cur_x: f64,
    cur_ys: AxisImages,
}

impl Iterator for LateralImages {
    type Item = (f64, f64);

    fn next(&mut self) -> Option<(f64, f64)> {
        loop {
            if let Some(y) = self.cur_ys.next() {
                return Some((self.cur_x, y));
            }
            self.cur_x = self.xs.next()?;
            self.cur_ys = self.ys_template.clone();
        }
    }
}

/// Iterator over the lateral images (including the original) of a block
/// centred at `(cx, cy)` on a `die_w × die_l` die.
///
/// With `order = k`, each axis contributes reflections `m ∈ [−k, k]` of
/// both parities — `2·(2k+1)` values, collapsing to `2k+1` for a block on
/// a mirror plane — so a generic block expands to `(2·(2k+1))²` images.
/// `k = 0` keeps just the in-place parities.
pub fn lateral_images_iter(
    cx: f64,
    cy: f64,
    die_w: f64,
    die_l: f64,
    order: usize,
) -> LateralImages {
    let ys = AxisImages::new(cy, die_l, order);
    LateralImages {
        // Start exhausted in y so the first `next` pulls the first x.
        xs: AxisImages::new(cx, die_w, order),
        ys_template: ys.clone(),
        cur_x: f64::NAN,
        cur_ys: AxisImages {
            m: 1,
            m_end: 0,
            ..ys
        },
    }
}

/// Collected form of [`lateral_images_iter`], in ascending `(x, y)`
/// order, allocated to the exact deduplicated size.
pub fn lateral_images(cx: f64, cy: f64, die_w: f64, die_l: f64, order: usize) -> Vec<(f64, f64)> {
    let nx = AxisImages::new(cx, die_w, order).count();
    let ny = AxisImages::new(cy, die_l, order).count();
    let mut out = Vec::with_capacity(nx * ny);
    out.extend(lateral_images_iter(cx, cy, die_w, die_l, order));
    out
}

/// Lazy full image expansion of one block: the lateral lattice crossed
/// with the alternating depth series, zero allocation. See
/// [`expand_images`] for the physics of the depth series.
#[derive(Debug, Clone)]
pub struct ImageExpansion {
    lateral: LateralImages,
    site: Option<(f64, f64)>,
    k: usize,
    z_order: usize,
    thickness: f64,
}

impl Iterator for ImageExpansion {
    type Item = ImageSource;

    fn next(&mut self) -> Option<ImageSource> {
        let (x, y) = match self.site {
            Some(site) if self.k <= self.z_order => site,
            _ => {
                let site = self.lateral.next()?;
                self.site = Some(site);
                self.k = 0;
                site
            }
        };
        let k = self.k;
        self.k += 1;
        let magnitude = if k == 0 || k == self.z_order {
            1.0
        } else {
            2.0
        };
        Some(ImageSource {
            cx: x,
            cy: y,
            sign: magnitude * if k.is_multiple_of(2) { 1.0 } else { -1.0 },
            depth: 2.0 * k as f64 * self.thickness,
        })
    }
}

/// Iterator form of [`expand_images`]: lateral sites in ascending order,
/// each expanded through the depth series before the next site, exactly
/// the order the collected form returns.
pub fn expand_images_iter(
    cx: f64,
    cy: f64,
    die_w: f64,
    die_l: f64,
    thickness: f64,
    lateral_order: usize,
    z_order: usize,
) -> ImageExpansion {
    let z_order = if z_order > 0 && z_order.is_multiple_of(2) {
        z_order + 1
    } else {
        z_order
    };
    ImageExpansion {
        lateral: lateral_images_iter(cx, cy, die_w, die_l, lateral_order),
        site: None,
        k: 0,
        z_order,
        thickness,
    }
}

/// The signed bottom-mirror depth column every lateral site carries:
/// `(weight, depth)` pairs such that a unit source contributes
/// `Σ_k w_k · K(r, depth_k)` (see [`expand_images`] for the derivation
/// and the trapezoid-weighted truncation). Even non-zero orders round
/// up to odd exactly as in the full expansion, and `z_order = 0` is the
/// bare half-space single term. The spatial map engine folds this
/// column into its Green's-function tables; [`expand_images_iter`]
/// interleaves the same weights per lateral site — a unit test pins the
/// two against each other.
pub fn depth_series(thickness: f64, z_order: usize) -> impl Iterator<Item = (f64, f64)> {
    let z_order = if z_order > 0 && z_order.is_multiple_of(2) {
        z_order + 1
    } else {
        z_order
    };
    (0..=z_order).map(move |k| {
        let magnitude = if k == 0 || k == z_order { 1.0 } else { 2.0 };
        let sign = if k.is_multiple_of(2) { 1.0 } else { -1.0 };
        (magnitude * sign, 2.0 * k as f64 * thickness)
    })
}

/// Full image expansion of one block: lateral lattice times the depth
/// series.
///
/// `z_order` controls the isothermal-bottom treatment:
///
/// * **`z_order = 0`** — no bottom treatment (semi-infinite substrate),
/// * **`z_order = 1`** — **the paper's method**: one `−P` image mirrored
///   through the bottom plane (zeroes the bottom-plane temperature
///   exactly; the mirror's flux leaks through the adiabatic top),
/// * **`z_order ≥ 3` (odd)** — deeper truncations of the exact finite-slab
///   Green's function. Reflecting alternately across the Dirichlet bottom
///   and the Neumann top gives images of strength `2P·(−1)^k` at depths
///   `2k·thickness` (the factor 2 merges each image with its own top-plane
///   reflection; validated against the FDM reference). The truncated tail
///   is handled trapezoid-style — the last term keeps half weight — which
///   (a) leaves zero net monopole per lateral site, so the 2-D image
///   lattice converges, and (b) reduces **exactly** to the paper's single
///   `−P` mirror at `z_order = 1`:
///
/// ```text
/// T(r) = K(r, 0) + Σ_{k=1}^{z−1} 2·(−1)^k·K(r, 2k·t) + (−1)^z·K(r, 2z·t)
/// ```
///
/// Even non-zero orders are rounded up to odd (a truncation ending on a
/// positive full-weight term would diverge laterally).
pub fn expand_images(
    cx: f64,
    cy: f64,
    die_w: f64,
    die_l: f64,
    thickness: f64,
    lateral_order: usize,
    z_order: usize,
) -> Vec<ImageSource> {
    expand_images_iter(cx, cy, die_w, die_l, thickness, lateral_order, z_order).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-iterator reference: enumerate naively, sort, epsilon-dedup.
    fn lateral_images_reference(
        cx: f64,
        cy: f64,
        die_w: f64,
        die_l: f64,
        order: usize,
    ) -> Vec<(f64, f64)> {
        let k = order as i64;
        let mut out = Vec::new();
        for m in -k..=k {
            for &px in &[cx, -cx] {
                let x = 2.0 * m as f64 * die_w + px;
                for n in -k..=k {
                    for &py in &[cy, -cy] {
                        let y = 2.0 * n as f64 * die_l + py;
                        out.push((x, y));
                    }
                }
            }
        }
        out.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite"));
        out.dedup_by(|a, b| (a.0 - b.0).abs() < DEDUP_EPS && (a.1 - b.1).abs() < DEDUP_EPS);
        out
    }

    /// Order-insensitive comparison (sorted multisets of exact bits).
    fn assert_same_images(mut a: Vec<(f64, f64)>, mut b: Vec<(f64, f64)>) {
        let key = |p: &(f64, f64)| (p.0.to_bits() as i128, p.1.to_bits() as i128);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn iterator_matches_the_sort_dedup_reference() {
        for &(cx, cy) in &[
            (0.3e-3, 0.7e-3),
            (0.0, 0.4e-3),
            (1e-3, 1e-3), // both coordinates on the far mirror planes
            (0.5e-3, 0.0),
            (0.0, 0.0),
        ] {
            for order in 0..=3 {
                assert_same_images(
                    lateral_images(cx, cy, 1e-3, 1e-3, order),
                    lateral_images_reference(cx, cy, 1e-3, 1e-3, order),
                );
            }
        }
    }

    #[test]
    fn iterator_emits_in_sorted_order_with_exact_capacity() {
        let imgs = lateral_images(0.3e-3, 0.7e-3, 1e-3, 1e-3, 2);
        assert!(imgs.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        assert_eq!(imgs.len(), imgs.capacity());
        // On-mirror blocks dedup and still allocate exactly.
        let edge = lateral_images(0.0, 1e-3, 1e-3, 1e-3, 1);
        assert_eq!(edge.len(), edge.capacity());
    }

    #[test]
    fn order_zero_keeps_parities_only() {
        let imgs = lateral_images(0.3e-3, 0.7e-3, 1e-3, 1e-3, 0);
        // (±x) × (±y) = 4 distinct images when the block is off-centre.
        assert_eq!(imgs.len(), 4);
        assert!(imgs.contains(&(0.3e-3, 0.7e-3)));
        assert!(imgs.contains(&(-0.3e-3, 0.7e-3)));
    }

    #[test]
    fn image_count_grows_with_order() {
        let i1 = lateral_images(0.3e-3, 0.7e-3, 1e-3, 1e-3, 1).len();
        let i2 = lateral_images(0.3e-3, 0.7e-3, 1e-3, 1e-3, 2).len();
        assert_eq!(i1, 36);
        assert_eq!(i2, 100);
    }

    #[test]
    fn centered_block_on_mirror_plane_dedupes() {
        // A block at the die centre: ±x images coincide pairwise after the
        // lattice shift? They do not (centre is not on an edge); but a
        // block AT x = 0 does.
        let imgs = lateral_images(0.0, 0.4e-3, 1e-3, 1e-3, 0);
        assert_eq!(imgs.len(), 2);
    }

    #[test]
    fn far_edge_block_dedupes_across_cells() {
        // x = W: the +x image of cell m coincides with the −x image of
        // cell m+1; the axis collapses to 2k+2 distinct values.
        let imgs = lateral_images(1e-3, 0.4e-3, 1e-3, 1e-3, 1);
        assert_eq!(imgs.len(), 4 * 6); // (2·1+2) × (2·(2·1+1))
    }

    #[test]
    fn mirror_symmetry_across_the_edge() {
        // For every image at x there is one at -x (flux through x = 0
        // cancels by symmetry).
        let imgs = lateral_images(0.3e-3, 0.5e-3, 1e-3, 1e-3, 2);
        for &(x, y) in &imgs {
            assert!(
                imgs.iter()
                    .any(|&(x2, y2)| (x2 + x).abs() < 1e-15 && (y2 - y).abs() < 1e-15),
                "missing mirror of ({x}, {y})"
            );
        }
    }

    #[test]
    fn paper_mode_adds_one_negative_mirror() {
        let imgs = expand_images(0.3e-3, 0.5e-3, 1e-3, 1e-3, 0.3e-3, 1, 1);
        let positives = imgs.iter().filter(|i| i.sign > 0.0).count();
        let negatives = imgs.iter().filter(|i| i.sign < 0.0).count();
        assert_eq!(positives, negatives);
        for i in imgs.iter().filter(|i| i.sign < 0.0) {
            assert_eq!(i.depth, 0.6e-3);
        }
    }

    #[test]
    fn no_bottom_mirror_option() {
        let imgs = expand_images(0.3e-3, 0.5e-3, 1e-3, 1e-3, 0.3e-3, 1, 0);
        assert!(imgs.iter().all(|i| i.sign > 0.0 && i.depth == 0.0));
    }

    #[test]
    fn depth_series_alternates_and_deepens() {
        // Order 4 rounds up to 5; lateral order 0 with an off-axis block
        // gives four lateral parities, six depth terms each.
        let imgs = expand_images(0.5e-3, 0.5e-3, 1e-3, 1e-3, 0.3e-3, 0, 4);
        assert_eq!(imgs.len(), 24);
        for (i, img) in imgs.iter().enumerate() {
            let k = i % 6;
            // Interior terms carry double weight; the endpoints (k = 0 and
            // the trapezoid-weighted last term) carry single weight.
            let magnitude = if k == 0 || k == 5 { 1.0 } else { 2.0 };
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            assert_eq!(img.sign, magnitude * sign, "term {k}");
            assert!((img.depth - 2.0 * k as f64 * 0.3e-3).abs() < 1e-15);
        }
    }

    #[test]
    fn depth_series_has_zero_net_monopole() {
        // The signed weights of the depth series must sum to zero for any
        // order, or the lateral lattice diverges.
        for z in [1usize, 3, 5, 9, 4] {
            let imgs = expand_images(0.2e-3, 0.3e-3, 1e-3, 1e-3, 0.3e-3, 0, z);
            // Group by lateral site: all sites share the same depth column,
            // so the total must vanish.
            let net: f64 = imgs.iter().map(|i| i.sign).sum();
            assert!(net.abs() < 1e-12, "z = {z}: net {net}");
        }
    }

    #[test]
    fn depth_series_matches_the_expansion_column() {
        // The standalone depth column must be exactly the per-site column
        // expand_images interleaves (lateral order 0 at an off-axis point
        // gives four identical columns).
        for z in [0usize, 1, 3, 4, 9] {
            let column: Vec<(f64, f64)> = depth_series(0.3e-3, z).collect();
            let imgs = expand_images(0.2e-3, 0.3e-3, 1e-3, 1e-3, 0.3e-3, 0, z);
            assert_eq!(imgs.len(), 4 * column.len(), "z = {z}");
            for (i, img) in imgs.iter().enumerate() {
                let (w, d) = column[i % column.len()];
                assert_eq!(img.sign, w, "z = {z}, term {i}");
                assert_eq!(img.depth, d, "z = {z}, term {i}");
            }
        }
    }

    #[test]
    fn expansion_iterator_matches_collected_form() {
        let collected = expand_images(0.3e-3, 0.7e-3, 1e-3, 1e-3, 0.3e-3, 2, 9);
        let streamed: Vec<ImageSource> =
            expand_images_iter(0.3e-3, 0.7e-3, 1e-3, 1e-3, 0.3e-3, 2, 9).collect();
        assert_eq!(collected, streamed);
        assert_eq!(collected.len(), 100 * 10);
    }
}
