//! Method of images for the die boundary conditions (§3.3, Fig. 6).
//!
//! Two identical sources mirrored across a plane force zero normal flux on
//! that plane; a source and its **negated** mirror force zero temperature.
//! The paper uses both tricks:
//!
//! * **adiabatic sides** — every block is reflected across the four die
//!   edges ("several images for each side"); reflections compose, giving
//!   the lattice `x' = 2·m·W ± x`, `y' = 2·n·L ± y`,
//! * **isothermal bottom** — every (reflected) block gets a `−P` image
//!   mirrored through the bottom plane, i.e. a sink at depth
//!   `2·thickness` below the surface.
//!
//! `lateral_order` bounds `|m|, |n|`; order 1–2 is already accurate to a
//! few percent against the finite-difference reference (the `fig6`/`fig7`
//! experiments sweep it as an ablation).

/// One image source: position of its centre and the sign of its power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageSource {
    /// Image centre x, die coordinates, m.
    pub cx: f64,
    /// Image centre y, die coordinates, m.
    pub cy: f64,
    /// +1 for heat sources, −1 for the bottom-mirror sinks.
    pub sign: f64,
    /// Depth of the image plane below the surface (0 for lateral images,
    /// `2·thickness` for bottom mirrors), m.
    pub depth: f64,
}

/// Expands a block centre into its lateral images (including the original)
/// for a `die_w × die_l` die.
///
/// With `order = k`, each axis contributes reflections `m ∈ [−k, k]` of
/// both parities, giving `(2·(2k+1))²` images per block — `k = 0` keeps
/// just the two in-place parities collapsing to the original source.
pub fn lateral_images(cx: f64, cy: f64, die_w: f64, die_l: f64, order: usize) -> Vec<(f64, f64)> {
    let k = order as i64;
    let mut out = Vec::with_capacity(((2 * k as usize + 1) * 2).pow(2));
    for m in -k..=k {
        for &px in &[cx, -cx] {
            let x = 2.0 * m as f64 * die_w + px;
            for n in -k..=k {
                for &py in &[cy, -cy] {
                    let y = 2.0 * n as f64 * die_l + py;
                    out.push((x, y));
                }
            }
        }
    }
    // The original (m = n = 0, +x, +y) is included; remove the duplicate
    // that appears when the block sits exactly on a mirror plane.
    out.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite"));
    out.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-15 && (a.1 - b.1).abs() < 1e-15);
    out
}

/// Full image expansion of one block: lateral lattice times the depth
/// series.
///
/// `z_order` controls the isothermal-bottom treatment:
///
/// * **`z_order = 0`** — no bottom treatment (semi-infinite substrate),
/// * **`z_order = 1`** — **the paper's method**: one `−P` image mirrored
///   through the bottom plane (zeroes the bottom-plane temperature
///   exactly; the mirror's flux leaks through the adiabatic top),
/// * **`z_order ≥ 3` (odd)** — deeper truncations of the exact finite-slab
///   Green's function. Reflecting alternately across the Dirichlet bottom
///   and the Neumann top gives images of strength `2P·(−1)^k` at depths
///   `2k·thickness` (the factor 2 merges each image with its own top-plane
///   reflection; validated against the FDM reference). The truncated tail
///   is handled trapezoid-style — the last term keeps half weight — which
///   (a) leaves zero net monopole per lateral site, so the 2-D image
///   lattice converges, and (b) reduces **exactly** to the paper's single
///   `−P` mirror at `z_order = 1`:
///
/// ```text
/// T(r) = K(r, 0) + Σ_{k=1}^{z−1} 2·(−1)^k·K(r, 2k·t) + (−1)^z·K(r, 2z·t)
/// ```
///
/// Even non-zero orders are rounded up to odd (a truncation ending on a
/// positive full-weight term would diverge laterally).
pub fn expand_images(
    cx: f64,
    cy: f64,
    die_w: f64,
    die_l: f64,
    thickness: f64,
    lateral_order: usize,
    z_order: usize,
) -> Vec<ImageSource> {
    let z_order = if z_order > 0 && z_order.is_multiple_of(2) {
        z_order + 1
    } else {
        z_order
    };
    let lateral = lateral_images(cx, cy, die_w, die_l, lateral_order);
    let mut out = Vec::with_capacity(lateral.len() * (z_order + 1));
    for &(x, y) in &lateral {
        for k in 0..=z_order {
            let magnitude = if k == 0 || k == z_order { 1.0 } else { 2.0 };
            out.push(ImageSource {
                cx: x,
                cy: y,
                sign: magnitude * if k % 2 == 0 { 1.0 } else { -1.0 },
                depth: 2.0 * k as f64 * thickness,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_zero_keeps_parities_only() {
        let imgs = lateral_images(0.3e-3, 0.7e-3, 1e-3, 1e-3, 0);
        // (±x) × (±y) = 4 distinct images when the block is off-centre.
        assert_eq!(imgs.len(), 4);
        assert!(imgs.contains(&(0.3e-3, 0.7e-3)));
        assert!(imgs.contains(&(-0.3e-3, 0.7e-3)));
    }

    #[test]
    fn image_count_grows_with_order() {
        let i1 = lateral_images(0.3e-3, 0.7e-3, 1e-3, 1e-3, 1).len();
        let i2 = lateral_images(0.3e-3, 0.7e-3, 1e-3, 1e-3, 2).len();
        assert_eq!(i1, 36);
        assert_eq!(i2, 100);
    }

    #[test]
    fn centered_block_on_mirror_plane_dedupes() {
        // A block at the die centre: ±x images coincide pairwise after the
        // lattice shift? They do not (centre is not on an edge); but a
        // block AT x = 0 does.
        let imgs = lateral_images(0.0, 0.4e-3, 1e-3, 1e-3, 0);
        assert_eq!(imgs.len(), 2);
    }

    #[test]
    fn mirror_symmetry_across_the_edge() {
        // For every image at x there is one at -x (flux through x = 0
        // cancels by symmetry).
        let imgs = lateral_images(0.3e-3, 0.5e-3, 1e-3, 1e-3, 2);
        for &(x, y) in &imgs {
            assert!(
                imgs.iter()
                    .any(|&(x2, y2)| (x2 + x).abs() < 1e-15 && (y2 - y).abs() < 1e-15),
                "missing mirror of ({x}, {y})"
            );
        }
    }

    #[test]
    fn paper_mode_adds_one_negative_mirror() {
        let imgs = expand_images(0.3e-3, 0.5e-3, 1e-3, 1e-3, 0.3e-3, 1, 1);
        let positives = imgs.iter().filter(|i| i.sign > 0.0).count();
        let negatives = imgs.iter().filter(|i| i.sign < 0.0).count();
        assert_eq!(positives, negatives);
        for i in imgs.iter().filter(|i| i.sign < 0.0) {
            assert_eq!(i.depth, 0.6e-3);
        }
    }

    #[test]
    fn no_bottom_mirror_option() {
        let imgs = expand_images(0.3e-3, 0.5e-3, 1e-3, 1e-3, 0.3e-3, 1, 0);
        assert!(imgs.iter().all(|i| i.sign > 0.0 && i.depth == 0.0));
    }

    #[test]
    fn depth_series_alternates_and_deepens() {
        // Order 4 rounds up to 5; lateral order 0 with an off-axis block
        // gives four lateral parities, six depth terms each.
        let imgs = expand_images(0.5e-3, 0.5e-3, 1e-3, 1e-3, 0.3e-3, 0, 4);
        assert_eq!(imgs.len(), 24);
        for (i, img) in imgs.iter().enumerate() {
            let k = i % 6;
            // Interior terms carry double weight; the endpoints (k = 0 and
            // the trapezoid-weighted last term) carry single weight.
            let magnitude = if k == 0 || k == 5 { 1.0 } else { 2.0 };
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            assert_eq!(img.sign, magnitude * sign, "term {k}");
            assert!((img.depth - 2.0 * k as f64 * 0.3e-3).abs() < 1e-15);
        }
    }

    #[test]
    fn depth_series_has_zero_net_monopole() {
        // The signed weights of the depth series must sum to zero for any
        // order, or the lateral lattice diverges.
        for z in [1usize, 3, 5, 9, 4] {
            let imgs = expand_images(0.2e-3, 0.3e-3, 1e-3, 1e-3, 0.3e-3, 0, z);
            // Group by lateral site: all sites share the same depth column,
            // so the total must vanish.
            let net: f64 = imgs.iter().map(|i| i.sign).sum();
            assert!(net.abs() < 1e-12, "z = {z}: net {net}");
        }
    }
}
