//! §3 of the paper: fast analytical thermal-profile estimation.
//!
//! * [`rect`] — the closed forms: point source (Eq. 16), exact centre
//!   temperature of a rectangle (Eq. 18), finite-line far field (Eq. 19)
//!   and their `min` combination (Eq. 20),
//! * [`images`] — the method of images enforcing adiabatic die sides and
//!   the isothermal bottom (Figs. 6–7),
//! * [`profile`] — [`ThermalModel`]: superposition over a floorplan
//!   (Eq. 21) with images, surface maps and cross-sections,
//! * [`resistance`] — self-heating thermal resistance from Eq. 18
//!   (the model line of Fig. 10),
//! * [`conductivity`] — self-consistent `k(T)` iteration (extension).

pub mod conductivity;
pub mod images;
pub mod profile;
pub mod rect;
pub mod resistance;

pub use profile::ThermalModel;
