//! §3 of the paper: fast analytical thermal-profile estimation.
//!
//! * [`rect`] — the closed forms: point source (Eq. 16), exact centre
//!   temperature of a rectangle (Eq. 18), finite-line far field (Eq. 19)
//!   and their `min` combination (Eq. 20),
//! * [`images`] — the method of images enforcing adiabatic die sides and
//!   the isothermal bottom (Figs. 6–7),
//! * [`profile`] — [`ThermalModel`]: superposition over a floorplan
//!   (Eq. 21) with images, surface maps and cross-sections,
//! * [`map`] — FFT-accelerated high-resolution temperature maps: the
//!   Eq. 20/21 image sum reorganized as a tile-grid convolution
//!   (power blurring) for hotspot localization at thousands of tiles,
//! * [`resistance`] — self-heating thermal resistance from Eq. 18
//!   (the model line of Fig. 10),
//! * [`conductivity`] — self-consistent `k(T)` iteration (extension),
//! * [`capacitance`] — per-block thermal capacitances closing the
//!   chip-scale transient system (Fig. 9 scaled to the floorplan; the
//!   solver lives in [`cosim::transient`](crate::cosim::transient)).
//!
//! The batched form of Eq. 21 — the per-floorplan influence matrix reused
//! across power vectors — lives in
//! [`cosim::operator`](crate::cosim::operator). The equation-by-equation
//! map from the paper to this code lives in `docs/EQUATIONS.md` at the
//! repository root.
//!
//! # Example: Eq. 21 surface queries
//!
//! ```
//! use ptherm_core::thermal::ThermalModel;
//! use ptherm_floorplan::Floorplan;
//!
//! let fp = Floorplan::paper_three_blocks();
//! let model = ThermalModel::paper_defaults(&fp);
//! // Hottest over the active block, coolest in the far corner.
//! assert!(model.temperature(0.30e-3, 0.70e-3) > model.temperature(0.95e-3, 0.05e-3));
//! ```

pub mod capacitance;
pub mod conductivity;
pub mod images;
pub mod map;
pub mod profile;
pub mod rect;
pub mod resistance;

pub use map::{map_operator_fingerprint, MapOperator, MapWorkspace};
pub use profile::ThermalModel;
