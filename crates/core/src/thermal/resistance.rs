//! Self-heating thermal resistance from Eq. (18) — the model line of
//! Fig. 10.
//!
//! The paper defines `R_th = ΔT_SH / P`; with the analytical centre
//! temperature (Eq. 18) linear in power, the model prediction is simply
//! Eq. 18 evaluated per watt. The Fig. 10 experiment compares this against
//! the virtual measurement rig (and the finite-difference die solve).

use crate::thermal::rect::center_rise;

/// Model thermal resistance of a `w × l` device on a semi-infinite
/// substrate of conductivity `k`, K/W (Eq. 18 per watt).
///
/// # Example
///
/// ```
/// use ptherm_core::thermal::resistance::{self_heating_resistance, self_heating_rise};
///
/// let rth = self_heating_resistance(148.0, 1e-6, 0.35e-6);
/// assert!(rth > 1e3 && rth < 1e6); // micrometre devices: 10^3..10^5 K/W
/// let dt = self_heating_rise(10e-3, 148.0, 1e-6, 0.35e-6);
/// assert!((dt - 10e-3 * rth).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `w`, `l` or `k` is not strictly positive.
pub fn self_heating_resistance(k: f64, w: f64, l: f64) -> f64 {
    center_rise(1.0, k, w, l)
}

/// Predicted steady self-heating rise for a device dissipating `power`, K.
pub fn self_heating_rise(power: f64, k: f64, w: f64, l: f64) -> f64 {
    power * self_heating_resistance(k, w, l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrower_devices_run_hotter() {
        let k = 148.0;
        let l = 0.35e-6;
        let r: Vec<f64> = [0.5e-6, 1e-6, 2e-6, 5e-6]
            .iter()
            .map(|&w| self_heating_resistance(k, w, l))
            .collect();
        assert!(
            r.windows(2).all(|p| p[1] < p[0]),
            "Rth must fall with width: {r:?}"
        );
    }

    #[test]
    fn magnitude_matches_measured_device_scale() {
        // Micrometre devices on silicon: 10^3–10^5 K/W — the range of the
        // paper's Fig. 10.
        let r = self_heating_resistance(148.0, 1e-6, 0.35e-6);
        assert!(r > 1e3 && r < 1e6, "Rth = {r:.3e} K/W");
    }

    #[test]
    fn rise_is_linear_in_power() {
        let k = 148.0;
        let dt = self_heating_rise(10e-3, k, 1e-6, 0.35e-6);
        let dt2 = self_heating_rise(20e-3, k, 1e-6, 0.35e-6);
        assert!((dt2 / dt - 2.0).abs() < 1e-12);
    }

    #[test]
    fn resistance_scales_inversely_with_size() {
        // Doubling both dimensions halves Rth (1/λ law of the 1/r kernel).
        let k = 148.0;
        let r1 = self_heating_resistance(k, 1e-6, 0.5e-6);
        let r2 = self_heating_resistance(k, 2e-6, 1e-6);
        assert!((r1 / r2 - 2.0).abs() < 1e-12);
    }
}
