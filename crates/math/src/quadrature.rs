//! Numerical integration: fixed-order Gauss–Legendre and adaptive Simpson,
//! in one and two dimensions.
//!
//! The "exact" thermal profile of the paper (Eq. 17) is a singular surface
//! integral `∬ dA / r`; the adaptive 2-D Simpson rule here integrates it to
//! high accuracy away from the singularity and cross-checks the closed-form
//! corner-term primitive implemented in `ptherm-thermal-num`.

use std::fmt;

/// Error produced by the adaptive integrators.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrateError {
    /// Recursion depth exhausted before the local tolerance was met.
    DepthExhausted {
        /// Interval (or cell) midpoint where refinement gave up.
        at: f64,
    },
    /// The integrand returned NaN or infinity.
    NonFinite {
        /// Evaluation abscissa.
        at: f64,
    },
    /// Invalid integration bounds (reversed or non-finite).
    BadBounds,
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateError::DepthExhausted { at } => {
                write!(f, "adaptive refinement depth exhausted near {at:.6e}")
            }
            IntegrateError::NonFinite { at } => {
                write!(f, "integrand non-finite at {at:.6e}")
            }
            IntegrateError::BadBounds => write!(f, "invalid integration bounds"),
        }
    }
}

impl std::error::Error for IntegrateError {}

/// 16-point Gauss–Legendre nodes on [-1, 1] (positive half; symmetric).
const GL16_X: [f64; 8] = [
    0.0950125098376374,
    0.2816035507792589,
    0.4580167776572274,
    0.6178762444026438,
    0.755404408355003,
    0.8656312023878318,
    0.9445750230732326,
    0.9894009349916499,
];
const GL16_W: [f64; 8] = [
    0.1894506104550685,
    0.1826034150449236,
    0.1691565193950025,
    0.1495959888165767,
    0.1246289712555339,
    0.0951585116824928,
    0.0622535239386479,
    0.0271524594117541,
];

/// Fixed 16-point Gauss–Legendre quadrature on `[a, b]`.
///
/// Exact for polynomials up to degree 31; the workhorse for smooth
/// integrands.
///
/// # Example
///
/// ```
/// use ptherm_math::quadrature::gauss_legendre_16;
///
/// let integral = gauss_legendre_16(|x| x.sin(), 0.0, std::f64::consts::PI);
/// assert!((integral - 2.0).abs() < 1e-12);
/// ```
pub fn gauss_legendre_16<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64) -> f64 {
    let c = 0.5 * (a + b);
    let h = 0.5 * (b - a);
    let mut acc = 0.0;
    for i in 0..8 {
        let dx = h * GL16_X[i];
        acc += GL16_W[i] * (f(c - dx) + f(c + dx));
    }
    acc * h
}

fn simpson(fa: f64, fm: f64, fb: f64, h: f64) -> f64 {
    h / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_simpson_rec<F: FnMut(f64) -> f64>(
    f: &mut F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> Result<f64, IntegrateError> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    if !flm.is_finite() {
        return Err(IntegrateError::NonFinite { at: lm });
    }
    if !frm.is_finite() {
        return Err(IntegrateError::NonFinite { at: rm });
    }
    let left = simpson(fa, flm, fm, m - a);
    let right = simpson(fm, frm, fb, b - m);
    let delta = left + right - whole;
    if delta.abs() <= 15.0 * tol {
        return Ok(left + right + delta / 15.0);
    }
    if depth == 0 {
        return Err(IntegrateError::DepthExhausted { at: m });
    }
    let l = adaptive_simpson_rec(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)?;
    let r = adaptive_simpson_rec(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)?;
    Ok(l + r)
}

/// Adaptive Simpson quadrature on `[a, b]` with absolute tolerance `tol`.
///
/// # Errors
///
/// See [`IntegrateError`].
pub fn adaptive_simpson<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: usize,
) -> Result<f64, IntegrateError> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(IntegrateError::BadBounds);
    }
    let m = 0.5 * (a + b);
    let fa = f(a);
    let fm = f(m);
    let fb = f(b);
    for (v, at) in [(fa, a), (fm, m), (fb, b)] {
        if !v.is_finite() {
            return Err(IntegrateError::NonFinite { at });
        }
    }
    let whole = simpson(fa, fm, fb, b - a);
    adaptive_simpson_rec(&mut f, a, b, fa, fm, fb, whole, tol, max_depth)
}

/// Adaptive 2-D integration of `f(x, y)` over the rectangle
/// `[ax, bx] x [ay, by]`, by nesting adaptive Simpson rules.
///
/// The inner integral is evaluated with tolerance `tol / (bx - ax)` so the
/// outer error target is honoured.
///
/// # Errors
///
/// See [`IntegrateError`].
pub fn adaptive_simpson_2d<F>(
    mut f: F,
    ax: f64,
    bx: f64,
    ay: f64,
    by: f64,
    tol: f64,
    max_depth: usize,
) -> Result<f64, IntegrateError>
where
    F: FnMut(f64, f64) -> f64,
{
    if ax >= bx || ay >= by {
        return Err(IntegrateError::BadBounds);
    }
    let inner_tol = tol / (bx - ax).max(1.0);
    let mut failure: Option<IntegrateError> = None;
    let result = adaptive_simpson(
        |x| match adaptive_simpson(|y| f(x, y), ay, by, inner_tol, max_depth) {
            Ok(v) => v,
            Err(e) => {
                if failure.is_none() {
                    failure = Some(e);
                }
                f64::NAN
            }
        },
        ax,
        bx,
        tol,
        max_depth,
    );
    match (result, failure) {
        (Ok(v), None) => Ok(v),
        (_, Some(e)) => Err(e),
        (Err(e), None) => Err(e),
    }
}

/// Tensor-product 16x16 Gauss–Legendre rule over a rectangle; fast and
/// accurate for smooth 2-D integrands (used per-subcell by the thermal
/// quadrature reference).
pub fn gauss_legendre_2d<F>(mut f: F, ax: f64, bx: f64, ay: f64, by: f64) -> f64
where
    F: FnMut(f64, f64) -> f64,
{
    let cx = 0.5 * (ax + bx);
    let hx = 0.5 * (bx - ax);
    let cy = 0.5 * (ay + by);
    let hy = 0.5 * (by - ay);
    let mut acc = 0.0;
    for i in 0..8 {
        for si in [-1.0, 1.0] {
            let x = cx + si * hx * GL16_X[i];
            let wi = GL16_W[i];
            for j in 0..8 {
                for sj in [-1.0, 1.0] {
                    let y = cy + sj * hy * GL16_X[j];
                    acc += wi * GL16_W[j] * f(x, y);
                }
            }
        }
    }
    acc * hx * hy
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn gauss_legendre_polynomial_exactness() {
        // Degree-9 polynomial integrates exactly.
        let f = |x: f64| 3.0 * x.powi(9) - x.powi(4) + 2.0;
        let got = gauss_legendre_16(f, -1.0, 2.0);
        let exact = |x: f64| 0.3 * x.powi(10) - 0.2 * x.powi(5) + 2.0 * x;
        assert!((got - (exact(2.0) - exact(-1.0))).abs() < 1e-12);
    }

    #[test]
    fn adaptive_simpson_smooth() {
        let v = adaptive_simpson(|x| (-x).exp(), 0.0, 10.0, 1e-12, 40).unwrap();
        assert!((v - (1.0 - (-10.0f64).exp())).abs() < 1e-10);
    }

    #[test]
    fn adaptive_simpson_handles_peaked_integrand() {
        // Narrow Lorentzian centered off-midpoint.
        let eps = 1e-3;
        let v = adaptive_simpson(
            |x: f64| eps / (eps * eps + (x - 0.3) * (x - 0.3)),
            -1.0,
            1.0,
            1e-10,
            48,
        )
        .unwrap();
        let exact = ((1.0 - 0.3) / eps).atan() + ((1.0 + 0.3) / eps).atan();
        assert!((v - exact).abs() < 1e-7, "{v} vs {exact}");
    }

    #[test]
    fn bad_bounds_rejected() {
        assert!(matches!(
            adaptive_simpson(|x| x, 1.0, 0.0, 1e-9, 10),
            Err(IntegrateError::BadBounds)
        ));
        assert!(matches!(
            adaptive_simpson_2d(|x, _| x, 0.0, 1.0, 2.0, 1.0, 1e-9, 10),
            Err(IntegrateError::BadBounds)
        ));
    }

    #[test]
    fn nonfinite_integrand_reported() {
        assert!(matches!(
            adaptive_simpson(|x| 1.0 / x, 0.0, 1.0, 1e-9, 20),
            Err(IntegrateError::NonFinite { .. })
        ));
    }

    #[test]
    fn two_dimensional_separable() {
        // ∬ sin(x) e^{-y} over [0,pi]x[0,1] = 2 (1 - e^{-1}).
        let v =
            adaptive_simpson_2d(|x, y| x.sin() * (-y).exp(), 0.0, PI, 0.0, 1.0, 1e-10, 30).unwrap();
        let exact = 2.0 * (1.0 - (-1.0f64).exp());
        assert!((v - exact).abs() < 1e-8);
        let g = gauss_legendre_2d(|x, y| x.sin() * (-y).exp(), 0.0, PI, 0.0, 1.0);
        assert!((g - exact).abs() < 1e-10);
    }

    #[test]
    fn inverse_distance_integral_matches_closed_form() {
        // ∬_{[-a,a]^2} dA / sqrt(x^2 + y^2 + z^2) with z offset has the
        // classic corner closed form; check the quadrature against it at
        // z = 0.5, a = 1.
        let a = 1.0;
        let z: f64 = 0.5;
        let num = adaptive_simpson_2d(
            |x, y| 1.0 / (x * x + y * y + z * z).sqrt(),
            -a,
            a,
            -a,
            a,
            1e-10,
            36,
        )
        .unwrap();
        // Corner primitive: F(x,y) = x ln(y+r) + y ln(x+r) - z atan(x y / (z r)).
        let corner = |x: f64, y: f64| {
            let r = (x * x + y * y + z * z).sqrt();
            x * (y + r).ln() + y * (x + r).ln() - z * (x * y / (z * r)).atan()
        };
        let exact = corner(a, a) - corner(-a, a) - corner(a, -a) + corner(-a, -a);
        assert!((num - exact).abs() < 1e-7, "{num} vs {exact}");
    }
}
