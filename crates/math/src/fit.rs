//! Curve fitting: linear least squares, Levenberg–Marquardt, and the
//! exponential-saturation fit used to extract thermal resistances from
//! self-heating transients (Figs. 9–10 of the paper).

use crate::matrix::Matrix;
use std::fmt;

/// Error produced by the fitting routines.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer samples than parameters, or empty input.
    NotEnoughData {
        /// Samples provided.
        samples: usize,
        /// Parameters requested.
        parameters: usize,
    },
    /// Input lengths differ or contain non-finite values.
    BadInput {
        /// Explanation.
        detail: String,
    },
    /// Normal equations were singular (collinear basis).
    Degenerate,
    /// Iterative refinement failed to converge.
    NotConverged {
        /// Best parameter estimate found.
        best: Vec<f64>,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::NotEnoughData {
                samples,
                parameters,
            } => {
                write!(
                    f,
                    "not enough data: {samples} samples for {parameters} parameters"
                )
            }
            FitError::BadInput { detail } => write!(f, "bad fit input: {detail}"),
            FitError::Degenerate => write!(f, "degenerate least-squares system"),
            FitError::NotConverged { .. } => write!(f, "fit iteration did not converge"),
        }
    }
}

impl std::error::Error for FitError {}

/// Result of a least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// Fitted parameters.
    pub parameters: Vec<f64>,
    /// Root-mean-square residual.
    pub rms_residual: f64,
}

fn validate_xy(x: &[f64], y: &[f64]) -> Result<(), FitError> {
    if x.len() != y.len() {
        return Err(FitError::BadInput {
            detail: format!("x has {} samples, y has {}", x.len(), y.len()),
        });
    }
    if x.iter().chain(y).any(|v| !v.is_finite()) {
        return Err(FitError::BadInput {
            detail: "non-finite sample".into(),
        });
    }
    Ok(())
}

/// Linear least squares: finds `beta` minimizing `||X beta - y||`.
///
/// `basis` evaluates the row of regressors for one abscissa.
///
/// # Errors
///
/// See [`FitError`].
///
/// # Example
///
/// ```
/// use ptherm_math::fit::linear_least_squares;
///
/// # fn main() -> Result<(), ptherm_math::fit::FitError> {
/// // Fit y = a + b x to exact line 2 + 3x.
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [2.0, 5.0, 8.0, 11.0];
/// let fit = linear_least_squares(&x, &y, 2, |xi| vec![1.0, xi])?;
/// assert!((fit.parameters[0] - 2.0).abs() < 1e-10);
/// assert!((fit.parameters[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn linear_least_squares<B>(
    x: &[f64],
    y: &[f64],
    n_params: usize,
    mut basis: B,
) -> Result<FitResult, FitError>
where
    B: FnMut(f64) -> Vec<f64>,
{
    validate_xy(x, y)?;
    if x.len() < n_params || n_params == 0 {
        return Err(FitError::NotEnoughData {
            samples: x.len(),
            parameters: n_params,
        });
    }
    // Normal equations X'X beta = X'y (adequate at these sizes).
    let mut xtx = Matrix::zeros(n_params, n_params);
    let mut xty = vec![0.0; n_params];
    for (&xi, &yi) in x.iter().zip(y) {
        let row = basis(xi);
        assert_eq!(row.len(), n_params, "basis row has wrong length");
        for i in 0..n_params {
            xty[i] += row[i] * yi;
            for j in 0..n_params {
                xtx[(i, j)] += row[i] * row[j];
            }
        }
    }
    let beta = xtx.solve(&xty).map_err(|_| FitError::Degenerate)?;
    let mut ss = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let row = basis(xi);
        let pred: f64 = row.iter().zip(&beta).map(|(r, b)| r * b).sum();
        ss += (pred - yi) * (pred - yi);
    }
    Ok(FitResult {
        parameters: beta,
        rms_residual: (ss / x.len() as f64).sqrt(),
    })
}

/// Parameters of the saturating exponential `y(t) = y0 + dy (1 - e^{-t/tau})`.
///
/// This is precisely the self-heating waveform of the paper's Fig. 9: the
/// device temperature charges its thermal capacitance towards
/// `ΔT_SH = R_th P` with time constant `tau = R_th C_th`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpSaturation {
    /// Value at `t = 0`.
    pub y0: f64,
    /// Total excursion (`y(inf) - y0`).
    pub dy: f64,
    /// Time constant.
    pub tau: f64,
    /// Root-mean-square residual of the fit.
    pub rms_residual: f64,
}

/// Fits `y(t) = y0 + dy (1 - e^{-t/tau})` to samples.
///
/// Strategy: grid + golden-section search on `tau` (the only nonlinear
/// parameter); for each candidate `tau` the conditionally-linear `y0, dy`
/// are solved exactly. Robust to the noise levels of the synthetic scope.
///
/// # Errors
///
/// See [`FitError`]. Requires at least 4 samples and a strictly increasing
/// positive time axis.
pub fn fit_exp_saturation(t: &[f64], y: &[f64]) -> Result<ExpSaturation, FitError> {
    validate_xy(t, y)?;
    if t.len() < 4 {
        return Err(FitError::NotEnoughData {
            samples: t.len(),
            parameters: 3,
        });
    }
    if t.windows(2).any(|w| w[1] <= w[0]) {
        return Err(FitError::BadInput {
            detail: "time axis must be increasing".into(),
        });
    }
    let span = t[t.len() - 1] - t[0];
    if span <= 0.0 {
        return Err(FitError::BadInput {
            detail: "zero time span".into(),
        });
    }

    let sse_for = |tau: f64| -> Result<(f64, f64, f64), FitError> {
        // Conditionally-linear solve for (y0, dy) at fixed tau.
        let fit = linear_least_squares(t, y, 2, |ti| vec![1.0, 1.0 - (-(ti - t[0]) / tau).exp()])?;
        let y0 = fit.parameters[0];
        let dy = fit.parameters[1];
        Ok((fit.rms_residual, y0, dy))
    };

    // Log-spaced grid over plausible time constants.
    let mut best = (f64::INFINITY, span / 5.0, 0.0, 0.0); // (rms, tau, y0, dy)
    let lo = span * 1e-3;
    let hi = span * 10.0;
    let n_grid = 60;
    for k in 0..=n_grid {
        let tau = lo * (hi / lo).powf(k as f64 / n_grid as f64);
        if let Ok((rms, y0, dy)) = sse_for(tau) {
            if rms < best.0 {
                best = (rms, tau, y0, dy);
            }
        }
    }
    if !best.0.is_finite() {
        return Err(FitError::Degenerate);
    }
    // Golden-section refinement around the best grid point.
    let mut a = best.1 / 2.0;
    let mut b = best.1 * 2.0;
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    for _ in 0..60 {
        let c = b - phi * (b - a);
        let d = a + phi * (b - a);
        let fc = sse_for(c).map(|v| v.0).unwrap_or(f64::INFINITY);
        let fd = sse_for(d).map(|v| v.0).unwrap_or(f64::INFINITY);
        if fc < fd {
            b = d;
        } else {
            a = c;
        }
    }
    let tau = 0.5 * (a + b);
    let (rms, y0, dy) = sse_for(tau)?;
    Ok(ExpSaturation {
        y0,
        dy,
        tau,
        rms_residual: rms,
    })
}

/// Levenberg–Marquardt minimization of `sum_i r_i(p)^2` with forward-difference
/// Jacobians.
///
/// `residuals(p)` returns the residual vector. Used for the occasional
/// non-trivial calibration fit in the experiment harness.
///
/// # Errors
///
/// See [`FitError`].
pub fn levenberg_marquardt<R>(
    mut residuals: R,
    p0: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<FitResult, FitError>
where
    R: FnMut(&[f64]) -> Vec<f64>,
{
    let n = p0.len();
    if n == 0 {
        return Err(FitError::NotEnoughData {
            samples: 0,
            parameters: 0,
        });
    }
    let mut p = p0.to_vec();
    let mut r = residuals(&p);
    if r.len() < n {
        return Err(FitError::NotEnoughData {
            samples: r.len(),
            parameters: n,
        });
    }
    if r.iter().any(|v| !v.is_finite()) {
        return Err(FitError::BadInput {
            detail: "non-finite residual at p0".into(),
        });
    }
    let mut ss: f64 = r.iter().map(|v| v * v).sum();
    let mut lambda = 1e-3;
    let m = r.len();

    for _ in 0..max_iter {
        // Forward-difference Jacobian (m x n).
        let mut jac = Matrix::zeros(m, n);
        for j in 0..n {
            let h = 1e-7 * (1.0 + p[j].abs());
            let mut pj = p.clone();
            pj[j] += h;
            let rj = residuals(&pj);
            for i in 0..m {
                jac[(i, j)] = (rj[i] - r[i]) / h;
            }
        }
        // Normal equations with damping: (J'J + lambda diag(J'J)) dp = -J'r.
        let jt = jac.transposed();
        let mut jtj = jt.mul_mat(&jac);
        let jtr = jt.mul_vec(&r);
        let mut improved = false;
        for _ in 0..20 {
            let mut damped = jtj.clone();
            for i in 0..n {
                let d = jtj[(i, i)];
                damped[(i, i)] = d + lambda * d.max(1e-12);
            }
            let neg: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let Ok(dp) = damped.solve(&neg) else {
                lambda *= 10.0;
                continue;
            };
            let p_new: Vec<f64> = p.iter().zip(&dp).map(|(a, b)| a + b).collect();
            let r_new = residuals(&p_new);
            let ss_new: f64 = r_new.iter().map(|v| v * v).sum();
            if ss_new.is_finite() && ss_new < ss {
                let rel = (ss - ss_new) / ss.max(1e-300);
                p = p_new;
                r = r_new;
                ss = ss_new;
                lambda = (lambda * 0.3).max(1e-12);
                improved = true;
                if rel < tol {
                    return Ok(FitResult {
                        parameters: p,
                        rms_residual: (ss / m as f64).sqrt(),
                    });
                }
                break;
            }
            lambda *= 10.0;
            if lambda > 1e12 {
                break;
            }
        }
        if !improved {
            // Converged to a (possibly local) minimum.
            return Ok(FitResult {
                parameters: p,
                rms_residual: (ss / m as f64).sqrt(),
            });
        }
        // `jtj` is recomputed next loop; silence the unused assignment.
        let _ = &mut jtj;
    }
    Err(FitError::NotConverged { best: p })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_quadratic_basis() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|&v| 1.5 - 0.5 * v + 0.25 * v * v).collect();
        let fit = linear_least_squares(&x, &y, 3, |xi| vec![1.0, xi, xi * xi]).unwrap();
        assert!((fit.parameters[0] - 1.5).abs() < 1e-9);
        assert!((fit.parameters[1] + 0.5).abs() < 1e-9);
        assert!((fit.parameters[2] - 0.25).abs() < 1e-9);
        assert!(fit.rms_residual < 1e-10);
    }

    #[test]
    fn degenerate_basis_detected() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 1.0, 2.0, 3.0];
        // Two identical regressors are collinear.
        assert!(matches!(
            linear_least_squares(&x, &y, 2, |xi| vec![xi, xi]),
            Err(FitError::Degenerate)
        ));
    }

    #[test]
    fn not_enough_data_detected() {
        assert!(matches!(
            linear_least_squares(&[1.0], &[1.0], 2, |xi| vec![1.0, xi]),
            Err(FitError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn exp_saturation_recovers_truth() {
        let tau = 0.02;
        let y0 = 1.3;
        let dy = 0.7;
        let t: Vec<f64> = (0..400).map(|i| i as f64 * 2.5e-4).collect();
        let y: Vec<f64> = t
            .iter()
            .map(|&ti| y0 + dy * (1.0 - (-ti / tau).exp()))
            .collect();
        let fit = fit_exp_saturation(&t, &y).unwrap();
        assert!((fit.y0 - y0).abs() < 1e-6, "y0 {}", fit.y0);
        assert!((fit.dy - dy).abs() < 1e-5, "dy {}", fit.dy);
        assert!((fit.tau - tau).abs() / tau < 1e-4, "tau {}", fit.tau);
    }

    #[test]
    fn exp_saturation_tolerates_noise() {
        // Deterministic pseudo-noise, ~1% of the excursion.
        let tau = 5e-3;
        let dy = 2.0;
        let mut seed = 42u64;
        let mut noise = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * 0.02
        };
        let t: Vec<f64> = (0..600).map(|i| i as f64 * 5e-5).collect();
        let y: Vec<f64> = t
            .iter()
            .map(|&ti| dy * (1.0 - (-ti / tau).exp()) + noise())
            .collect();
        let fit = fit_exp_saturation(&t, &y).unwrap();
        assert!((fit.dy - dy).abs() / dy < 0.02, "dy {}", fit.dy);
        assert!((fit.tau - tau).abs() / tau < 0.05, "tau {}", fit.tau);
    }

    #[test]
    fn exp_saturation_input_validation() {
        assert!(matches!(
            fit_exp_saturation(&[0.0, 1.0], &[0.0, 1.0]),
            Err(FitError::NotEnoughData { .. })
        ));
        assert!(matches!(
            fit_exp_saturation(&[0.0, 1.0, 0.5, 2.0], &[0.0; 4]),
            Err(FitError::BadInput { .. })
        ));
    }

    #[test]
    fn lm_fits_gaussian_amplitude_and_width() {
        let xs: Vec<f64> = (0..80).map(|i| -2.0 + i as f64 * 0.05).collect();
        let truth = [2.5, 0.4]; // amplitude, sigma
        let data: Vec<f64> = xs
            .iter()
            .map(|&x| truth[0] * (-(x * x) / (2.0 * truth[1] * truth[1])).exp())
            .collect();
        let fit = levenberg_marquardt(
            |p| {
                xs.iter()
                    .zip(&data)
                    .map(|(&x, &d)| p[0] * (-(x * x) / (2.0 * p[1] * p[1])).exp() - d)
                    .collect()
            },
            &[1.0, 1.0],
            1e-14,
            200,
        )
        .unwrap();
        assert!((fit.parameters[0] - truth[0]).abs() < 1e-5);
        assert!((fit.parameters[1].abs() - truth[1]).abs() < 1e-5);
    }

    #[test]
    fn lm_rejects_underdetermined() {
        assert!(matches!(
            levenberg_marquardt(|_| vec![1.0], &[0.0, 0.0], 1e-10, 10),
            Err(FitError::NotEnoughData { .. })
        ));
    }
}
