//! Tridiagonal systems via the Thomas algorithm.
//!
//! Transistor-stack Jacobians are tridiagonal (each internal node only couples
//! to its neighbours), so the Newton iterations in `ptherm-spice` solve their
//! linear systems here in O(n) instead of O(n^3).

use std::fmt;

/// Error returned by [`solve_tridiagonal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveTridiagError {
    /// Bands or right-hand side have inconsistent lengths.
    DimensionMismatch {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// Elimination broke down (zero pivot) — the system is singular or needs
    /// pivoting beyond what the Thomas algorithm provides.
    ZeroPivot {
        /// Row at which the pivot vanished.
        row: usize,
    },
}

impl fmt::Display for SolveTridiagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveTridiagError::DimensionMismatch { detail } => {
                write!(f, "tridiagonal dimension mismatch: {detail}")
            }
            SolveTridiagError::ZeroPivot { row } => {
                write!(f, "tridiagonal elimination hit a zero pivot at row {row}")
            }
        }
    }
}

impl std::error::Error for SolveTridiagError {}

/// Solves a tridiagonal system `A x = d`.
///
/// `lower` is the sub-diagonal (length `n-1`), `diag` the main diagonal
/// (length `n`), `upper` the super-diagonal (length `n-1`).
///
/// # Errors
///
/// Returns [`SolveTridiagError::DimensionMismatch`] on inconsistent band
/// lengths and [`SolveTridiagError::ZeroPivot`] when elimination breaks down.
///
/// # Example
///
/// ```
/// use ptherm_math::tridiag::solve_tridiagonal;
///
/// # fn main() -> Result<(), ptherm_math::tridiag::SolveTridiagError> {
/// // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8]  =>  x = [1; 2; 3]
/// let x = solve_tridiagonal(&[1.0, 1.0], &[2.0, 2.0, 2.0], &[1.0, 1.0], &[4.0, 8.0, 8.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// assert!((x[2] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_tridiagonal(
    lower: &[f64],
    diag: &[f64],
    upper: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, SolveTridiagError> {
    let n = diag.len();
    if n == 0 {
        return Err(SolveTridiagError::DimensionMismatch {
            detail: "empty diagonal".into(),
        });
    }
    if lower.len() != n - 1 || upper.len() != n - 1 || rhs.len() != n {
        return Err(SolveTridiagError::DimensionMismatch {
            detail: format!(
                "diag {n}, lower {}, upper {}, rhs {}",
                lower.len(),
                upper.len(),
                rhs.len()
            ),
        });
    }

    let mut c_star = vec![0.0; n - 1];
    let mut d_star = vec![0.0; n];

    let mut beta = diag[0];
    if beta.abs() < f64::MIN_POSITIVE * 16.0 || !beta.is_finite() {
        return Err(SolveTridiagError::ZeroPivot { row: 0 });
    }
    if n > 1 {
        c_star[0] = upper[0] / beta;
    }
    d_star[0] = rhs[0] / beta;

    for i in 1..n {
        beta = diag[i] - lower[i - 1] * c_star.get(i - 1).copied().unwrap_or(0.0);
        if beta.abs() < f64::MIN_POSITIVE * 16.0 || !beta.is_finite() {
            return Err(SolveTridiagError::ZeroPivot { row: i });
        }
        if i < n - 1 {
            c_star[i] = upper[i] / beta;
        }
        d_star[i] = (rhs[i] - lower[i - 1] * d_star[i - 1]) / beta;
    }

    // Back substitution.
    let mut x = d_star;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c_star[i] * next;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_equation() {
        let x = solve_tridiagonal(&[], &[4.0], &[], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn matches_dense_solver() {
        use crate::matrix::Matrix;
        let n = 12;
        let lower: Vec<f64> = (0..n - 1).map(|i| -1.0 - 0.01 * i as f64).collect();
        let upper: Vec<f64> = (0..n - 1).map(|i| -0.5 - 0.02 * i as f64).collect();
        let diag: Vec<f64> = (0..n).map(|i| 3.0 + 0.1 * i as f64).collect();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();

        let x = solve_tridiagonal(&lower, &diag, &upper, &rhs).unwrap();

        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = diag[i];
            if i + 1 < n {
                a[(i + 1, i)] = lower[i];
                a[(i, i + 1)] = upper[i];
            }
        }
        let x_dense = a.solve(&rhs).unwrap();
        for (a, b) in x.iter().zip(&x_dense) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn dimension_mismatch_detected() {
        assert!(matches!(
            solve_tridiagonal(&[1.0], &[1.0, 1.0, 1.0], &[1.0, 1.0], &[0.0; 3]),
            Err(SolveTridiagError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            solve_tridiagonal(&[], &[], &[], &[]),
            Err(SolveTridiagError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_pivot_detected() {
        assert!(matches!(
            solve_tridiagonal(&[1.0], &[0.0, 1.0], &[1.0], &[1.0, 1.0]),
            Err(SolveTridiagError::ZeroPivot { row: 0 })
        ));
    }
}
