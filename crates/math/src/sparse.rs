//! Compressed sparse row matrices and matrix-free linear operators.
//!
//! The 3-D finite-difference thermal solver produces systems with ~10^5
//! unknowns and 7-point stencils; CSR storage plus a [`LinearOperator`]
//! abstraction keeps the conjugate-gradient solver (see [`crate::cg`])
//! oblivious to whether the matrix is assembled or applied on the fly.

use std::fmt;

/// Anything that can apply `y = A x` for a symmetric positive-definite `A`.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != self.dim()` or
    /// `y.len() != self.dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Diagonal of the operator, used for Jacobi preconditioning.
    /// Returns `None` when the diagonal is not cheaply available.
    fn diagonal(&self) -> Option<Vec<f64>> {
        None
    }
}

/// Error produced while assembling a [`CsrMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildCsrError {
    /// A triplet referenced a row or column outside the matrix.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Matrix dimension.
        dim: usize,
    },
}

impl fmt::Display for BuildCsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCsrError::IndexOutOfBounds { row, col, dim } => {
                write!(f, "triplet ({row}, {col}) outside {dim}x{dim} matrix")
            }
        }
    }
}

impl std::error::Error for BuildCsrError {}

/// Square sparse matrix in compressed-sparse-row form.
///
/// # Example
///
/// ```
/// use ptherm_math::CsrMatrix;
/// use ptherm_math::sparse::LinearOperator;
///
/// # fn main() -> Result<(), ptherm_math::sparse::BuildCsrError> {
/// let a = CsrMatrix::from_triplets(2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)])?;
/// let mut y = vec![0.0; 2];
/// a.apply(&[1.0, 1.0], &mut y);
/// assert_eq!(y, vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    dim: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds an `n x n` CSR matrix from `(row, col, value)` triplets.
    /// Duplicate entries are summed.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCsrError::IndexOutOfBounds`] for triplets outside the
    /// matrix.
    pub fn from_triplets(
        n: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, BuildCsrError> {
        for &(r, c, _) in triplets {
            if r >= n || c >= n {
                return Err(BuildCsrError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    dim: n,
                });
            }
        }
        // Count entries per row, then bucket-sort triplets into rows.
        let mut counts = vec![0usize; n + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut cols = vec![0usize; triplets.len()];
        let mut vals = vec![0.0f64; triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let at = cursor[r];
            cols[at] = c;
            vals[at] = v;
            cursor[r] += 1;
        }
        // Sort within each row and merge duplicates.
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for r in 0..n {
            let lo = counts[r];
            let hi = counts[r + 1];
            let mut row: Vec<(usize, f64)> = cols[lo..hi]
                .iter()
                .copied()
                .zip(vals[lo..hi].iter().copied())
                .collect();
            row.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let (c, mut v) = row[i];
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    v += row[j].1;
                    j += 1;
                }
                col_idx.push(c);
                values.push(v);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            dim: n,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)`, zero if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.dim {
            return 0.0;
        }
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "apply: x dimension mismatch");
        assert_eq!(y.len(), self.dim, "apply: y dimension mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    fn diagonal(&self) -> Option<Vec<f64>> {
        Some((0..self.dim).map(|i| self.get(i, i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sum_duplicates_and_sort() {
        let a = CsrMatrix::from_triplets(3, &[(2, 0, 1.0), (0, 2, 5.0), (2, 0, 2.0), (1, 1, 4.0)])
            .unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(2, 0), 3.0);
        assert_eq!(a.get(0, 2), 5.0);
        assert_eq!(a.get(1, 1), 4.0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(matches!(
            CsrMatrix::from_triplets(2, &[(0, 2, 1.0)]),
            Err(BuildCsrError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn apply_matches_dense() {
        use crate::matrix::Matrix;
        let triplets = [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 4.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 4.0),
        ];
        let a = CsrMatrix::from_triplets(3, &triplets).unwrap();
        let mut dense = Matrix::zeros(3, 3);
        for &(r, c, v) in &triplets {
            dense[(r, c)] += v;
        }
        let x = [1.0, 2.0, -3.0];
        let mut y = vec![0.0; 3];
        a.apply(&x, &mut y);
        assert_eq!(y, dense.mul_vec(&x));
    }

    #[test]
    fn diagonal_extraction() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 7.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(a.diagonal(), Some(vec![7.0, 0.0]));
    }
}
