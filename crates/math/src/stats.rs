//! Error metrics and small descriptive statistics used by the experiment
//! harness to compare model predictions against reference solutions.
//!
//! # Example
//!
//! ```
//! use ptherm_math::stats::{mean, rms_error, std_dev};
//!
//! let model = [1.0, 2.0, 3.0];
//! let reference = [1.0, 2.0, 3.5];
//! assert!(rms_error(&model, &reference).unwrap() < 0.3);
//! assert_eq!(mean(&[1.0, 3.0]), 2.0);
//! assert_eq!(std_dev(&[2.0, 2.0, 2.0]), 0.0);
//! ```

use std::fmt;

/// Error for metric computations on malformed inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// Input slices were empty or of different lengths.
    BadInput {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::BadInput { detail } => write!(f, "bad metric input: {detail}"),
        }
    }
}

impl std::error::Error for MetricError {}

fn check_pair(a: &[f64], b: &[f64]) -> Result<(), MetricError> {
    if a.is_empty() || a.len() != b.len() {
        return Err(MetricError::BadInput {
            detail: format!("lengths {} and {}", a.len(), b.len()),
        });
    }
    Ok(())
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population standard deviation; 0 for inputs shorter than 2.
pub fn std_dev(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Root-mean-square of the elementwise difference.
///
/// # Errors
///
/// [`MetricError::BadInput`] on empty or mismatched slices.
pub fn rms_error(model: &[f64], reference: &[f64]) -> Result<f64, MetricError> {
    check_pair(model, reference)?;
    let ss: f64 = model
        .iter()
        .zip(reference)
        .map(|(m, r)| (m - r) * (m - r))
        .sum();
    Ok((ss / model.len() as f64).sqrt())
}

/// Maximum relative error `max |m - r| / |r|`, skipping reference values
/// whose magnitude is below `floor` (to avoid dividing by ~0).
///
/// # Errors
///
/// [`MetricError::BadInput`] on empty or mismatched slices, or when every
/// reference entry is below the floor.
pub fn max_relative_error(
    model: &[f64],
    reference: &[f64],
    floor: f64,
) -> Result<f64, MetricError> {
    check_pair(model, reference)?;
    let mut max = f64::NEG_INFINITY;
    let mut used = 0usize;
    for (m, r) in model.iter().zip(reference) {
        if r.abs() <= floor {
            continue;
        }
        used += 1;
        max = max.max((m - r).abs() / r.abs());
    }
    if used == 0 {
        return Err(MetricError::BadInput {
            detail: "all reference values below floor".into(),
        });
    }
    Ok(max)
}

/// Mean relative error (same floor semantics as [`max_relative_error`]).
///
/// # Errors
///
/// See [`max_relative_error`].
pub fn mean_relative_error(
    model: &[f64],
    reference: &[f64],
    floor: f64,
) -> Result<f64, MetricError> {
    check_pair(model, reference)?;
    let mut acc = 0.0;
    let mut used = 0usize;
    for (m, r) in model.iter().zip(reference) {
        if r.abs() <= floor {
            continue;
        }
        used += 1;
        acc += (m - r).abs() / r.abs();
    }
    if used == 0 {
        return Err(MetricError::BadInput {
            detail: "all reference values below floor".into(),
        });
    }
    Ok(acc / used as f64)
}

/// True when `series` is non-strictly monotonically increasing.
pub fn is_monotonic_increasing(series: &[f64]) -> bool {
    series.windows(2).all(|w| w[1] >= w[0])
}

/// True when `series` is non-strictly monotonically decreasing.
pub fn is_monotonic_decreasing(series: &[f64]) -> bool {
    series.windows(2).all(|w| w[1] <= w[0])
}

/// Index of the first element where `a` crosses above `b`, i.e. the smallest
/// `i` with `a[i] > b[i]` while `a[i-1] <= b[i-1]` (or `i == 0`). `None` if
/// no crossover occurs.
pub fn crossover_index(a: &[f64], b: &[f64]) -> Option<usize> {
    if a.len() != b.len() {
        return None;
    }
    (0..a.len()).find(|&i| a[i] > b[i] && (i == 0 || a[i - 1] <= b[i - 1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[1.0, 1.0, 1.0])).abs() < 1e-15);
        assert!((std_dev(&[0.0, 2.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rms_and_relative_errors() {
        let model = [1.1, 2.2, 2.7];
        let reference = [1.0, 2.0, 3.0];
        let rms = rms_error(&model, &reference).unwrap();
        assert!((rms - ((0.01 + 0.04 + 0.09f64) / 3.0).sqrt()).abs() < 1e-12);
        let maxrel = max_relative_error(&model, &reference, 0.0).unwrap();
        assert!((maxrel - 0.1).abs() < 1e-12);
        let meanrel = mean_relative_error(&model, &reference, 0.0).unwrap();
        assert!((meanrel - (0.1 + 0.1 + 0.1) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn floor_skips_tiny_references() {
        let rel = max_relative_error(&[1.0, 5.0], &[1e-18, 4.0], 1e-12).unwrap();
        assert!((rel - 0.25).abs() < 1e-12);
        assert!(max_relative_error(&[1.0], &[0.0], 1e-12).is_err());
    }

    #[test]
    fn mismatched_inputs_rejected() {
        assert!(rms_error(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rms_error(&[], &[]).is_err());
    }

    #[test]
    fn monotonicity_checks() {
        assert!(is_monotonic_increasing(&[1.0, 1.0, 2.0]));
        assert!(!is_monotonic_increasing(&[1.0, 0.5]));
        assert!(is_monotonic_decreasing(&[3.0, 2.0, 2.0]));
        assert!(is_monotonic_decreasing(&[]));
    }

    #[test]
    fn crossover_detection() {
        // a crosses above b at index 2.
        let a = [0.0, 1.0, 3.0, 4.0];
        let b = [2.0, 2.0, 2.0, 2.0];
        assert_eq!(crossover_index(&a, &b), Some(2));
        assert_eq!(crossover_index(&b, &a), Some(0));
        assert_eq!(crossover_index(&[0.0], &[1.0]), None);
        assert_eq!(crossover_index(&[0.0, 1.0], &[1.0]), None);
    }
}
