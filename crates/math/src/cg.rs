//! Conjugate-gradient solver with optional Jacobi preconditioning.
//!
//! Used by the 3-D finite-difference thermal reference solver, whose
//! discretized conduction operator is symmetric positive definite.

use crate::sparse::LinearOperator;
use std::fmt;

/// Convergence report of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// Solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual `||b - A x|| / ||b||`.
    pub relative_residual: f64,
}

/// Error returned by [`solve_cg`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveCgError {
    /// Dimensions of operator and right-hand side differ.
    DimensionMismatch {
        /// Operator dimension.
        operator: usize,
        /// Right-hand-side length.
        rhs: usize,
    },
    /// Residual failed to reach the tolerance within the iteration budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Relative residual reached.
        relative_residual: f64,
    },
    /// The operator produced a non-finite value or a non-positive curvature
    /// direction (it is not SPD).
    Breakdown {
        /// Iteration at which breakdown occurred.
        iteration: usize,
    },
}

impl fmt::Display for SolveCgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveCgError::DimensionMismatch { operator, rhs } => {
                write!(f, "cg dimension mismatch: operator {operator}, rhs {rhs}")
            }
            SolveCgError::NotConverged { iterations, relative_residual } => write!(
                f,
                "cg failed to converge in {iterations} iterations (residual {relative_residual:.3e})"
            ),
            SolveCgError::Breakdown { iteration } => {
                write!(f, "cg breakdown at iteration {iteration}: operator not SPD")
            }
        }
    }
}

impl std::error::Error for SolveCgError {}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Solves `A x = b` for a symmetric positive-definite operator.
///
/// Jacobi (diagonal) preconditioning is applied automatically when the
/// operator exposes its diagonal via [`LinearOperator::diagonal`].
///
/// # Errors
///
/// * [`SolveCgError::DimensionMismatch`] if `b.len() != a.dim()`.
/// * [`SolveCgError::NotConverged`] when `max_iter` is exhausted.
/// * [`SolveCgError::Breakdown`] when the operator is detectably not SPD.
///
/// # Example
///
/// ```
/// use ptherm_math::{CsrMatrix, cg::solve_cg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = CsrMatrix::from_triplets(2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)])?;
/// let sol = solve_cg(&a, &[1.0, 2.0], 1e-12, 100)?;
/// assert!(sol.relative_residual < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_cg<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    tolerance: f64,
    max_iter: usize,
) -> Result<CgSolution, SolveCgError> {
    let n = a.dim();
    if b.len() != n {
        return Err(SolveCgError::DimensionMismatch {
            operator: n,
            rhs: b.len(),
        });
    }
    let b_norm = norm(b);
    if b_norm == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
        });
    }

    // Jacobi preconditioner: M^{-1} = 1/diag(A) where available and positive.
    let inv_diag: Option<Vec<f64>> = a.diagonal().map(|d| {
        d.iter()
            .map(|&v| if v > 0.0 { 1.0 / v } else { 1.0 })
            .collect()
    });
    let precond = |r: &[f64], z: &mut [f64]| match &inv_diag {
        Some(m) => {
            for i in 0..r.len() {
                z[i] = m[i] * r[i];
            }
        }
        None => z.copy_from_slice(r),
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    precond(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for k in 0..max_iter {
        let rel = norm(&r) / b_norm;
        if rel <= tolerance {
            return Ok(CgSolution {
                x,
                iterations: k,
                relative_residual: rel,
            });
        }
        a.apply(&p, &mut ap);
        let p_ap = dot(&p, &ap);
        if !p_ap.is_finite() || p_ap <= 0.0 {
            return Err(SolveCgError::Breakdown { iteration: k });
        }
        let alpha = rz / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        precond(&r, &mut z);
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let rel = norm(&r) / b_norm;
    if rel <= tolerance {
        Ok(CgSolution {
            x,
            iterations: max_iter,
            relative_residual: rel,
        })
    } else {
        Err(SolveCgError::NotConverged {
            iterations: max_iter,
            relative_residual: rel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    /// 1-D Poisson matrix: tridiag(-1, 2, -1), classic SPD test case.
    fn poisson(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, &t).unwrap()
    }

    #[test]
    fn poisson_solution_matches_direct() {
        let n = 64;
        let a = poisson(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let sol = solve_cg(&a, &b, 1e-12, 10 * n).unwrap();
        let lower = vec![-1.0; n - 1];
        let diag = vec![2.0; n];
        let upper = vec![-1.0; n - 1];
        let direct = crate::tridiag::solve_tridiagonal(&lower, &diag, &upper, &b).unwrap();
        for (a, b) in sol.x.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = poisson(8);
        let sol = solve_cg(&a, &[0.0; 8], 1e-12, 10).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dimension_mismatch_reported() {
        let a = poisson(4);
        assert!(matches!(
            solve_cg(&a, &[1.0; 3], 1e-10, 10),
            Err(SolveCgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_spd_breaks_down() {
        // Negative-definite operator: p' A p < 0 on the first iteration.
        let a = CsrMatrix::from_triplets(2, &[(0, 0, -1.0), (1, 1, -1.0)]).unwrap();
        assert!(matches!(
            solve_cg(&a, &[1.0, 1.0], 1e-10, 10),
            Err(SolveCgError::Breakdown { .. })
        ));
    }

    #[test]
    fn iteration_budget_enforced() {
        let a = poisson(256);
        let b = vec![1.0; 256];
        assert!(matches!(
            solve_cg(&a, &b, 1e-14, 3),
            Err(SolveCgError::NotConverged { iterations: 3, .. })
        ));
    }

    #[test]
    fn preconditioning_helps_scaled_system() {
        // Badly scaled SPD diagonal + coupling; Jacobi brings it back.
        let mut t = Vec::new();
        let n = 32;
        for i in 0..n {
            let scale = if i % 2 == 0 { 1.0 } else { 1e6 };
            t.push((i, i, 2.0 * scale));
            if i + 1 < n {
                t.push((i, i + 1, -0.5));
                t.push((i + 1, i, -0.5));
            }
        }
        let a = CsrMatrix::from_triplets(n, &t).unwrap();
        let b = vec![1.0; n];
        let sol = solve_cg(&a, &b, 1e-10, 500).unwrap();
        let mut residual = vec![0.0; n];
        a.apply(&sol.x, &mut residual);
        for i in 0..n {
            residual[i] -= b[i];
        }
        let rel = residual.iter().map(|v| v * v).sum::<f64>().sqrt() / (n as f64).sqrt();
        assert!(rel < 1e-8);
    }
}
