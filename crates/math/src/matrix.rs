//! Dense row-major matrices with partial-pivot LU factorization.
//!
//! Sized for the small systems that appear in this workspace: Jacobians of
//! transistor networks (a handful of internal nodes) and least-squares normal
//! equations. Everything is `f64`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Error produced by factorizations and solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveMatrixError {
    /// The matrix is singular (a pivot collapsed below the tolerance).
    Singular {
        /// Column at which factorization broke down.
        column: usize,
    },
    /// Operand dimensions do not line up.
    DimensionMismatch {
        /// What was expected, e.g. "rhs length 4".
        expected: String,
        /// What was found.
        found: String,
    },
}

impl fmt::Display for SolveMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveMatrixError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            SolveMatrixError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for SolveMatrixError {}

/// Dense row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use ptherm_math::Matrix;
///
/// # fn main() -> Result<(), ptherm_math::matrix::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
/// let x = a.solve(&[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// Zero dimensions are allowed: a `0 × 0` influence matrix is what an
    /// empty floorplan's thermal operator factors into, and every
    /// operation on it degenerates gracefully (empty products, an empty
    /// LU with determinant 1).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] if rows have unequal
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, SolveMatrixError> {
        let r = rows.len();
        if r == 0 {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: "at least one row".into(),
                found: "0 rows".into(),
            });
        }
        let c = rows[0].len();
        if c == 0 {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: "at least one column".into(),
                found: "0 columns".into(),
            });
        }
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(SolveMatrixError::DimensionMismatch {
                    expected: format!("row length {c}"),
                    found: format!("row {i} has length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major storage — row `i` occupies
    /// `[i*cols, (i+1)*cols)`. This is what lets the thermal-operator
    /// build fan disjoint row chunks across threads.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix-vector product `A x` written into a caller-owned buffer —
    /// the allocation-free entry point hot loops (the electro-thermal
    /// Picard iteration, repeated sweeps) should use.
    ///
    /// # Example
    ///
    /// ```
    /// use ptherm_math::Matrix;
    ///
    /// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
    /// let mut y = [0.0; 2];
    /// a.mul_vec_into(&[1.0, 1.0], &mut y);
    /// assert_eq!(y, [3.0, 7.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        assert_eq!(y.len(), self.rows, "mul_vec output dimension mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
    }

    /// Matrix-matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != b.rows()`.
    pub fn mul_mat(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "mul_mat dimension mismatch");
        let mut out = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::Singular`] when a pivot vanishes and
    /// [`SolveMatrixError::DimensionMismatch`] for non-square matrices.
    pub fn lu(&self) -> Result<Lu, SolveMatrixError> {
        if self.rows != self.cols {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot search on column k.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < f64::MIN_POSITIVE * 16.0 || !max.is_finite() {
                return Err(SolveMatrixError::Singular { column: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let m = lu[i * n + k] / pivot;
                lu[i * n + k] = m;
                for j in (k + 1)..n {
                    lu[i * n + j] -= m * lu[k * n + j];
                }
            }
        }
        Ok(Lu { n, lu, perm, sign })
    }

    /// Solves `A x = b` through LU factorization.
    ///
    /// # Errors
    ///
    /// See [`Matrix::lu`]; additionally checks that `b.len()` matches.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveMatrixError> {
        if b.len() != self.rows {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: format!("rhs length {}", self.rows),
                found: format!("rhs length {}", b.len()),
            });
        }
        self.lu()?.solve(b)
    }

    /// Matrix inverse through LU factorization.
    ///
    /// # Errors
    ///
    /// See [`Matrix::lu`].
    pub fn inverse(&self) -> Result<Matrix, SolveMatrixError> {
        let lu = self.lu()?;
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let col = lu.solve(&e)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Determinant through LU factorization; zero for singular matrices.
    pub fn determinant(&self) -> f64 {
        match self.lu() {
            Ok(lu) => lu.determinant(),
            Err(_) => 0.0,
        }
    }

    /// Maximum absolute entry (infinity norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Partial-pivot LU factorization of a square matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Solves `A x = b` reusing the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveMatrixError> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-owned buffer, reusing the
    /// factorization and allocating nothing — the entry point for repeated
    /// solves against the same matrix (time stepping, sweeps).
    ///
    /// # Example
    ///
    /// ```
    /// use ptherm_math::Matrix;
    ///
    /// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
    /// let lu = a.lu().unwrap();
    /// let mut x = [0.0; 2];
    /// for rhs in [[2.0, 4.0], [6.0, 8.0]] {
    ///     lu.solve_into(&rhs, &mut x).unwrap();
    /// }
    /// assert_eq!(x, [3.0, 2.0]);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] if `b` or `x` is
    /// not of length `n`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), SolveMatrixError> {
        if b.len() != self.n || x.len() != self.n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: format!("rhs and solution length {}", self.n),
                found: format!("rhs length {}, solution length {}", b.len(), x.len()),
            });
        }
        let n = self.n;
        // Forward substitution on the permuted rhs.
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        for i in 1..n {
            let mut acc = x[i];
            for (l, xj) in self.lu[i * n..i * n + i].iter().zip(&x[..i]) {
                acc -= l * xj;
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (l, xj) in self.lu[i * n + i + 1..i * n + n].iter().zip(&x[i + 1..]) {
                acc -= l * xj;
            }
            x[i] = acc / self.lu[i * n + i];
        }
        Ok(())
    }

    /// Determinant recovered from the factorization.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.n {
            det *= self.lu[i * self.n + i];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn identity_solve_is_rhs() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.25];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn solve_matches_known_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
        assert_close(x[2], -1.0, 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero top-left pivot; fails without partial pivoting.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_close(x[0], 7.0, 1e-15);
        assert_close(x[1], 3.0, 1e-15);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        match a.solve(&[1.0, 2.0]) {
            Err(SolveMatrixError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn determinant_and_inverse_agree() {
        let a = Matrix::from_rows(&[&[3.0, 0.5], &[-1.0, 2.0]]).unwrap();
        let det = a.determinant();
        assert_close(det, 6.5, 1e-12);
        let inv = a.inverse().unwrap();
        let prod = a.mul_mat(&inv);
        for i in 0..2 {
            for j in 0..2 {
                assert_close(prod[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-12);
            }
        }
    }

    #[test]
    fn non_square_lu_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.lu(),
            Err(SolveMatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rhs_length_is_checked() {
        let a = Matrix::identity(3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SolveMatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows: [&[f64]; 2] = [&[1.0, 2.0], &[3.0]];
        assert!(Matrix::from_rows(&rows).is_err());
    }

    #[test]
    fn mul_vec_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let y = a.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![6.0, 15.0]);
        let t = a.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    #[test]
    fn random_solve_roundtrip() {
        // Deterministic pseudo-random matrix: x -> b -> solve -> x.
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonal dominance keeps it comfortably regular
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 3.0).collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert_close(*xi, *ti, 1e-10);
        }
    }
}
