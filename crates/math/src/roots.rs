//! One-dimensional root finding: bisection, Brent's method and damped Newton.
//!
//! The exact stacked-node equation of the leakage model,
//! `e^{alpha x / V_T} (1 - e^{-x / V_T}) = R`, is solved with [`brent`] to
//! produce the "exact" curve the paper's Eq. (10) is benchmarked against
//! (Fig. 3), and the SPICE-substitute falls back to bracketing when Newton
//! stalls.

use std::fmt;

/// Error produced by the 1-D root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// The supplied interval does not bracket a sign change.
    NoBracket {
        /// Function value at the left end.
        f_left: f64,
        /// Function value at the right end.
        f_right: f64,
    },
    /// The iteration budget was exhausted before reaching the tolerance.
    NotConverged {
        /// Best estimate when the budget ran out.
        best: f64,
        /// Residual at the best estimate.
        residual: f64,
    },
    /// The function returned NaN/inf inside the search interval.
    NonFinite {
        /// Evaluation point that produced the non-finite value.
        at: f64,
    },
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootError::NoBracket { f_left, f_right } => write!(
                f,
                "interval does not bracket a root (f(a) = {f_left:.3e}, f(b) = {f_right:.3e})"
            ),
            RootError::NotConverged { best, residual } => write!(
                f,
                "root search did not converge (best x = {best:.6e}, residual {residual:.3e})"
            ),
            RootError::NonFinite { at } => {
                write!(
                    f,
                    "function evaluated to a non-finite value at x = {at:.6e}"
                )
            }
        }
    }
}

impl std::error::Error for RootError {}

/// Plain bisection on `[a, b]`.
///
/// Robust but slow; used as the fallback of last resort.
///
/// # Errors
///
/// [`RootError::NoBracket`] if `f(a)` and `f(b)` have the same sign,
/// [`RootError::NonFinite`] if the function misbehaves.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let fb = f(b);
    if !fa.is_finite() {
        return Err(RootError::NonFinite { at: a });
    }
    if !fb.is_finite() {
        return Err(RootError::NonFinite { at: b });
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket {
            f_left: fa,
            f_right: fb,
        });
    }
    for _ in 0..max_iter {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if !fm.is_finite() {
            return Err(RootError::NonFinite { at: m });
        }
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    let m = 0.5 * (a + b);
    Err(RootError::NotConverged {
        best: m,
        residual: f(m),
    })
}

/// Brent's method on `[a, b]`: bisection safety with superlinear speed.
///
/// # Errors
///
/// Same conditions as [`bisect`].
///
/// # Example
///
/// ```
/// use ptherm_math::roots::brent;
///
/// # fn main() -> Result<(), ptherm_math::roots::RootError> {
/// let r = brent(|x| x.exp() - 2.0, 0.0, 1.0, 1e-14, 100)?;
/// assert!((r - 2f64.ln()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a0: f64,
    b0: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    let mut a = a0;
    let mut b = b0;
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() {
        return Err(RootError::NonFinite { at: a });
    }
    if !fb.is_finite() {
        return Err(RootError::NonFinite { at: b });
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket {
            f_left: fa,
            f_right: fb,
        });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let cond1 = !((s > lo.min(b) && s < lo.max(b)) || (s > b.min(lo) && s < b.max(lo)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && (c - d).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        if !fs.is_finite() {
            return Err(RootError::NonFinite { at: s });
        }
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::NotConverged {
        best: b,
        residual: fb,
    })
}

/// Damped Newton iteration with bracketing safeguards.
///
/// `f_df` must return `(f(x), f'(x))`. The iterate is clamped to `[lo, hi]`
/// and halves its step until the residual decreases (up to 30 halvings),
/// which tames the exponential device equations.
///
/// # Errors
///
/// [`RootError::NotConverged`] if the budget runs out,
/// [`RootError::NonFinite`] if the function misbehaves.
pub fn newton_damped<F: FnMut(f64) -> (f64, f64)>(
    mut f_df: F,
    x0: f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    let mut x = x0.clamp(lo, hi);
    let (mut fx, mut dfx) = f_df(x);
    if !fx.is_finite() {
        return Err(RootError::NonFinite { at: x });
    }
    for _ in 0..max_iter {
        if fx.abs() <= tol {
            return Ok(x);
        }
        let mut step = if dfx.abs() > f64::MIN_POSITIVE {
            -fx / dfx
        } else {
            // Flat derivative: nudge toward the middle of the interval.
            0.5 * ((lo + hi) * 0.5 - x)
        };
        if !step.is_finite() {
            return Err(RootError::NonFinite { at: x });
        }
        // Damped update: halve until the residual actually decreases.
        let mut accepted = false;
        for _ in 0..30 {
            let x_new = (x + step).clamp(lo, hi);
            let (f_new, df_new) = f_df(x_new);
            if f_new.is_finite() && f_new.abs() < fx.abs() {
                x = x_new;
                fx = f_new;
                dfx = df_new;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            // Stalled; report where we are.
            return Err(RootError::NotConverged {
                best: x,
                residual: fx,
            });
        }
    }
    if fx.abs() <= tol {
        Ok(x)
    } else {
        Err(RootError::NotConverged {
            best: x,
            residual: fx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_cubic_root() {
        let r = bisect(|x| x * x * x - 8.0, 0.0, 4.0, 1e-12, 200).unwrap();
        assert!((r - 2.0).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 50),
            Err(RootError::NoBracket { .. })
        ));
    }

    #[test]
    fn brent_matches_bisect_but_faster() {
        let mut n_brent = 0usize;
        let mut n_bisect = 0usize;
        let f = |x: f64| (x - 0.337).tanh() + 0.1 * x;
        let rb = brent(
            |x| {
                n_brent += 1;
                f(x)
            },
            -4.0,
            4.0,
            1e-13,
            200,
        )
        .unwrap();
        let ri = bisect(
            |x| {
                n_bisect += 1;
                f(x)
            },
            -4.0,
            4.0,
            1e-13,
            200,
        )
        .unwrap();
        assert!((rb - ri).abs() < 1e-9);
        assert!(n_brent < n_bisect, "brent {n_brent} vs bisect {n_bisect}");
    }

    #[test]
    fn brent_endpoint_root() {
        let r = brent(|x| x, 0.0, 1.0, 1e-14, 50).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn brent_nonfinite_reported() {
        assert!(matches!(
            brent(
                |x| if x > 0.5 { f64::NAN } else { -1.0 },
                0.0,
                1.0,
                1e-12,
                50
            ),
            Err(RootError::NonFinite { .. })
        ));
    }

    #[test]
    fn newton_converges_on_exponential() {
        // Same structure as the stack equation: e^{2x}(1 - e^{-x}) = 1.
        let g = |x: f64| {
            let e2 = (2.0 * x).exp();
            let em = (-x).exp();
            (e2 * (1.0 - em) - 1.0, 2.0 * e2 * (1.0 - em) + e2 * em)
        };
        let x = newton_damped(g, 0.1, 0.0, 5.0, 1e-13, 100).unwrap();
        let check = (2.0 * x).exp() * (1.0 - (-x).exp());
        assert!((check - 1.0).abs() < 1e-10);
        // Cross-check against Brent.
        let xb = brent(
            |x| (2.0 * x).exp() * (1.0 - (-x).exp()) - 1.0,
            1e-9,
            5.0,
            1e-13,
            200,
        )
        .unwrap();
        assert!((x - xb).abs() < 1e-9);
    }

    #[test]
    fn newton_respects_bounds() {
        // Root at x = -3 lies outside [0, 10]; must not converge but also
        // must not escape the interval.
        let res = newton_damped(|x| (x + 3.0, 1.0), 5.0, 0.0, 10.0, 1e-12, 25);
        match res {
            Err(RootError::NotConverged { best, .. }) => {
                assert!((0.0..=10.0).contains(&best));
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }
}
