//! ODE integrators: classic RK4, adaptive RKF45 and the linearly-implicit
//! θ-method for stiff linear-dominant systems.
//!
//! The self-heating transient of Figs. 9–10 is a (possibly multi-node)
//! thermal RC network `C dT/dt = P(t) - G (T - T_amb)`. The explicit
//! integrators produce the synthetic oscilloscope traces the measurement
//! rig digitizes; [`theta_method`] is the implicit workhorse for stiff
//! networks, where an explicit step would be capped by the fastest time
//! constant rather than by accuracy.

use crate::matrix::{Lu, Matrix, SolveMatrixError};
use std::fmt;

/// Implicit time-stepping scheme for the θ-method family.
///
/// Both schemes are unconditionally stable on the decaying linear systems
/// of thermal networks, so the step size is an *accuracy* knob, never a
/// stability one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplicitScheme {
    /// Backward Euler (θ = 1): first-order, L-stable — stiff modes are
    /// damped in one step, so it is the robust default for discontinuous
    /// drives (square waves) and very coarse steps.
    BackwardEuler,
    /// Trapezoidal rule / Crank–Nicolson (θ = ½): second-order, A-stable
    /// — the accuracy pick for smooth transients.
    Trapezoidal,
}

impl ImplicitScheme {
    /// The implicitness weight θ of the scheme.
    pub fn theta(self) -> f64 {
        match self {
            ImplicitScheme::BackwardEuler => 1.0,
            ImplicitScheme::Trapezoidal => 0.5,
        }
    }

    /// Time offset into a step of size `h` at which the θ-method samples
    /// its explicit (lagged) forcing: the step end for backward Euler,
    /// the midpoint for the trapezoidal rule. Shared by [`theta_method`]
    /// and the chip-scale transient engine so the sampling convention
    /// cannot drift between them.
    pub fn forcing_offset(self, h: f64) -> f64 {
        match self {
            ImplicitScheme::BackwardEuler => h,
            ImplicitScheme::Trapezoidal => 0.5 * h,
        }
    }
}

/// Error returned by the adaptive integrator.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrateOdeError {
    /// Step size collapsed below `min_step` without meeting the tolerance.
    StepUnderflow {
        /// Time at which the step collapsed.
        t: f64,
    },
    /// The derivative returned NaN or infinity.
    NonFinite {
        /// Time of the offending evaluation.
        t: f64,
    },
    /// Invalid time span or tolerances.
    BadInput {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for IntegrateOdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateOdeError::StepUnderflow { t } => {
                write!(f, "ode step size underflow at t = {t:.6e}")
            }
            IntegrateOdeError::NonFinite { t } => {
                write!(f, "ode derivative non-finite at t = {t:.6e}")
            }
            IntegrateOdeError::BadInput { detail } => write!(f, "ode bad input: {detail}"),
        }
    }
}

impl std::error::Error for IntegrateOdeError {}

/// Dense output of an ODE integration: sample times and states.
#[derive(Debug, Clone, PartialEq)]
pub struct OdeTrajectory {
    /// Sample times, strictly increasing, first = t0, last = t1.
    pub t: Vec<f64>,
    /// State at each sample time (`y[i].len() == dim`).
    pub y: Vec<Vec<f64>>,
}

impl OdeTrajectory {
    /// Linear interpolation of the state at time `t` (clamped to the span).
    pub fn sample(&self, t: f64) -> Vec<f64> {
        if self.t.is_empty() {
            return Vec::new();
        }
        if t <= self.t[0] {
            return self.y[0].clone();
        }
        if t >= *self.t.last().expect("nonempty") {
            return self.y.last().expect("nonempty").clone();
        }
        let idx = match self
            .t
            .binary_search_by(|v| v.partial_cmp(&t).expect("finite times"))
        {
            Ok(i) => return self.y[i].clone(),
            Err(i) => i,
        };
        let (t0, t1) = (self.t[idx - 1], self.t[idx]);
        let w = (t - t0) / (t1 - t0);
        self.y[idx - 1]
            .iter()
            .zip(&self.y[idx])
            .map(|(a, b)| a + w * (b - a))
            .collect()
    }
}

/// Fixed-step classic Runge–Kutta 4 integration from `t0` to `t1`.
///
/// Records every step in the returned trajectory.
///
/// # Example
///
/// ```
/// use ptherm_math::ode::rk4;
///
/// // y' = -y from y(0) = 1: y(1) = 1/e.
/// let trajectory = rk4(|_, y| vec![-y[0]], 0.0, 1.0, &[1.0], 100);
/// let end = trajectory.y.last().unwrap()[0];
/// assert!((end - (-1.0f64).exp()).abs() < 1e-8);
/// ```
///
/// # Panics
///
/// Panics if `steps == 0` or `t1 <= t0`.
pub fn rk4<F>(mut f: F, t0: f64, t1: f64, y0: &[f64], steps: usize) -> OdeTrajectory
where
    F: FnMut(f64, &[f64]) -> Vec<f64>,
{
    assert!(steps > 0, "rk4 needs at least one step");
    assert!(t1 > t0, "rk4 needs a forward time span");
    let h = (t1 - t0) / steps as f64;
    let n = y0.len();
    let mut t = t0;
    let mut y = y0.to_vec();
    let mut out_t = Vec::with_capacity(steps + 1);
    let mut out_y = Vec::with_capacity(steps + 1);
    out_t.push(t);
    out_y.push(y.clone());
    for _ in 0..steps {
        let k1 = f(t, &y);
        let y2: Vec<f64> = (0..n).map(|i| y[i] + 0.5 * h * k1[i]).collect();
        let k2 = f(t + 0.5 * h, &y2);
        let y3: Vec<f64> = (0..n).map(|i| y[i] + 0.5 * h * k2[i]).collect();
        let k3 = f(t + 0.5 * h, &y3);
        let y4: Vec<f64> = (0..n).map(|i| y[i] + h * k3[i]).collect();
        let k4 = f(t + h, &y4);
        for i in 0..n {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
        out_t.push(t);
        out_y.push(y.clone());
    }
    OdeTrajectory { t: out_t, y: out_y }
}

// Runge–Kutta–Fehlberg 4(5) Butcher tableau.
const A21: f64 = 1.0 / 4.0;
const A31: f64 = 3.0 / 32.0;
const A32: f64 = 9.0 / 32.0;
const A41: f64 = 1932.0 / 2197.0;
const A42: f64 = -7200.0 / 2197.0;
const A43: f64 = 7296.0 / 2197.0;
const A51: f64 = 439.0 / 216.0;
const A52: f64 = -8.0;
const A53: f64 = 3680.0 / 513.0;
const A54: f64 = -845.0 / 4104.0;
const A61: f64 = -8.0 / 27.0;
const A62: f64 = 2.0;
const A63: f64 = -3544.0 / 2565.0;
const A64: f64 = 1859.0 / 4104.0;
const A65: f64 = -11.0 / 40.0;
// 5th-order weights.
const B1: f64 = 16.0 / 135.0;
const B3: f64 = 6656.0 / 12825.0;
const B4: f64 = 28561.0 / 56430.0;
const B5: f64 = -9.0 / 50.0;
const B6: f64 = 2.0 / 55.0;
// 4th-order weights (for the error estimate).
const E1: f64 = 25.0 / 216.0;
const E3: f64 = 1408.0 / 2565.0;
const E4: f64 = 2197.0 / 4104.0;
const E5: f64 = -1.0 / 5.0;

/// Adaptive RKF45 integration from `t0` to `t1` with per-component absolute
/// tolerance `tol`.
///
/// # Errors
///
/// See [`IntegrateOdeError`].
pub fn rkf45<F>(
    mut f: F,
    t0: f64,
    t1: f64,
    y0: &[f64],
    tol: f64,
    min_step: f64,
) -> Result<OdeTrajectory, IntegrateOdeError>
where
    F: FnMut(f64, &[f64]) -> Vec<f64>,
{
    if t1 <= t0 || t0.is_nan() || t1.is_nan() || !tol.is_finite() || tol <= 0.0 {
        return Err(IntegrateOdeError::BadInput {
            detail: format!("span [{t0}, {t1}], tol {tol}"),
        });
    }
    let n = y0.len();
    let mut t = t0;
    let mut y = y0.to_vec();
    let mut h = (t1 - t0) / 100.0;
    let mut out_t = vec![t];
    let mut out_y = vec![y.clone()];

    let check = |v: &[f64], t: f64| -> Result<(), IntegrateOdeError> {
        if v.iter().any(|x| !x.is_finite()) {
            Err(IntegrateOdeError::NonFinite { t })
        } else {
            Ok(())
        }
    };

    while t < t1 {
        if h < min_step {
            return Err(IntegrateOdeError::StepUnderflow { t });
        }
        if t + h > t1 {
            h = t1 - t;
        }
        let k1 = f(t, &y);
        check(&k1, t)?;
        let y2: Vec<f64> = (0..n).map(|i| y[i] + h * A21 * k1[i]).collect();
        let k2 = f(t + h / 4.0, &y2);
        check(&k2, t)?;
        let y3: Vec<f64> = (0..n)
            .map(|i| y[i] + h * (A31 * k1[i] + A32 * k2[i]))
            .collect();
        let k3 = f(t + 3.0 * h / 8.0, &y3);
        check(&k3, t)?;
        let y4: Vec<f64> = (0..n)
            .map(|i| y[i] + h * (A41 * k1[i] + A42 * k2[i] + A43 * k3[i]))
            .collect();
        let k4 = f(t + 12.0 * h / 13.0, &y4);
        check(&k4, t)?;
        let y5: Vec<f64> = (0..n)
            .map(|i| y[i] + h * (A51 * k1[i] + A52 * k2[i] + A53 * k3[i] + A54 * k4[i]))
            .collect();
        let k5 = f(t + h, &y5);
        check(&k5, t)?;
        let y6: Vec<f64> = (0..n)
            .map(|i| {
                y[i] + h * (A61 * k1[i] + A62 * k2[i] + A63 * k3[i] + A64 * k4[i] + A65 * k5[i])
            })
            .collect();
        let k6 = f(t + h / 2.0, &y6);
        check(&k6, t)?;

        let mut err: f64 = 0.0;
        let mut y_next = vec![0.0; n];
        for i in 0..n {
            let hi = B1 * k1[i] + B3 * k3[i] + B4 * k4[i] + B5 * k5[i] + B6 * k6[i];
            let lo = E1 * k1[i] + E3 * k3[i] + E4 * k4[i] + E5 * k5[i];
            y_next[i] = y[i] + h * hi;
            err = err.max((h * (hi - lo)).abs());
        }

        if err <= tol || h <= min_step * 2.0 {
            t += h;
            y = y_next;
            out_t.push(t);
            out_y.push(y.clone());
        }
        // Step-size controller (clamped growth).
        let scale = if err > 0.0 {
            0.9 * (tol / err).powf(0.2)
        } else {
            4.0
        };
        h *= scale.clamp(0.2, 4.0);
    }
    Ok(OdeTrajectory { t: out_t, y: out_y })
}

/// Linearly-implicit fixed-step θ-method for `y' = A·y + g(t, y)`.
///
/// The linear part `A·y` (the stiff thermal-network coupling) is treated
/// implicitly — `(I − hθA)` is LU-factored **once** and reused across all
/// `steps` — while the forcing `g` (drive waveforms, electro-thermal
/// feedback) is evaluated explicitly from the step-start state:
///
/// ```text
/// (I − hθA) y_{k+1} = (I + h(1−θ)A) y_k + h·g(t_eval, y_k)
/// ```
///
/// with `t_eval = t_k + h` for backward Euler and `t_k + h/2` for the
/// trapezoidal rule. Stability is governed by the implicit linear part, so
/// stiff `A` does not constrain `h`; accuracy in the lagged forcing is
/// first order, which is the usual semi-implicit trade for thermal
/// networks whose feedback varies on the *slow* time scale.
///
/// # Example
///
/// ```
/// use ptherm_math::ode::{theta_method, ImplicitScheme};
/// use ptherm_math::Matrix;
///
/// // y' = -y + 1 from y(0) = 0: y(t) = 1 - e^{-t}.
/// let a = Matrix::from_rows(&[&[-1.0]]).unwrap();
/// let traj = theta_method(
///     &a,
///     |_, _| vec![1.0],
///     0.0,
///     5.0,
///     &[0.0],
///     2000,
///     ImplicitScheme::Trapezoidal,
/// )
/// .unwrap();
/// let end = traj.y.last().unwrap()[0];
/// assert!((end - (1.0 - (-5.0f64).exp())).abs() < 1e-6);
/// ```
///
/// # Errors
///
/// [`IntegrateOdeError::BadInput`] for invalid spans, step counts, a
/// non-square `A` or a dimension mismatch with `y0`, or when `(I − hθA)`
/// is singular (an anti-dissipative `A` at a pathological step size);
/// [`IntegrateOdeError::NonFinite`] when the forcing returns NaN or
/// infinity.
pub fn theta_method<G>(
    a: &Matrix,
    mut g: G,
    t0: f64,
    t1: f64,
    y0: &[f64],
    steps: usize,
    scheme: ImplicitScheme,
) -> Result<OdeTrajectory, IntegrateOdeError>
where
    G: FnMut(f64, &[f64]) -> Vec<f64>,
{
    let n = y0.len();
    if t1 <= t0 || !t0.is_finite() || !t1.is_finite() || steps == 0 {
        return Err(IntegrateOdeError::BadInput {
            detail: format!("span [{t0}, {t1}], {steps} steps"),
        });
    }
    if a.rows() != n || a.cols() != n {
        return Err(IntegrateOdeError::BadInput {
            detail: format!("A is {}x{}, state dimension {n}", a.rows(), a.cols()),
        });
    }
    let h = (t1 - t0) / steps as f64;
    let theta = scheme.theta();

    // M = I − hθA, factored once; E = I + h(1−θ)A applied per step.
    let mut m = Matrix::zeros(n, n);
    let mut e = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let aij = a[(i, j)];
            let delta = if i == j { 1.0 } else { 0.0 };
            m[(i, j)] = delta - h * theta * aij;
            e[(i, j)] = delta + h * (1.0 - theta) * aij;
        }
    }
    let lu: Lu = m
        .lu()
        .map_err(|err: SolveMatrixError| IntegrateOdeError::BadInput {
            detail: format!("I - h*theta*A not factorable: {err}"),
        })?;

    let t_forcing_offset = scheme.forcing_offset(h);

    let mut t = t0;
    let mut y = y0.to_vec();
    let mut rhs = vec![0.0; n];
    let mut out_t = Vec::with_capacity(steps + 1);
    let mut out_y = Vec::with_capacity(steps + 1);
    out_t.push(t);
    out_y.push(y.clone());
    for _ in 0..steps {
        let force = g(t + t_forcing_offset, &y);
        if force.iter().any(|v| !v.is_finite()) {
            return Err(IntegrateOdeError::NonFinite { t });
        }
        e.mul_vec_into(&y, &mut rhs);
        for (r, f) in rhs.iter_mut().zip(&force) {
            *r += h * f;
        }
        lu.solve_into(&rhs, &mut y)
            .expect("factorization already validated");
        t += h;
        out_t.push(t);
        out_y.push(y.clone());
    }
    Ok(OdeTrajectory { t: out_t, y: out_y })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_exponential_decay() {
        // dy/dt = -y, y(0) = 1  =>  y(t) = e^{-t}.
        let traj = rk4(|_, y| vec![-y[0]], 0.0, 5.0, &[1.0], 500);
        let last = traj.y.last().unwrap()[0];
        assert!((last - (-5.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn rkf45_matches_rk4_on_rc_charging() {
        // Thermal RC: C dT/dt = P - G T with P/G = 10, tau = C/G = 2.
        let g = 0.5;
        let c = 1.0;
        let p = 5.0;
        let rhs = move |_t: f64, y: &[f64]| vec![(p - g * y[0]) / c];
        let fine = rk4(rhs, 0.0, 8.0, &[0.0], 4000);
        let adaptive = rkf45(rhs, 0.0, 8.0, &[0.0], 1e-10, 1e-12).unwrap();
        let exact = |t: f64| (p / g) * (1.0 - (-g * t / c).exp());
        assert!((fine.y.last().unwrap()[0] - exact(8.0)).abs() < 1e-8);
        assert!((adaptive.y.last().unwrap()[0] - exact(8.0)).abs() < 1e-7);
        // Interpolated sample agrees mid-span; the sampler is linear between
        // (possibly large) adaptive steps, so the tolerance is loose here.
        let mid = adaptive.sample(3.3)[0];
        assert!((mid - exact(3.3)).abs() < 0.05);
    }

    #[test]
    fn rkf45_rejects_bad_input() {
        assert!(matches!(
            rkf45(|_, y| vec![-y[0]], 1.0, 0.0, &[1.0], 1e-8, 1e-12),
            Err(IntegrateOdeError::BadInput { .. })
        ));
        assert!(matches!(
            rkf45(|_, y| vec![-y[0]], 0.0, 1.0, &[1.0], -1.0, 1e-12),
            Err(IntegrateOdeError::BadInput { .. })
        ));
    }

    #[test]
    fn rkf45_flags_nonfinite_derivative() {
        let res = rkf45(
            |t, _| vec![if t > 0.5 { f64::NAN } else { 1.0 }],
            0.0,
            1.0,
            &[0.0],
            1e-8,
            1e-12,
        );
        assert!(matches!(res, Err(IntegrateOdeError::NonFinite { .. })));
    }

    #[test]
    fn trajectory_sampling_clamps_to_span() {
        let traj = rk4(|_, y| vec![-y[0]], 0.0, 1.0, &[2.0], 10);
        assert_eq!(traj.sample(-1.0)[0], 2.0);
        let end = traj.y.last().unwrap()[0];
        assert_eq!(traj.sample(99.0)[0], end);
    }

    #[test]
    fn theta_method_matches_rc_charging_analytically() {
        // C dT/dt = P - G T: A = -G/C, forcing P/C; exact (P/G)(1-e^{-Gt/C}).
        let g = 0.5;
        let c = 1.0;
        let p = 5.0;
        let a = Matrix::from_rows(&[&[-g / c]]).unwrap();
        let exact = |t: f64| (p / g) * (1.0 - (-g * t / c).exp());
        for scheme in [ImplicitScheme::BackwardEuler, ImplicitScheme::Trapezoidal] {
            let traj = theta_method(&a, |_, _| vec![p / c], 0.0, 8.0, &[0.0], 4000, scheme)
                .expect("valid input");
            let end = traj.y.last().unwrap()[0];
            let tol = match scheme {
                ImplicitScheme::BackwardEuler => 1e-3, // first order
                ImplicitScheme::Trapezoidal => 1e-7,   // second order
            };
            assert!((end - exact(8.0)).abs() < tol, "{scheme:?}: {end}");
        }
    }

    #[test]
    fn theta_method_is_stable_where_rk4_diverges() {
        // Stiff decay: tau = 1e-6 s stepped at h = 1e-2 s (10000x the
        // stability limit of any explicit scheme). Both schemes stay
        // bounded; L-stable backward Euler also kills the stiff mode and
        // lands on the fixed point, while trapezoidal (A-stable only)
        // oscillates the under-resolved mode at amplitude <= 1.
        let a = Matrix::from_rows(&[&[-1e6]]).unwrap();
        for scheme in [ImplicitScheme::BackwardEuler, ImplicitScheme::Trapezoidal] {
            let traj = theta_method(&a, |_, _| vec![1e6], 0.0, 1.0, &[0.0], 100, scheme)
                .expect("valid input");
            assert!(
                traj.y.iter().all(|y| y[0].is_finite() && y[0].abs() <= 2.0),
                "{scheme:?} bounded"
            );
        }
        let be = theta_method(
            &a,
            |_, _| vec![1e6],
            0.0,
            1.0,
            &[0.0],
            100,
            ImplicitScheme::BackwardEuler,
        )
        .expect("valid input");
        assert!((be.y.last().unwrap()[0] - 1.0).abs() < 1e-9);
        // On the fixed point, trapezoidal stays put exactly.
        let cn = theta_method(
            &a,
            |_, _| vec![1e6],
            0.0,
            1.0,
            &[1.0],
            100,
            ImplicitScheme::Trapezoidal,
        )
        .expect("valid input");
        assert!((cn.y.last().unwrap()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theta_method_couples_states_like_rkf45() {
        // Two-node ladder with mild stiffness: implicit and adaptive
        // explicit integrations agree.
        let a = Matrix::from_rows(&[&[-3.0, 1.0], &[2.0, -4.0]]).unwrap();
        let forcing = |t: f64| vec![1.0 + 0.2 * t, 0.5];
        let implicit = theta_method(
            &a,
            |t, _| forcing(t),
            0.0,
            2.0,
            &[0.0, 0.0],
            20_000,
            ImplicitScheme::Trapezoidal,
        )
        .expect("valid input");
        let reference = rkf45(
            |t, y| {
                let f = forcing(t);
                vec![
                    -3.0 * y[0] + 1.0 * y[1] + f[0],
                    2.0 * y[0] - 4.0 * y[1] + f[1],
                ]
            },
            0.0,
            2.0,
            &[0.0, 0.0],
            1e-10,
            1e-13,
        )
        .expect("smooth system");
        let end_i = implicit.y.last().unwrap();
        let end_r = reference.y.last().unwrap();
        for (a, b) in end_i.iter().zip(end_r) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn theta_method_rejects_bad_input() {
        let a = Matrix::from_rows(&[&[-1.0]]).unwrap();
        assert!(matches!(
            theta_method(
                &a,
                |_, _| vec![0.0],
                1.0,
                0.0,
                &[0.0],
                10,
                ImplicitScheme::BackwardEuler
            ),
            Err(IntegrateOdeError::BadInput { .. })
        ));
        assert!(matches!(
            theta_method(
                &a,
                |_, _| vec![0.0],
                0.0,
                1.0,
                &[0.0],
                0,
                ImplicitScheme::BackwardEuler
            ),
            Err(IntegrateOdeError::BadInput { .. })
        ));
        assert!(matches!(
            theta_method(
                &a,
                |_, _| vec![0.0, 0.0],
                0.0,
                1.0,
                &[0.0, 0.0],
                10,
                ImplicitScheme::BackwardEuler
            ),
            Err(IntegrateOdeError::BadInput { .. })
        ));
    }

    #[test]
    fn theta_method_flags_nonfinite_forcing() {
        let a = Matrix::from_rows(&[&[-1.0]]).unwrap();
        let res = theta_method(
            &a,
            |t, _| vec![if t > 0.5 { f64::NAN } else { 1.0 }],
            0.0,
            1.0,
            &[0.0],
            100,
            ImplicitScheme::Trapezoidal,
        );
        assert!(matches!(res, Err(IntegrateOdeError::NonFinite { .. })));
    }

    #[test]
    fn rkf45_two_dimensional_oscillator() {
        // y'' = -y as a system; energy must be conserved to tolerance.
        let traj = rkf45(
            |_, y| vec![y[1], -y[0]],
            0.0,
            std::f64::consts::TAU,
            &[1.0, 0.0],
            1e-10,
            1e-13,
        )
        .unwrap();
        let last = traj.y.last().unwrap();
        assert!((last[0] - 1.0).abs() < 1e-6);
        assert!(last[1].abs() < 1e-6);
    }
}
