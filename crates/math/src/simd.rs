//! Runtime ISA dispatch for the batched kernels ([`crate::multivec`],
//! [`crate::expv`]).
//!
//! The workspace builds for the baseline `x86-64` target so one binary
//! runs anywhere; the batched hot loops still want FMA and wide vectors.
//! The standard trick — the same one BLAS implementations use — is to
//! compile each kernel several times under `#[target_feature]` and pick
//! the best variant once at runtime with `is_x86_feature_detected!`.
//!
//! Numerical contract: the portable tier evaluates `a*b + c` as a
//! multiply followed by an add (two roundings, exactly like the scalar
//! reference loops); the FMA tiers contract it into `f64::mul_add` (one
//! rounding). Results across tiers therefore agree to ~1 ULP per
//! operation, not bit-for-bit — callers that need bit-stable output
//! across machines must call the `*_portable` kernel variants directly.

use std::sync::OnceLock;

/// Instruction-set tier selected for the batched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Baseline target features only; no FMA contraction.
    Portable,
    /// 256-bit vectors with fused multiply-add.
    Avx2Fma,
    /// 512-bit vectors with fused multiply-add.
    Avx512,
}

impl Isa {
    /// True when this tier contracts `a*b + c` into a single rounding.
    pub fn fuses_multiply_add(self) -> bool {
        self != Isa::Portable
    }
}

fn detect() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2Fma;
        }
        Isa::Portable
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Isa::Portable
    }
}

/// The tier the batched kernels run at on this machine (detected once).
pub fn isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(detect)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable() {
        assert_eq!(isa(), isa());
    }

    #[test]
    fn portable_never_fuses() {
        assert!(!Isa::Portable.fuses_multiply_add());
        assert!(Isa::Avx2Fma.fuses_multiply_add());
        assert!(Isa::Avx512.fuses_multiply_add());
    }
}
