//! Damped multi-dimensional Newton iteration with a backtracking line search.
//!
//! This drives the general series-parallel network solver in `ptherm-spice`:
//! unknowns are internal node voltages, residuals are KCL currents, and the
//! Jacobian is assembled dense (networks have only a handful of nodes).

use crate::matrix::{Matrix, SolveMatrixError};
use std::fmt;

/// Problem definition for [`solve_newton`].
pub trait NewtonSystem {
    /// Number of unknowns.
    fn dim(&self) -> usize;

    /// Residual vector `F(x)` written into `out`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if slice lengths differ from [`Self::dim`].
    fn residual(&self, x: &[f64], out: &mut [f64]);

    /// Jacobian `J(x)`; the default implementation uses forward differences
    /// on [`Self::residual`].
    fn jacobian(&self, x: &[f64]) -> Matrix {
        let n = self.dim();
        let mut j = Matrix::zeros(n, n);
        let mut f0 = vec![0.0; n];
        let mut f1 = vec![0.0; n];
        self.residual(x, &mut f0);
        let mut xp = x.to_vec();
        for col in 0..n {
            let h = 1e-7 * (1.0 + x[col].abs());
            xp[col] = x[col] + h;
            self.residual(&xp, &mut f1);
            xp[col] = x[col];
            for row in 0..n {
                j[(row, col)] = (f1[row] - f0[row]) / h;
            }
        }
        j
    }

    /// Clamp an iterate into the admissible region (e.g. node voltages into
    /// `[0, V_DD]`). The default is a no-op.
    fn project(&self, _x: &mut [f64]) {}
}

/// Outcome of a successful Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonSolution {
    /// Converged unknowns.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual infinity norm.
    pub residual_norm: f64,
}

/// Error returned by [`solve_newton`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveNewtonError {
    /// The Jacobian became singular.
    SingularJacobian {
        /// Iteration at which it happened.
        iteration: usize,
        /// Underlying factorization error.
        source: SolveMatrixError,
    },
    /// Residual reduction stalled (line search exhausted).
    Stalled {
        /// Iteration at which progress stopped.
        iteration: usize,
        /// Residual norm at the stall point.
        residual_norm: f64,
        /// Iterate at the stall point.
        x: Vec<f64>,
    },
    /// Iteration budget exhausted.
    NotConverged {
        /// Residual norm after the final iteration.
        residual_norm: f64,
        /// Final iterate.
        x: Vec<f64>,
    },
    /// Residual produced NaN or infinity.
    NonFinite,
}

impl fmt::Display for SolveNewtonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveNewtonError::SingularJacobian { iteration, source } => {
                write!(
                    f,
                    "singular jacobian at newton iteration {iteration}: {source}"
                )
            }
            SolveNewtonError::Stalled {
                iteration,
                residual_norm,
                ..
            } => write!(
                f,
                "newton stalled at iteration {iteration} with residual {residual_norm:.3e}"
            ),
            SolveNewtonError::NotConverged { residual_norm, .. } => {
                write!(f, "newton did not converge (residual {residual_norm:.3e})")
            }
            SolveNewtonError::NonFinite => write!(f, "newton residual became non-finite"),
        }
    }
}

impl std::error::Error for SolveNewtonError {}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// Solves `F(x) = 0` by damped Newton with backtracking.
///
/// Each step solves `J dx = -F`, then backtracks `dx <- dx/2` until the
/// residual norm decreases (Armijo-like acceptance with zero slope demand,
/// which is adequate for the well-behaved exponential systems here).
///
/// # Example
///
/// ```
/// use ptherm_math::newton::{solve_newton, NewtonSystem};
///
/// // x² + y² = 2 intersected with x = y: root at (1, 1).
/// struct Circle;
/// impl NewtonSystem for Circle {
///     fn dim(&self) -> usize {
///         2
///     }
///     fn residual(&self, x: &[f64], out: &mut [f64]) {
///         out[0] = x[0] * x[0] + x[1] * x[1] - 2.0;
///         out[1] = x[0] - x[1];
///     }
/// }
/// let sol = solve_newton(&Circle, &[2.0, 0.5], 1e-12, 50).unwrap();
/// assert!((sol.x[0] - 1.0).abs() < 1e-10);
/// assert!((sol.x[1] - 1.0).abs() < 1e-10);
/// ```
///
/// # Errors
///
/// See [`SolveNewtonError`]. On [`SolveNewtonError::Stalled`] and
/// [`SolveNewtonError::NotConverged`] the best iterate is included so callers
/// can fall back to bracketing methods.
pub fn solve_newton<S: NewtonSystem + ?Sized>(
    system: &S,
    x0: &[f64],
    tolerance: f64,
    max_iter: usize,
) -> Result<NewtonSolution, SolveNewtonError> {
    let n = system.dim();
    assert_eq!(x0.len(), n, "initial guess has wrong dimension");

    let mut x = x0.to_vec();
    system.project(&mut x);
    let mut f = vec![0.0; n];
    system.residual(&x, &mut f);
    if f.iter().any(|v| !v.is_finite()) {
        return Err(SolveNewtonError::NonFinite);
    }
    let mut fnorm = inf_norm(&f);

    for iter in 0..max_iter {
        if fnorm <= tolerance {
            return Ok(NewtonSolution {
                x,
                iterations: iter,
                residual_norm: fnorm,
            });
        }
        let jac = system.jacobian(&x);
        let neg_f: Vec<f64> = f.iter().map(|v| -v).collect();
        let dx = match jac.solve(&neg_f) {
            Ok(dx) => dx,
            Err(source) => {
                return Err(SolveNewtonError::SingularJacobian {
                    iteration: iter,
                    source,
                })
            }
        };

        let mut lambda = 1.0;
        let mut accepted = false;
        let mut x_new = vec![0.0; n];
        let mut f_new = vec![0.0; n];
        for _ in 0..40 {
            for i in 0..n {
                x_new[i] = x[i] + lambda * dx[i];
            }
            system.project(&mut x_new);
            system.residual(&x_new, &mut f_new);
            let ok = f_new.iter().all(|v| v.is_finite());
            if ok && inf_norm(&f_new) < fnorm {
                accepted = true;
                break;
            }
            lambda *= 0.5;
        }
        if !accepted {
            return Err(SolveNewtonError::Stalled {
                iteration: iter,
                residual_norm: fnorm,
                x,
            });
        }
        x.copy_from_slice(&x_new);
        f.copy_from_slice(&f_new);
        fnorm = inf_norm(&f);
    }

    if fnorm <= tolerance {
        Ok(NewtonSolution {
            x: x.clone(),
            iterations: max_iter,
            residual_norm: fnorm,
        })
    } else {
        Err(SolveNewtonError::NotConverged {
            residual_norm: fnorm,
            x,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quadratic;

    impl NewtonSystem for Quadratic {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            // x^2 + y^2 = 4, x - y = 0  =>  x = y = sqrt(2).
            out[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
            out[1] = x[0] - x[1];
        }
        fn project(&self, x: &mut [f64]) {
            for v in x.iter_mut() {
                *v = v.clamp(0.0, 10.0);
            }
        }
    }

    #[test]
    fn solves_2d_system_with_fd_jacobian() {
        let sol = solve_newton(&Quadratic, &[1.0, 2.0], 1e-10, 50).unwrap();
        let s = 2f64.sqrt();
        assert!((sol.x[0] - s).abs() < 1e-6);
        assert!((sol.x[1] - s).abs() < 1e-6);
    }

    struct Exponential;

    impl NewtonSystem for Exponential {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0].exp() - 3.0;
        }
        fn jacobian(&self, x: &[f64]) -> Matrix {
            let mut j = Matrix::zeros(1, 1);
            j[(0, 0)] = x[0].exp();
            j
        }
    }

    #[test]
    fn analytic_jacobian_path() {
        let sol = solve_newton(&Exponential, &[0.0], 1e-12, 50).unwrap();
        assert!((sol.x[0] - 3f64.ln()).abs() < 1e-10);
        assert!(sol.iterations < 20);
    }

    struct NoRoot;

    impl NewtonSystem for NoRoot {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] + 1.0; // strictly positive
        }
    }

    #[test]
    fn rootless_system_reports_stall_or_budget() {
        match solve_newton(&NoRoot, &[3.0], 1e-12, 30) {
            Err(SolveNewtonError::Stalled { .. }) | Err(SolveNewtonError::NotConverged { .. }) => {}
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn already_converged_returns_immediately() {
        let sol = solve_newton(&Exponential, &[3f64.ln()], 1e-9, 5).unwrap();
        assert_eq!(sol.iterations, 0);
    }
}
