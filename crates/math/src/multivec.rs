//! Batches of equal-length vectors and the cache-tiled matrix × batch
//! product — the linear-algebra core of the GEMM-batched Picard sweep.
//!
//! A [`MultiVec`] holds `lanes` column vectors of length `rows`
//! interleaved by component: component `i` of every lane is contiguous
//! (`data[i·lanes + lane]`). Viewing the batch as a `lanes × rows`
//! matrix, the storage is column-major; viewing it as `rows` components
//! each fanned across the batch, every elementwise operation — power
//! evaluation, damped Picard updates, convergence reductions — runs over
//! contiguous memory and autovectorizes.
//!
//! [`Matrix::mul_into`] computes `Y = A · X` for a batch `X`, blocking
//! the lane dimension so a register tile of accumulators is reused across
//! a whole row of `A` (one broadcast load of `A[i][k]` feeds `NR` lanes).
//! Per lane, components accumulate in ascending-`k` order — exactly the
//! order of [`Matrix::mul_vec_into`] — so the portable tier is
//! **bit-identical** to solving each lane with a mat-vec; the FMA tiers
//! (picked at runtime, see [`crate::simd`]) fuse each multiply-add into a
//! single rounding and agree to ~1 ULP per accumulation instead.

use crate::matrix::Matrix;
use crate::simd::{isa, Isa};

/// A batch of `lanes` column vectors of length `rows`, stored
/// component-major (component `i`, lane `j` at `data[i*lanes + j]`).
///
/// # Example
///
/// ```
/// use ptherm_math::{Matrix, MultiVec};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// // Two lanes: (1, 1) and (0, 1).
/// let mut x = MultiVec::zeros(2, 2);
/// x.component_mut(0).copy_from_slice(&[1.0, 0.0]);
/// x.component_mut(1).copy_from_slice(&[1.0, 1.0]);
/// let mut y = MultiVec::zeros(2, 2);
/// a.mul_into(&x, &mut y);
/// assert_eq!(y.component(0), &[3.0, 2.0]);
/// assert_eq!(y.component(1), &[7.0, 4.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiVec {
    rows: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl MultiVec {
    /// A zero-filled batch of `lanes` vectors of length `rows`. Zero
    /// dimensions are allowed (empty floorplans, empty batches).
    pub fn zeros(rows: usize, lanes: usize) -> Self {
        MultiVec {
            rows,
            lanes,
            data: vec![0.0; rows * lanes],
        }
    }

    /// Vector length (number of components).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of vectors in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Reshapes in place to `rows × lanes`, zero-filling. Keeps the
    /// allocation when the new size fits (the batched sweep reuses one
    /// `MultiVec` across batches).
    pub fn reset(&mut self, rows: usize, lanes: usize) {
        self.rows = rows;
        self.lanes = lanes;
        self.data.clear();
        self.data.resize(rows * lanes, 0.0);
    }

    /// Component `i` across every lane (contiguous).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn component(&self, i: usize) -> &[f64] {
        &self.data[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Mutable component `i` across every lane.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn component_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Element (component `i`, lane `j`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.lanes, "multivec index");
        self.data[i * self.lanes + j]
    }

    /// Sets element (component `i`, lane `j`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.lanes, "multivec index");
        self.data[i * self.lanes + j] = value;
    }

    /// Copies lane `j` (a strided gather) into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.lanes()` or `out.len() != self.rows()`.
    pub fn copy_lane_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.lanes, "lane out of range");
        assert_eq!(out.len(), self.rows, "lane length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * self.lanes + j];
        }
    }

    /// Sets every component of lane `j` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.lanes()`.
    pub fn fill_lane(&mut self, j: usize, value: f64) {
        assert!(j < self.lanes, "lane out of range");
        for i in 0..self.rows {
            self.data[i * self.lanes + j] = value;
        }
    }

    /// The raw component-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw component-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// One register tile: `MR` output rows × `NR` lanes, accumulated over the
/// full `k` loop in ascending order per lane. Sharing each `x` row load
/// across `MR` rows of `A` keeps the kernel FMA-bound instead of
/// load-bound. `FMA = false` rounds `a*x` and the add separately
/// (matching [`Matrix::mul_vec_into`] bit for bit); `FMA = true` uses
/// `f64::mul_add`. Per lane the accumulation order is identical either
/// way, so results do not depend on the tile shape.
///
/// # Safety
///
/// Requires `i0 + MR <= rows`, `j0 + NR <= lanes`,
/// `a.len() >= rows*cols`, `x.len() >= cols*lanes` and
/// `y.len() >= rows*lanes` — asserted once by [`gemm_generic`].
#[inline(always)]
unsafe fn lane_tile<const MR: usize, const NR: usize, const FMA: bool>(
    a: &[f64],
    cols: usize,
    x: &[f64],
    y: &mut [f64],
    lanes: usize,
    i0: usize,
    j0: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for k in 0..cols {
        // SAFETY: k < cols and j0 + NR <= lanes, so every index is below
        // cols*lanes <= x.len(); likewise (i0+ii)*cols + k < rows*cols.
        let xr = unsafe { x.get_unchecked(k * lanes + j0..k * lanes + j0 + NR) };
        for (ii, accrow) in acc.iter_mut().enumerate() {
            // SAFETY: ii < MR and i0 + MR <= rows, so the flat index is
            // below rows*cols <= a.len() (asserted by `gemm_generic`).
            let aik = *unsafe { a.get_unchecked((i0 + ii) * cols + k) };
            for jj in 0..NR {
                if FMA {
                    accrow[jj] = aik.mul_add(xr[jj], accrow[jj]);
                } else {
                    accrow[jj] += aik * xr[jj];
                }
            }
        }
    }
    for (ii, row) in acc.iter().enumerate() {
        let base = (i0 + ii) * lanes + j0;
        // SAFETY: i0 + ii < rows and j0 + NR <= lanes.
        unsafe { y.get_unchecked_mut(base..base + NR) }.copy_from_slice(row);
    }
}

#[inline(always)]
fn gemm_generic<const FMA: bool>(
    a: &[f64],
    rows: usize,
    cols: usize,
    x: &[f64],
    y: &mut [f64],
    lanes: usize,
) {
    // One up-front check justifies every unchecked access in the tiles.
    assert!(a.len() >= rows * cols, "gemm: A storage too short");
    assert!(x.len() >= cols * lanes, "gemm: X storage too short");
    assert!(y.len() >= rows * lanes, "gemm: Y storage too short");
    let mut i0 = 0;
    while i0 < rows {
        macro_rules! sweep_lanes {
            ($mr:expr) => {{
                let mut j0 = 0;
                while j0 + 16 <= lanes {
                    // SAFETY: bounds asserted above; loop conditions keep
                    // i0 + MR <= rows and j0 + NR <= lanes.
                    unsafe { lane_tile::<$mr, 16, FMA>(a, cols, x, y, lanes, i0, j0) };
                    j0 += 16;
                }
                while j0 + 4 <= lanes {
                    // SAFETY: as above.
                    unsafe { lane_tile::<$mr, 4, FMA>(a, cols, x, y, lanes, i0, j0) };
                    j0 += 4;
                }
                while j0 < lanes {
                    // SAFETY: as above.
                    unsafe { lane_tile::<$mr, 1, FMA>(a, cols, x, y, lanes, i0, j0) };
                    j0 += 1;
                }
            }};
        }
        if i0 + 4 <= rows {
            sweep_lanes!(4);
            i0 += 4;
        } else {
            sweep_lanes!(1);
            i0 += 1;
        }
    }
}

// SAFETY: `unsafe` purely because of `target_feature` — the body is the
// safe, internally-asserted `gemm_generic`. Callers must have verified
// AVX-512F/VL/DQ + FMA support (done once by `crate::simd::isa`), or
// the enabled codegen is undefined on this CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx512dq,fma")]
unsafe fn gemm_avx512(a: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64], lanes: usize) {
    gemm_generic::<true>(a, rows, cols, x, y, lanes);
}

// SAFETY: as above — callers must have verified AVX2 + FMA support
// (done once by `crate::simd::isa`); the body itself is safe code.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_avx2(a: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64], lanes: usize) {
    gemm_generic::<true>(a, rows, cols, x, y, lanes);
}

impl Matrix {
    /// Batched product `Y = A · X`: every lane of `x` is multiplied by
    /// `self`, written into the matching lane of `y`.
    ///
    /// Per lane this performs exactly the accumulation of
    /// [`Matrix::mul_vec_into`] (ascending `k`); on machines with FMA the
    /// runtime-dispatched kernel fuses each multiply-add into a single
    /// rounding, so lanes agree with the mat-vec to ~1 ULP per term
    /// rather than bit-for-bit (see [`crate::simd`]). Use
    /// [`Matrix::mul_into_portable`] when bit-stability across machines
    /// matters more than speed.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != self.cols()`, `y.rows() != self.rows()` or
    /// the lane counts differ.
    pub fn mul_into(&self, x: &MultiVec, y: &mut MultiVec) {
        self.check_batch_shapes(x, y);
        #[cfg(target_arch = "x86_64")]
        {
            match isa() {
                // SAFETY: `isa()` only reports a tier after
                // `is_x86_feature_detected!` confirmed every feature the
                // kernel was compiled with.
                Isa::Avx512 => unsafe {
                    gemm_avx512(
                        self.as_slice(),
                        self.rows(),
                        self.cols(),
                        &x.data,
                        &mut y.data,
                        x.lanes,
                    )
                },
                // SAFETY: as above — AVX2 and FMA were detected.
                Isa::Avx2Fma => unsafe {
                    gemm_avx2(
                        self.as_slice(),
                        self.rows(),
                        self.cols(),
                        &x.data,
                        &mut y.data,
                        x.lanes,
                    )
                },
                Isa::Portable => self.mul_into_portable_inner(x, y),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        self.mul_into_portable_inner(x, y);
    }

    /// [`Matrix::mul_into`] restricted to the portable kernel: separate
    /// multiply and add roundings, bit-identical to running
    /// [`Matrix::mul_vec_into`] on every lane, on every machine.
    ///
    /// # Panics
    ///
    /// Same shape requirements as [`Matrix::mul_into`].
    pub fn mul_into_portable(&self, x: &MultiVec, y: &mut MultiVec) {
        self.check_batch_shapes(x, y);
        self.mul_into_portable_inner(x, y);
    }

    fn mul_into_portable_inner(&self, x: &MultiVec, y: &mut MultiVec) {
        gemm_generic::<false>(
            self.as_slice(),
            self.rows(),
            self.cols(),
            &x.data,
            &mut y.data,
            x.lanes,
        );
    }

    fn check_batch_shapes(&self, x: &MultiVec, y: &MultiVec) {
        assert_eq!(x.rows(), self.cols(), "mul_into input dimension mismatch");
        assert_eq!(y.rows(), self.rows(), "mul_into output dimension mismatch");
        assert_eq!(x.lanes(), y.lanes(), "mul_into lane count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(n: usize, seed: &mut u64) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = rand_f64(seed);
            }
        }
        a
    }

    fn rand_f64(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    }

    #[test]
    fn component_layout_is_contiguous() {
        let mut m = MultiVec::zeros(3, 4);
        m.component_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(&m.as_slice()[4..8], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn lane_roundtrip() {
        let mut m = MultiVec::zeros(3, 2);
        m.set(0, 1, 10.0);
        m.set(1, 1, 11.0);
        m.set(2, 1, 12.0);
        let mut lane = [0.0; 3];
        m.copy_lane_into(1, &mut lane);
        assert_eq!(lane, [10.0, 11.0, 12.0]);
        m.fill_lane(0, 7.0);
        m.copy_lane_into(0, &mut lane);
        assert_eq!(lane, [7.0, 7.0, 7.0]);
    }

    #[test]
    fn reset_keeps_capacity_and_zeroes() {
        let mut m = MultiVec::zeros(8, 8);
        m.set(3, 3, 5.0);
        let cap = m.as_slice().len();
        m.reset(8, 8);
        assert_eq!(m.as_slice().len(), cap);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        m.reset(2, 3);
        assert_eq!((m.rows(), m.lanes()), (2, 3));
    }

    #[test]
    fn portable_gemm_is_bit_identical_to_per_lane_matvec() {
        let mut seed = 0xC0FFEE;
        // Cover the 32-, 8- and scalar-tile paths plus ragged sizes.
        for (n, lanes) in [(5, 1), (8, 8), (16, 33), (64, 40), (3, 70)] {
            let a = test_matrix(n, &mut seed);
            let mut x = MultiVec::zeros(n, lanes);
            for v in x.as_mut_slice() {
                *v = rand_f64(&mut seed);
            }
            let mut y = MultiVec::zeros(n, lanes);
            a.mul_into_portable(&x, &mut y);
            let mut xl = vec![0.0; n];
            let mut yl = vec![0.0; n];
            for j in 0..lanes {
                x.copy_lane_into(j, &mut xl);
                a.mul_vec_into(&xl, &mut yl);
                let mut got = vec![0.0; n];
                y.copy_lane_into(j, &mut got);
                assert_eq!(got, yl, "lane {j} of {n}x{lanes}");
            }
        }
    }

    #[test]
    fn dispatched_gemm_matches_portable_to_ulp() {
        let mut seed = 0xBEEF;
        let n = 48;
        let lanes = 37;
        let a = test_matrix(n, &mut seed);
        let mut x = MultiVec::zeros(n, lanes);
        for v in x.as_mut_slice() {
            *v = rand_f64(&mut seed);
        }
        let mut fast = MultiVec::zeros(n, lanes);
        let mut exact = MultiVec::zeros(n, lanes);
        a.mul_into(&x, &mut fast);
        a.mul_into_portable(&x, &mut exact);
        for (f, e) in fast.as_slice().iter().zip(exact.as_slice()) {
            // n fused roundings of O(1) terms: agreement well below 1e-12.
            assert!((f - e).abs() <= 1e-12 * e.abs().max(1.0), "{f} vs {e}");
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let a = Matrix::identity(3);
        let x = MultiVec::zeros(3, 0);
        let mut y = MultiVec::zeros(3, 0);
        a.mul_into(&x, &mut y);
        assert_eq!(y.lanes(), 0);
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn lane_mismatch_panics() {
        let a = Matrix::identity(2);
        let x = MultiVec::zeros(2, 3);
        let mut y = MultiVec::zeros(2, 4);
        a.mul_into(&x, &mut y);
    }
}
