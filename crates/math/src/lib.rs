//! Small, dependency-free numerical toolbox backing the `ptherm` workspace.
//!
//! The DATE'05 power-thermal model is deliberately *closed-form*; numerics are
//! only needed to build the reference solutions the paper compares against
//! (SPICE-like DC operating points, "exact" thermal integrals, 3-D finite
//! differences) and to post-process synthetic measurements. This crate
//! provides exactly the machinery those references need and nothing more:
//!
//! * [`matrix`] — dense row-major matrices with LU factorization,
//! * [`multivec`] — vector batches and the tiled matrix × batch product,
//! * [`expv`] — batched elementwise `exp` for the leakage hot loop,
//! * [`fft`] — planned radix-2 complex and 2-D FFTs for the thermal map
//!   convolution engine,
//! * [`simd`] — runtime ISA dispatch backing the two modules above,
//! * [`tridiag`] — Thomas-algorithm tridiagonal solves,
//! * [`sparse`] — CSR matrices and matrix-free operators,
//! * [`cg`] — (preconditioned) conjugate gradients,
//! * [`roots`] — bracketing (bisection/Brent) and damped Newton in 1-D,
//! * [`newton`] — damped multi-dimensional Newton with line search,
//! * [`quadrature`] — adaptive Simpson and Gauss–Legendre rules in 1-D/2-D,
//! * [`ode`] — RK4 and adaptive RKF45 integrators,
//! * [`fit`] — linear least squares, exponential-saturation fits and a small
//!   Levenberg–Marquardt implementation,
//! * [`stats`] — error metrics used throughout the experiment harness.
//!
//! # Example
//!
//! ```
//! use ptherm_math::roots::brent;
//!
//! # fn main() -> Result<(), ptherm_math::roots::RootError> {
//! // Solve x^3 = 2 on [0, 2].
//! let root = brent(|x| x * x * x - 2.0, 0.0, 2.0, 1e-12, 100)?;
//! assert!((root - 2f64.powf(1.0 / 3.0)).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

pub mod cg;
pub mod expv;
pub mod fft;
pub mod fit;
pub mod matrix;
pub mod multivec;
pub mod newton;
pub mod ode;
pub mod quadrature;
pub mod roots;
pub mod simd;
pub mod sparse;
pub mod stats;
pub mod tridiag;

pub use matrix::Matrix;
pub use multivec::MultiVec;
pub use sparse::CsrMatrix;
