//! Batched elementwise `exp` for the leakage hot loop.
//!
//! The Eq. 13 OFF-current family evaluates `exp` twice per block per
//! Picard iteration; over a batched sweep that is millions of calls, all
//! independent — exactly the shape a vectorized polynomial kernel wants
//! and a scalar libm call wastes. [`exp_into`] evaluates the classic
//! range reduction
//!
//! ```text
//! e^x = 2^k · e^r,   k = round(x·log2 e),   r = x − k·ln 2,  |r| ≤ ln2/2
//! ```
//!
//! with a degree-10 polynomial for `e^r` and reconstructs `2^k` by exponent
//! bit assembly. The loop body is branch-free, so it autovectorizes; on
//! FMA machines a `#[target_feature]` variant (picked at runtime, see
//! [`crate::simd`]) fuses the Horner steps.
//!
//! # Accuracy
//!
//! Relative error vs `f64::exp` is below `5e-13` over the whole finite
//! range (the tests assert it) — a few ULP, not correctly rounded. Inputs
//! outside `[-708, 709]` plus NaN fall back to `f64::exp` in a scalar
//! fix-up pass, so overflow, gradual underflow and specials behave
//! exactly like libm.

/// Degree-10 Taylor coefficients of `e^r` on `|r| ≤ ln2/2` (truncation
/// error `r¹¹/11! ≈ 2.3e-13` at the interval edge).
const C: [f64; 11] = [
    1.0,
    1.0,
    0.5,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
];

/// Inputs farther from zero than this take the scalar libm fallback.
const RANGE: f64 = 708.0;

const LOG2_E: f64 = std::f64::consts::LOG2_E;
// ln2 split head/tail so `r = (x − k·HI) − k·LO` stays exact-ish.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

#[inline(always)]
fn fma<const FMA: bool>(a: f64, b: f64, c: f64) -> f64 {
    if FMA {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// One block of `N` independent evaluations. Structuring the Horner
/// recurrence as *step-major* loops (every lane advances one coefficient
/// before any lane advances to the next) turns one serial
/// ~40-cycle-latency chain per vector into `N/8` chains in flight, so the
/// kernel runs at FMA throughput instead of FMA latency.
#[inline(always)]
fn exp_block<const N: usize, const FMA: bool>(x: &[f64; N], out: &mut [f64; N]) {
    let mut kf = [0.0f64; N];
    let mut r = [0.0f64; N];
    for j in 0..N {
        // Clamp keeps the exponent assembly in the normal range; clamped
        // (and NaN) elements are recomputed by the caller's fix-up pass.
        let xc = x[j].clamp(-RANGE, RANGE);
        kf[j] = (xc * LOG2_E).round_ties_even();
        r[j] = fma::<FMA>(-kf[j], LN2_LO, fma::<FMA>(-kf[j], LN2_HI, xc));
    }
    let mut p = [C[10]; N];
    for c in C[..10].iter().rev() {
        for j in 0..N {
            p[j] = fma::<FMA>(p[j], r[j], *c);
        }
    }
    // 2^k assembled without a float→int cast (which lowers to a scalar
    // `cvttsd2si` per element): adding 2^52 parks the biased exponent in
    // the low mantissa bits, where a plain shift lifts it into place.
    const MAGIC: f64 = 4503599627370496.0 + 1023.0; // 2^52 + bias
    for j in 0..N {
        let scale = f64::from_bits((kf[j] + MAGIC).to_bits() << 52);
        out[j] = p[j] * scale;
    }
}

#[inline(always)]
fn exp_generic<const FMA: bool>(x: &[f64], out: &mut [f64]) {
    const BLOCK: usize = 32;
    let mut xc = x.chunks_exact(BLOCK);
    let mut oc = out.chunks_exact_mut(BLOCK);
    for (xb, ob) in (&mut xc).zip(&mut oc) {
        exp_block::<BLOCK, FMA>(
            xb.try_into().expect("chunk size"),
            ob.try_into().expect("chunk size"),
        );
    }
    for (xb, ob) in xc.remainder().iter().zip(oc.into_remainder()) {
        exp_block::<1, FMA>(&[*xb], std::array::from_mut(ob));
    }
    // Vectorizable special detector: |x| > RANGE and NaN both make the
    // sign-stripped bit pattern compare high. Only then (rare) does the
    // scalar fix-up pass run to restore libm overflow/underflow/NaN
    // semantics.
    const ABS: u64 = !(1u64 << 63);
    let range_bits = RANGE.to_bits();
    let special = x.iter().fold(0u64, |acc, v| {
        acc | u64::from(v.to_bits() & ABS > range_bits)
    });
    if special != 0 {
        for (o, &v) in out.iter_mut().zip(x) {
            if !(-RANGE..=RANGE).contains(&v) {
                *o = v.exp();
            }
        }
    }
}

// SAFETY: `unsafe` purely because of `target_feature` — the body is the
// safe `exp_generic`. Callers must have verified AVX-512F/VL/DQ + FMA
// support (done once by `crate::simd::isa`), or the enabled codegen is
// undefined on this CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx512dq,fma")]
unsafe fn exp_avx512(x: &[f64], out: &mut [f64]) {
    exp_generic::<true>(x, out);
}

// SAFETY: as above — callers must have verified AVX2 + FMA support
// (done once by `crate::simd::isa`); the body itself is safe code.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn exp_avx2(x: &[f64], out: &mut [f64]) {
    exp_generic::<true>(x, out);
}

/// Writes `exp(x[i])` into `out[i]` for every element.
///
/// See the [module docs](self) for the accuracy contract. Dispatches to
/// an FMA kernel when the CPU has one; the portable tier evaluates the
/// same polynomial with separate roundings (≲1 ULP apart from the FMA
/// tiers).
///
/// # Panics
///
/// Panics if `x.len() != out.len()`.
pub fn exp_into(x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "exp_into length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        use crate::simd::{isa, Isa};
        match isa() {
            // SAFETY: tier reported only after feature detection.
            Isa::Avx512 => unsafe { exp_avx512(x, out) },
            // SAFETY: as above.
            Isa::Avx2Fma => unsafe { exp_avx2(x, out) },
            Isa::Portable => exp_generic::<false>(x, out),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    exp_generic::<false>(x, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_rel_err(xs: &[f64]) -> f64 {
        let mut out = vec![0.0; xs.len()];
        exp_into(xs, &mut out);
        xs.iter()
            .zip(&out)
            .map(|(&x, &got)| {
                let want = x.exp();
                if want == 0.0 {
                    (got - want).abs()
                } else {
                    ((got - want) / want).abs()
                }
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn accurate_on_the_leakage_range() {
        // The OFF-current exponents land in roughly [-60, 1].
        let xs: Vec<f64> = (0..60_000).map(|i| -60.0 + i as f64 * 1e-3).collect();
        assert!(max_rel_err(&xs) < 5e-13);
    }

    #[test]
    fn accurate_over_the_finite_range() {
        let xs: Vec<f64> = (0..14_000).map(|i| -700.0 + i as f64 * 0.1).collect();
        assert!(max_rel_err(&xs) < 5e-13);
    }

    #[test]
    fn specials_match_libm() {
        let xs = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            710.0,
            1000.0,
            -710.0,
            -745.5,
            -1000.0,
            0.0,
            -0.0,
        ];
        let mut out = [0.0; 10];
        exp_into(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            let want = x.exp();
            assert!(
                got == want || (got.is_nan() && want.is_nan()),
                "exp({x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn empty_and_matched_lengths() {
        exp_into(&[], &mut []);
        let mut out = [0.0];
        exp_into(&[1.0], &mut out);
        assert!((out[0] - std::f64::consts::E).abs() < 5e-13 * std::f64::consts::E);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut out = [0.0; 2];
        exp_into(&[1.0], &mut out);
    }
}
