//! Radix-2 FFTs with precomputed plans — the transform core of the
//! high-resolution thermal map engine.
//!
//! The spatial map path (`ptherm-core`'s `thermal::map`) computes
//! steady-state temperature fields as cyclic convolutions of rasterized
//! power with a method-of-images Green's-function kernel, the structure
//! Kemper et al.'s "power blurring" exploits: an `N log N` transform
//! replaces the `O(N²)` direct sum. This module supplies exactly the
//! transforms that path needs and nothing more:
//!
//! * [`FftPlan`] — an iterative, in-place radix-2 complex FFT over
//!   **split** storage (separate `re`/`im` slices, the layout every
//!   elementwise pass in this workspace vectorizes over), with the
//!   bit-reversal permutation and twiddle factors precomputed once;
//! * [`Fft2`] — row-column 2-D transforms built from two plans, with all
//!   column gather/scatter scratch in an external [`Fft2Scratch`] so the
//!   per-solve hot path performs **zero allocation** (the same
//!   plan/workspace split as `MultiVec`'s batch buffers).
//!
//! Real input rides the complex transform with a zeroed imaginary part
//! ([`Fft2::forward_real`]): the map kernels need the full spectrum for
//! their mirrored-index products, so the usual half-spectrum packing of
//! real-only FFTs would be unpacked again immediately — clarity wins
//! over the factor-two. Transforms are deterministic: identical inputs
//! produce bit-identical outputs on every call (no runtime dispatch, no
//! threading), which is what lets the map engine promise bitwise
//! thread-count invariance.

use std::f64::consts::PI;

/// Precomputed plan for an in-place radix-2 complex FFT of one length.
///
/// # Example
///
/// ```
/// use ptherm_math::fft::FftPlan;
///
/// let plan = FftPlan::new(8);
/// let mut re = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
/// let mut im = [0.0; 8];
/// plan.forward(&mut re, &mut im);
/// // An impulse transforms to a flat spectrum.
/// assert!(re.iter().all(|&x| (x - 1.0).abs() < 1e-15));
/// plan.inverse(&mut re, &mut im);
/// assert!((re[0] - 1.0).abs() < 1e-15 && re[1].abs() < 1e-15);
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation of `0..n`.
    rev: Vec<u32>,
    /// Forward twiddles `e^{-2πi j/n}` for `j < n/2`.
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
}

impl FftPlan {
    /// Plans a transform of length `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two (the map engine sizes its
    /// torus with `next_power_of_two`, so callers never see this).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two");
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let half = n / 2;
        let mut tw_re = Vec::with_capacity(half);
        let mut tw_im = Vec::with_capacity(half);
        for j in 0..half {
            let angle = -2.0 * PI * j as f64 / n as f64;
            tw_re.push(angle.cos());
            tw_im.push(angle.sin());
        }
        FftPlan {
            n,
            rev,
            tw_re,
            tw_im,
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-0 plan (never constructible: 0 is
    /// not a power of two), kept for the `len`/`is_empty` pairing lint.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT: `X[k] = Σ_j x[j]·e^{-2πi jk/n}`.
    ///
    /// # Panics
    ///
    /// Panics if `re` or `im` is not of length [`Self::len`].
    pub fn forward(&self, re: &mut [f64], im: &mut [f64]) {
        self.transform::<false>(re, im);
    }

    /// In-place inverse DFT (including the `1/n` scale), the exact
    /// adjoint loop of [`Self::forward`] with conjugated twiddles.
    ///
    /// # Panics
    ///
    /// Panics if `re` or `im` is not of length [`Self::len`].
    pub fn inverse(&self, re: &mut [f64], im: &mut [f64]) {
        self.transform::<true>(re, im);
        let scale = 1.0 / self.n as f64;
        for v in re.iter_mut() {
            *v *= scale;
        }
        for v in im.iter_mut() {
            *v *= scale;
        }
    }

    /// Iterative decimation-in-time butterflies after a bit-reversal
    /// permutation. `INVERSE` flips the twiddle sign (conjugation),
    /// resolved at compile time so the hot loop carries no branch.
    fn transform<const INVERSE: bool>(&self, re: &mut [f64], im: &mut [f64]) {
        let n = self.n;
        assert_eq!(re.len(), n, "re length mismatch");
        assert_eq!(im.len(), n, "im length mismatch");
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            let mut start = 0;
            while start < n {
                for j in 0..half {
                    let wr = self.tw_re[j * stride];
                    let wi = if INVERSE {
                        -self.tw_im[j * stride]
                    } else {
                        self.tw_im[j * stride]
                    };
                    let a = start + j;
                    let b = a + half;
                    let tr = re[b] * wr - im[b] * wi;
                    let ti = re[b] * wi + im[b] * wr;
                    re[b] = re[a] - tr;
                    im[b] = im[a] - ti;
                    re[a] += tr;
                    im[a] += ti;
                }
                start += len;
            }
            len *= 2;
        }
    }
}

/// Column gather/scatter scratch for [`Fft2`], owned by the caller so
/// one immutable plan serves many workers with zero per-call
/// allocation (buffers size themselves on first use and are reused).
#[derive(Debug, Clone, Default)]
pub struct Fft2Scratch {
    col_re: Vec<f64>,
    col_im: Vec<f64>,
}

impl Fft2Scratch {
    /// An empty scratch; buffers size themselves on first transform.
    pub fn new() -> Self {
        Fft2Scratch::default()
    }
}

/// Row-column 2-D FFT plan over row-major `nx × ny` split-complex
/// grids (`x` fastest: element `(ix, iy)` at `ix + nx·iy`).
///
/// # Example
///
/// ```
/// use ptherm_math::fft::{Fft2, Fft2Scratch};
///
/// let plan = Fft2::new(4, 2);
/// let mut scratch = Fft2Scratch::new();
/// let mut re = vec![0.0; 8];
/// let mut im = vec![0.0; 8];
/// re[0] = 1.0; // impulse at the origin
/// plan.forward(&mut re, &mut im, &mut scratch);
/// assert!(re.iter().all(|&x| (x - 1.0).abs() < 1e-15));
/// plan.inverse(&mut re, &mut im, &mut scratch);
/// assert!((re[0] - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone)]
pub struct Fft2 {
    nx: usize,
    ny: usize,
    px: FftPlan,
    py: FftPlan,
}

impl Fft2 {
    /// Plans an `nx × ny` transform.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are powers of two.
    pub fn new(nx: usize, ny: usize) -> Self {
        Fft2 {
            nx,
            ny,
            px: FftPlan::new(nx),
            py: FftPlan::new(ny),
        }
    }

    /// Grid width (fastest-varying axis).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// True for a degenerate empty grid (not constructible; see
    /// [`FftPlan::is_empty`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-place forward 2-D DFT: rows (contiguous), then columns
    /// (gathered through `scratch`).
    ///
    /// # Panics
    ///
    /// Panics if `re` or `im` is not of length [`Self::len`].
    pub fn forward(&self, re: &mut [f64], im: &mut [f64], scratch: &mut Fft2Scratch) {
        self.transform(re, im, scratch, false);
    }

    /// In-place inverse 2-D DFT (including the `1/(nx·ny)` scale).
    ///
    /// # Panics
    ///
    /// Panics if `re` or `im` is not of length [`Self::len`].
    pub fn inverse(&self, re: &mut [f64], im: &mut [f64], scratch: &mut Fft2Scratch) {
        self.transform(re, im, scratch, true);
    }

    /// Forward transform of a **real** grid: copies `input` into `re`,
    /// zeroes `im` and runs [`Self::forward`]. The output is the full
    /// complex spectrum (with its conjugate symmetry
    /// `F[-kx, -ky] = conj F[kx, ky]` intact for downstream mirrored
    /// products).
    ///
    /// # Panics
    ///
    /// Panics if any slice is not of length [`Self::len`].
    pub fn forward_real(
        &self,
        input: &[f64],
        re: &mut [f64],
        im: &mut [f64],
        scratch: &mut Fft2Scratch,
    ) {
        assert_eq!(input.len(), self.len(), "input length mismatch");
        re.copy_from_slice(input);
        im.fill(0.0);
        self.forward(re, im, scratch);
    }

    fn transform(&self, re: &mut [f64], im: &mut [f64], scratch: &mut Fft2Scratch, inverse: bool) {
        let (nx, ny) = (self.nx, self.ny);
        assert_eq!(re.len(), nx * ny, "re length mismatch");
        assert_eq!(im.len(), nx * ny, "im length mismatch");
        for iy in 0..ny {
            let row = iy * nx..(iy + 1) * nx;
            if inverse {
                self.px.inverse(&mut re[row.clone()], &mut im[row]);
            } else {
                self.px.forward(&mut re[row.clone()], &mut im[row]);
            }
        }
        scratch.col_re.clear();
        scratch.col_re.resize(ny, 0.0);
        scratch.col_im.clear();
        scratch.col_im.resize(ny, 0.0);
        for ix in 0..nx {
            for iy in 0..ny {
                scratch.col_re[iy] = re[ix + nx * iy];
                scratch.col_im[iy] = im[ix + nx * iy];
            }
            if inverse {
                self.py.inverse(&mut scratch.col_re, &mut scratch.col_im);
            } else {
                self.py.forward(&mut scratch.col_re, &mut scratch.col_im);
            }
            for iy in 0..ny {
                re[ix + nx * iy] = scratch.col_re[iy];
                im[ix + nx * iy] = scratch.col_im[iy];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Quadratic-cost reference DFT.
    fn naive_dft(re: &[f64], im: &[f64], inverse: bool) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let sign = if inverse { 2.0 } else { -2.0 };
        let mut out_re = vec![0.0; n];
        let mut out_im = vec![0.0; n];
        for (k, (or, oi)) in out_re.iter_mut().zip(&mut out_im).enumerate() {
            for j in 0..n {
                let angle = sign * PI * (j * k) as f64 / n as f64;
                let (s, c) = angle.sin_cos();
                *or += re[j] * c - im[j] * s;
                *oi += re[j] * s + im[j] * c;
            }
            if inverse {
                *or /= n as f64;
                *oi /= n as f64;
            }
        }
        (out_re, out_im)
    }

    fn random_signal(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn matches_the_naive_dft_at_every_length() {
        for &n in &[1usize, 2, 4, 8, 16, 64] {
            let (re0, im0) = random_signal(n, n as u64);
            let (want_re, want_im) = naive_dft(&re0, &im0, false);
            let plan = FftPlan::new(n);
            let (mut re, mut im) = (re0.clone(), im0.clone());
            plan.forward(&mut re, &mut im);
            for i in 0..n {
                assert!((re[i] - want_re[i]).abs() < 1e-10, "n={n} re[{i}]");
                assert!((im[i] - want_im[i]).abs() < 1e-10, "n={n} im[{i}]");
            }
        }
    }

    #[test]
    fn inverse_matches_the_naive_inverse() {
        let n = 32;
        let (re0, im0) = random_signal(n, 7);
        let (want_re, want_im) = naive_dft(&re0, &im0, true);
        let plan = FftPlan::new(n);
        let (mut re, mut im) = (re0, im0);
        plan.inverse(&mut re, &mut im);
        for i in 0..n {
            assert!((re[i] - want_re[i]).abs() < 1e-12);
            assert!((im[i] - want_im[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_then_inverse_round_trips() {
        let n = 128;
        let (re0, im0) = random_signal(n, 42);
        let plan = FftPlan::new(n);
        let (mut re, mut im) = (re0.clone(), im0.clone());
        plan.forward(&mut re, &mut im);
        plan.inverse(&mut re, &mut im);
        for i in 0..n {
            assert!((re[i] - re0[i]).abs() < 1e-12);
            assert!((im[i] - im0[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn transforms_are_deterministic_bitwise() {
        let n = 64;
        let (re0, im0) = random_signal(n, 3);
        let plan = FftPlan::new(n);
        let (mut re_a, mut im_a) = (re0.clone(), im0.clone());
        plan.forward(&mut re_a, &mut im_a);
        let plan_b = FftPlan::new(n);
        let (mut re_b, mut im_b) = (re0, im0);
        plan_b.forward(&mut re_b, &mut im_b);
        assert_eq!(re_a, re_b);
        assert_eq!(im_a, im_b);
    }

    #[test]
    fn real_input_has_conjugate_symmetry() {
        let n = 16;
        let (re0, _) = random_signal(n, 11);
        let plan = FftPlan::new(n);
        let mut re = re0;
        let mut im = vec![0.0; n];
        plan.forward(&mut re, &mut im);
        for k in 1..n {
            assert!((re[k] - re[n - k]).abs() < 1e-12);
            assert!((im[k] + im[n - k]).abs() < 1e-12);
        }
    }

    #[test]
    fn cyclic_convolution_theorem_holds() {
        let n = 32;
        let (a, _) = random_signal(n, 5);
        let (b, _) = random_signal(n, 6);
        // Direct cyclic convolution.
        let mut want = vec![0.0; n];
        for (i, w) in want.iter_mut().enumerate() {
            for j in 0..n {
                *w += a[j] * b[(i + n - j) % n];
            }
        }
        // FFT path: multiply spectra, invert.
        let plan = FftPlan::new(n);
        let (mut ar, mut ai) = (a, vec![0.0; n]);
        let (mut br, mut bi) = (b, vec![0.0; n]);
        plan.forward(&mut ar, &mut ai);
        plan.forward(&mut br, &mut bi);
        for i in 0..n {
            let (re, im) = (ar[i] * br[i] - ai[i] * bi[i], ar[i] * bi[i] + ai[i] * br[i]);
            ar[i] = re;
            ai[i] = im;
        }
        plan.inverse(&mut ar, &mut ai);
        for i in 0..n {
            assert!((ar[i] - want[i]).abs() < 1e-11, "{i}");
            assert!(ai[i].abs() < 1e-11);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_lengths() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_zero_length() {
        let _ = FftPlan::new(0);
    }

    #[test]
    fn length_one_is_the_identity() {
        let plan = FftPlan::new(1);
        let mut re = [3.5];
        let mut im = [-1.25];
        plan.forward(&mut re, &mut im);
        assert_eq!((re[0], im[0]), (3.5, -1.25));
        plan.inverse(&mut re, &mut im);
        assert_eq!((re[0], im[0]), (3.5, -1.25));
    }

    #[test]
    fn two_d_matches_the_naive_double_dft() {
        let (nx, ny) = (4, 8);
        let (grid, _) = random_signal(nx * ny, 9);
        // Naive: transform rows then columns with the 1-D reference.
        let mut rows_re = Vec::new();
        let mut rows_im = Vec::new();
        for iy in 0..ny {
            let (r, i) = naive_dft(&grid[iy * nx..(iy + 1) * nx], &vec![0.0; nx], false);
            rows_re.extend(r);
            rows_im.extend(i);
        }
        let mut want_re = vec![0.0; nx * ny];
        let mut want_im = vec![0.0; nx * ny];
        for ix in 0..nx {
            let col_re: Vec<f64> = (0..ny).map(|iy| rows_re[ix + nx * iy]).collect();
            let col_im: Vec<f64> = (0..ny).map(|iy| rows_im[ix + nx * iy]).collect();
            let (r, i) = naive_dft(&col_re, &col_im, false);
            for iy in 0..ny {
                want_re[ix + nx * iy] = r[iy];
                want_im[ix + nx * iy] = i[iy];
            }
        }
        let plan = Fft2::new(nx, ny);
        let mut scratch = Fft2Scratch::new();
        let mut re = vec![0.0; nx * ny];
        let mut im = vec![0.0; nx * ny];
        plan.forward_real(&grid, &mut re, &mut im, &mut scratch);
        for i in 0..nx * ny {
            assert!((re[i] - want_re[i]).abs() < 1e-11, "{i}");
            assert!((im[i] - want_im[i]).abs() < 1e-11, "{i}");
        }
    }

    #[test]
    fn two_d_round_trips_and_reuses_scratch() {
        let (nx, ny) = (8, 4);
        let (grid, _) = random_signal(nx * ny, 13);
        let plan = Fft2::new(nx, ny);
        let mut scratch = Fft2Scratch::new();
        let mut re = vec![0.0; nx * ny];
        let mut im = vec![0.0; nx * ny];
        plan.forward_real(&grid, &mut re, &mut im, &mut scratch);
        plan.inverse(&mut re, &mut im, &mut scratch);
        for i in 0..nx * ny {
            assert!((re[i] - grid[i]).abs() < 1e-12);
            assert!(im[i].abs() < 1e-12);
        }
        // Second transform reuses the sized scratch without reallocating.
        let cap = scratch.col_re.capacity();
        plan.forward_real(&grid, &mut re, &mut im, &mut scratch);
        assert_eq!(scratch.col_re.capacity(), cap);
    }
}
