//! Property-based tests for the numerical toolbox: randomized systems
//! against the algebraic identities each solver must satisfy.

use proptest::prelude::*;
use ptherm_math::fit::{fit_exp_saturation, linear_least_squares};
use ptherm_math::quadrature::{adaptive_simpson, gauss_legendre_16};
use ptherm_math::roots::{bisect, brent};
use ptherm_math::tridiag::solve_tridiagonal;
use ptherm_math::Matrix;

fn small_f64() -> impl Strategy<Value = f64> {
    -5.0..5.0f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LU solve round-trip: build a diagonally dominant matrix, pick x,
    /// solve for A x = b, recover x.
    #[test]
    fn dense_solve_roundtrip(
        entries in proptest::collection::vec(small_f64(), 16),
        x in proptest::collection::vec(small_f64(), 4),
    ) {
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                a[(i, j)] = entries[i * 4 + j];
            }
            a[(i, i)] += 25.0; // dominance keeps it regular
        }
        let b = a.mul_vec(&x);
        let got = a.solve(&b).expect("dominant matrix is regular");
        for (g, t) in got.iter().zip(&x) {
            prop_assert!((g - t).abs() < 1e-8);
        }
    }

    /// Tridiagonal and dense solvers agree on random dominant systems.
    #[test]
    fn tridiag_matches_dense(
        diag in proptest::collection::vec(3.0..9.0f64, 6),
        off in proptest::collection::vec(-1.0..1.0f64, 10),
        rhs in proptest::collection::vec(small_f64(), 6),
    ) {
        let lower = &off[..5];
        let upper = &off[5..];
        let x = solve_tridiagonal(lower, &diag, upper, &rhs).expect("dominant system");
        let mut a = Matrix::zeros(6, 6);
        for i in 0..6 {
            a[(i, i)] = diag[i];
            if i + 1 < 6 {
                a[(i + 1, i)] = lower[i];
                a[(i, i + 1)] = upper[i];
            }
        }
        let dense = a.solve(&rhs).expect("same system");
        for (p, q) in x.iter().zip(&dense) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }

    /// Brent and bisection find the same root of randomized monotone
    /// cubics.
    #[test]
    fn brent_agrees_with_bisect(a in 0.2..3.0f64, b in -2.0..2.0f64) {
        let f = move |x: f64| a * x * x * x + x - b;
        let rb = brent(f, -10.0, 10.0, 1e-12, 200).expect("monotone cubic");
        let ri = bisect(f, -10.0, 10.0, 1e-12, 300).expect("monotone cubic");
        prop_assert!((rb - ri).abs() < 1e-8);
        prop_assert!(f(rb).abs() < 1e-8);
    }

    /// Quadrature linearity and interval additivity on random smooth
    /// integrands.
    #[test]
    fn quadrature_is_linear_and_additive(c1 in small_f64(), c2 in small_f64(), split in 0.2..0.8f64) {
        let f = move |x: f64| c1 * (2.0 * x).sin() + c2 * x * x;
        let whole = adaptive_simpson(f, 0.0, 1.0, 1e-12, 30).expect("smooth");
        let left = adaptive_simpson(f, 0.0, split, 1e-12, 30).expect("smooth");
        let right = adaptive_simpson(f, split, 1.0, 1e-12, 30).expect("smooth");
        prop_assert!((whole - left - right).abs() < 1e-9);
        let gl = gauss_legendre_16(f, 0.0, 1.0);
        prop_assert!((whole - gl).abs() < 1e-9);
    }

    /// Least squares recovers the generating line exactly from noiseless
    /// data, whatever the line.
    #[test]
    fn least_squares_recovers_lines(a in small_f64(), b in small_f64()) {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.37).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a + b * x).collect();
        let fit = linear_least_squares(&xs, &ys, 2, |x| vec![1.0, x]).expect("well-posed");
        prop_assert!((fit.parameters[0] - a).abs() < 1e-8);
        prop_assert!((fit.parameters[1] - b).abs() < 1e-8);
    }

    /// Exponential-saturation fit recovers randomized parameters.
    #[test]
    fn exp_fit_recovers_parameters(
        y0 in -1.0..1.0f64,
        dy in 0.2..3.0f64,
        tau_ms in 1.0..30.0f64,
    ) {
        let tau = tau_ms * 1e-3;
        let t: Vec<f64> = (0..300).map(|i| i as f64 * 5.0 * tau / 300.0).collect();
        let y: Vec<f64> = t.iter().map(|&ti| y0 + dy * (1.0 - (-ti / tau).exp())).collect();
        let fit = fit_exp_saturation(&t, &y).expect("clean signal");
        prop_assert!((fit.y0 - y0).abs() < 1e-4, "y0 {} vs {y0}", fit.y0);
        prop_assert!((fit.dy - dy).abs() / dy < 1e-3, "dy {} vs {dy}", fit.dy);
        prop_assert!((fit.tau - tau).abs() / tau < 1e-2, "tau {} vs {tau}", fit.tau);
    }
}
