//! Property-based tests for the exact solvers: randomized stacks and
//! networks against Kirchhoff-level invariants.

use proptest::prelude::*;
use ptherm_netlist::{BoundNetwork, Network};
use ptherm_spice::network::solve_network;
use ptherm_spice::stack::{Stack, StackDevice};
use ptherm_tech::Technology;

fn width() -> impl Strategy<Value = f64> {
    (0.2f64.ln()..8.0f64.ln()).prop_map(|l| l.exp() * 1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random stacks with random gate states: node voltages stay inside
    /// the rails and the chain current is positive.
    #[test]
    fn mixed_gate_stacks_solve_physically(
        widths in proptest::collection::vec(width(), 2..5),
        gates in proptest::collection::vec(proptest::bool::ANY, 4),
        t in 280.0..400.0f64,
    ) {
        let tech = Technology::cmos_120nm();
        let devices: Vec<StackDevice> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| StackDevice {
                width: w,
                // Keep at least the bottom device OFF so the chain blocks.
                gate_voltage: if i > 0 && gates[i % gates.len()] { tech.vdd } else { 0.0 },
            })
            .collect();
        let stack = Stack::new(&tech.nmos, tech.vdd, tech.t_ref, devices);
        let sol = stack.solve(t).expect("blocking stack solves");
        prop_assert!(sol.current > 0.0);
        for v in &sol.node_voltages {
            prop_assert!((0.0..=tech.vdd).contains(v), "{:?}", sol.node_voltages);
        }
    }

    /// Adding a parallel OFF device can only increase the network current;
    /// adding a series OFF device can only decrease it.
    #[test]
    fn monotonicity_under_composition(w1 in width(), w2 in width(), t in 280.0..400.0f64) {
        let tech = Technology::cmos_120nm();
        let single = Network::device(w1, 0);
        let par = Network::Parallel(vec![Network::device(w1, 0), Network::device(w2, 1)]);
        let ser = Network::Series(vec![Network::device(w1, 0), Network::device(w2, 1)]);
        let inputs = [false, false];
        let i_single = solve_network(&tech, &BoundNetwork::pulldown(&single, &inputs[..1]), t)
            .expect("solves")
            .current;
        let i_par = solve_network(&tech, &BoundNetwork::pulldown(&par, &inputs), t)
            .expect("solves")
            .current;
        let i_ser = solve_network(&tech, &BoundNetwork::pulldown(&ser, &inputs), t)
            .expect("solves")
            .current;
        prop_assert!(i_par > i_single);
        prop_assert!(i_ser < i_single);
    }

    /// The network solver agrees with the dedicated stack solver on
    /// random pure chains (two independent code paths).
    #[test]
    fn network_and_stack_solvers_agree(
        widths in proptest::collection::vec(width(), 1..5),
        t in 280.0..400.0f64,
    ) {
        let tech = Technology::cmos_120nm();
        let chain = Network::Series(
            widths.iter().enumerate().map(|(i, &w)| Network::device(w, i)).collect(),
        );
        let inputs = vec![false; widths.len()];
        let via_network = solve_network(&tech, &BoundNetwork::pulldown(&chain, &inputs), t)
            .expect("solves")
            .current;
        let via_stack = Stack::off_current(&tech, &widths, t).expect("solves");
        let rel = (via_network - via_stack).abs() / via_stack;
        prop_assert!(rel < 1e-6, "network {via_network:.6e} vs stack {via_stack:.6e}");
    }

    /// Width scaling: doubling every width doubles the current of an
    /// all-OFF network (the subthreshold equations are width-linear).
    #[test]
    fn current_is_width_linear(widths in proptest::collection::vec(width(), 1..4), t in 280.0..390.0f64) {
        let tech = Technology::cmos_120nm();
        let i1 = Stack::off_current(&tech, &widths, t).expect("solves");
        let doubled: Vec<f64> = widths.iter().map(|w| 2.0 * w).collect();
        let i2 = Stack::off_current(&tech, &doubled, t).expect("solves");
        prop_assert!((i2 / i1 - 2.0).abs() < 1e-6, "ratio {}", i2 / i1);
    }
}
