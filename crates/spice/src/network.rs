//! Exact DC solution of general series-parallel networks.
//!
//! Consumes the bound networks produced by `ptherm-netlist` (any input
//! vector, both polarities — pull-ups arrive pre-mirrored into n-channel
//! convention) and solves full KCL with damped Newton; when Newton stalls, a
//! supply-ramping homotopy walks the solution up from a fraction of `V_DD`.
//!
//! This is the reference for the *series-parallel generalization* of the
//! paper's collapsing technique (gate-level leakage of AOI/OAI cells and
//! friends).

use ptherm_device::combined::CombinedModel;
use ptherm_math::newton::{solve_newton, NewtonSystem, SolveNewtonError};
use ptherm_math::Matrix;
use ptherm_netlist::{BoundNetwork, BoundNode};
use ptherm_tech::Technology;
use std::fmt;

/// Error returned by [`solve_network`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveNetworkError {
    /// The network has no devices.
    EmptyNetwork,
    /// A device has a non-positive or non-finite width.
    BadDevice {
        /// Width found.
        width: f64,
    },
    /// The Newton iteration (and its homotopy fallback) failed.
    DidNotConverge {
        /// Description of the failure.
        detail: String,
    },
}

impl fmt::Display for SolveNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveNetworkError::EmptyNetwork => write!(f, "network has no devices"),
            SolveNetworkError::BadDevice { width } => {
                write!(f, "device has invalid width {width}")
            }
            SolveNetworkError::DidNotConverge { detail } => {
                write!(f, "network solve did not converge: {detail}")
            }
        }
    }
}

impl std::error::Error for SolveNetworkError {}

/// Solution of a network DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSolution {
    /// Voltages of the internal nodes (solver ordering; opaque but stable).
    pub node_voltages: Vec<f64>,
    /// Total current from the `V_DD` end to the rail end, A.
    pub current: f64,
    /// True when the homotopy fallback was engaged.
    pub used_homotopy: bool,
}

/// One device edge in the flattened graph.
#[derive(Debug, Clone, Copy)]
struct Edge {
    /// Node index on the source (rail) side; 0 = rail, 1 = vdd, 2+ internal.
    a: usize,
    /// Node index on the drain (supply) side.
    b: usize,
    width: f64,
    gate_on: bool,
}

/// Flattens a bound series-parallel tree into device edges.
fn flatten(node: &BoundNode, a: usize, b: usize, next: &mut usize, edges: &mut Vec<Edge>) {
    match node {
        BoundNode::Device { width, gate_on } => {
            edges.push(Edge {
                a,
                b,
                width: *width,
                gate_on: *gate_on,
            });
        }
        BoundNode::Series(children) => {
            let mut lo = a;
            for (i, child) in children.iter().enumerate() {
                let hi = if i == children.len() - 1 {
                    b
                } else {
                    let id = *next;
                    *next += 1;
                    id
                };
                flatten(child, lo, hi, next, edges);
                lo = hi;
            }
        }
        BoundNode::Parallel(children) => {
            for child in children {
                flatten(child, a, b, next, edges);
            }
        }
    }
}

struct NetworkSystem<'m, 'p> {
    model: &'m CombinedModel<'p>,
    edges: Vec<Edge>,
    n_internal: usize,
    vdd: f64,
    temperature_k: f64,
    scale: f64,
}

impl NetworkSystem<'_, '_> {
    fn node_voltage(&self, x: &[f64], id: usize) -> f64 {
        match id {
            0 => 0.0,
            1 => self.vdd,
            _ => x[id - 2],
        }
    }

    fn gate_voltage(&self, e: &Edge) -> f64 {
        if e.gate_on {
            self.vdd
        } else {
            0.0
        }
    }
}

impl NewtonSystem for NetworkSystem<'_, '_> {
    fn dim(&self) -> usize {
        self.n_internal
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for e in &self.edges {
            let vs = self.node_voltage(x, e.a);
            let vd = self.node_voltage(x, e.b);
            let nc = self.model.current_nodal(
                e.width,
                vs,
                vd,
                self.gate_voltage(e),
                0.0,
                self.temperature_k,
            );
            // Conventional current flows drain(b) -> source(a): node a gains.
            if e.a >= 2 {
                out[e.a - 2] += nc.i / self.scale;
            }
            if e.b >= 2 {
                out[e.b - 2] -= nc.i / self.scale;
            }
        }
    }

    fn jacobian(&self, x: &[f64]) -> Matrix {
        let n = self.n_internal;
        let mut j = Matrix::zeros(n.max(1), n.max(1));
        for e in &self.edges {
            let vs = self.node_voltage(x, e.a);
            let vd = self.node_voltage(x, e.b);
            let nc = self.model.current_nodal(
                e.width,
                vs,
                vd,
                self.gate_voltage(e),
                0.0,
                self.temperature_k,
            );
            let (ia, ib) = (e.a, e.b);
            if ia >= 2 {
                j[(ia - 2, ia - 2)] += nc.di_dvs / self.scale;
                if ib >= 2 {
                    j[(ia - 2, ib - 2)] += nc.di_dvd / self.scale;
                }
            }
            if ib >= 2 {
                j[(ib - 2, ib - 2)] -= nc.di_dvd / self.scale;
                if ia >= 2 {
                    j[(ib - 2, ia - 2)] -= nc.di_dvs / self.scale;
                }
            }
        }
        j
    }

    fn project(&self, x: &mut [f64]) {
        for v in x.iter_mut() {
            *v = v.clamp(0.0, self.vdd);
        }
    }
}

/// Solves the DC operating point of a bound network in technology `tech` at
/// `temperature_k`.
///
/// The network spans rail (0 V) → `V_DD` regardless of polarity (pull-up
/// networks are already mirrored); device parameters are chosen by the
/// network's polarity.
///
/// # Errors
///
/// See [`SolveNetworkError`].
pub fn solve_network(
    tech: &Technology,
    network: &BoundNetwork,
    temperature_k: f64,
) -> Result<NetworkSolution, SolveNetworkError> {
    let params = tech.mos(network.polarity());
    let model = CombinedModel::new(params, tech.vdd, tech.t_ref);

    let mut edges = Vec::new();
    let mut next = 2usize;
    flatten(network.root(), 0, 1, &mut next, &mut edges);
    if edges.is_empty() {
        return Err(SolveNetworkError::EmptyNetwork);
    }
    for e in &edges {
        if !e.width.is_finite() || e.width <= 0.0 {
            return Err(SolveNetworkError::BadDevice { width: e.width });
        }
    }
    let n_internal = next - 2;

    // Characteristic current: the network current is bounded by its most
    // limiting device (each at its own gate voltage, full rail across it),
    // so the minimum sets the right residual scale.
    let scale = edges
        .iter()
        .map(|e| {
            let vg = if e.gate_on { tech.vdd } else { 0.0 };
            model
                .current_nodal(e.width, 0.0, tech.vdd, vg, 0.0, temperature_k)
                .i
                .abs()
        })
        .fold(f64::INFINITY, f64::min)
        .max(1e-30);

    let total_current = |system: &NetworkSystem, x: &[f64]| -> f64 {
        // Sum of currents on edges touching the VDD node.
        let mut i_total = 0.0;
        for e in &system.edges {
            if e.b == 1 || e.a == 1 {
                let vs = system.node_voltage(x, e.a);
                let vd = system.node_voltage(x, e.b);
                let nc = model.current_nodal(
                    e.width,
                    vs,
                    vd,
                    system.gate_voltage(e),
                    0.0,
                    temperature_k,
                );
                // Edge with drain at VDD draws nc.i out of the supply.
                if e.b == 1 {
                    i_total += nc.i;
                } else {
                    i_total -= nc.i;
                }
            }
        }
        i_total
    };

    if n_internal == 0 {
        // Pure parallel combination: no unknowns.
        let system = NetworkSystem {
            model: &model,
            edges,
            n_internal,
            vdd: tech.vdd,
            temperature_k,
            scale,
        };
        let current = total_current(&system, &[]);
        return Ok(NetworkSolution {
            node_voltages: Vec::new(),
            current,
            used_homotopy: false,
        });
    }

    let system = NetworkSystem {
        model: &model,
        edges,
        n_internal,
        vdd: tech.vdd,
        temperature_k,
        scale,
    };
    let x0: Vec<f64> = (0..n_internal)
        .map(|i| 0.05 * tech.vdd * (i + 1) as f64 / (n_internal + 1) as f64)
        .collect();

    match solve_newton(&system, &x0, 1e-12, 120) {
        Ok(sol) => {
            let current = total_current(&system, &sol.x);
            Ok(NetworkSolution {
                node_voltages: sol.x,
                current,
                used_homotopy: false,
            })
        }
        Err(first_err) => {
            // Homotopy: ramp VDD from 10% to 100% in steps, warm-starting.
            let mut x = x0;
            let steps = 10;
            for k in 1..=steps {
                let vdd_k = tech.vdd * k as f64 / steps as f64;
                let sys_k = NetworkSystem {
                    model: &model,
                    edges: system.edges.clone(),
                    n_internal,
                    vdd: vdd_k,
                    temperature_k,
                    scale,
                };
                match solve_newton(&sys_k, &x, 1e-12, 120) {
                    Ok(sol) => x = sol.x,
                    Err(SolveNewtonError::Stalled { x: best, .. })
                    | Err(SolveNewtonError::NotConverged { x: best, .. }) => x = best,
                    Err(e) => {
                        return Err(SolveNetworkError::DidNotConverge {
                            detail: format!("homotopy step {k}: {e}; original: {first_err}"),
                        })
                    }
                }
            }
            // Final polish at full VDD.
            match solve_newton(&system, &x, 1e-10, 200) {
                Ok(sol) => {
                    let current = total_current(&system, &sol.x);
                    Ok(NetworkSolution {
                        node_voltages: sol.x,
                        current,
                        used_homotopy: true,
                    })
                }
                Err(e) => Err(SolveNetworkError::DidNotConverge {
                    detail: format!("after homotopy: {e}"),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::Stack;
    use ptherm_netlist::{cells, Network};
    use ptherm_tech::Technology;

    fn tech() -> Technology {
        Technology::cmos_120nm()
    }

    #[test]
    fn series_network_matches_stack_solver() {
        let t = tech();
        let widths = [1e-6, 2e-6, 1.5e-6];
        let net = Network::Series(
            widths
                .iter()
                .enumerate()
                .map(|(i, &w)| Network::device(w, i))
                .collect(),
        );
        let bound = ptherm_netlist::BoundNetwork::pulldown(&net, &[false, false, false]);
        let sol = solve_network(&t, &bound, 300.0).unwrap();
        let exact = Stack::off_current(&t, &widths, 300.0).unwrap();
        let rel = (sol.current - exact).abs() / exact;
        assert!(
            rel < 1e-8,
            "network {:.6e} vs stack {:.6e}",
            sol.current,
            exact
        );
    }

    #[test]
    fn parallel_network_sums_device_currents() {
        use ptherm_device::combined::CombinedModel;
        let t = tech();
        let net = Network::Parallel(vec![Network::device(1e-6, 0), Network::device(2e-6, 1)]);
        let bound = ptherm_netlist::BoundNetwork::pulldown(&net, &[false, false]);
        let sol = solve_network(&t, &bound, 300.0).unwrap();
        let m = CombinedModel::new(&t.nmos, t.vdd, t.t_ref);
        let direct = m.current_nodal(3e-6, 0.0, t.vdd, 0.0, 0.0, 300.0).i;
        assert!((sol.current - direct).abs() / direct < 1e-12);
    }

    #[test]
    fn nand3_low_inputs_match_stack() {
        // The blocking pull-down of NAND3 at inputs 000 is exactly a 3-stack.
        let t = tech();
        let g = cells::nand(3, &t);
        let blocking = g.bound_blocking(&[false, false, false]).unwrap();
        let sol = solve_network(&t, &blocking, 300.0).unwrap();
        let w = 2.0 * t.nmos.w_min * 3.0;
        let exact = Stack::off_current(&t, &[w, w, w], 300.0).unwrap();
        assert!((sol.current - exact).abs() / exact < 1e-8);
    }

    #[test]
    fn aoi_network_solves_and_is_positive() {
        let t = tech();
        let g = cells::aoi22(&t);
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let blocking = g.bound_blocking(&v).unwrap();
            let sol =
                solve_network(&t, &blocking, 300.0).unwrap_or_else(|e| panic!("vector {v:?}: {e}"));
            assert!(sol.current > 0.0, "vector {v:?}");
        }
    }

    #[test]
    fn partially_on_network_current_is_bounded_by_limiting_devices() {
        // OAI21 with inputs making one parallel branch ON: current through
        // the series OFF device dominates; must be below its standalone
        // current but positive.
        let t = tech();
        let g = cells::oai21(&t);
        // inputs a=1,b=0,c=0: pulldown = (a|b) & c -> c OFF blocks.
        let blocking = g.bound_blocking(&[true, false, false]).unwrap();
        assert_eq!(blocking.max_stack_depth(), 1);
        let sol = solve_network(&t, &blocking, 300.0).unwrap();
        assert!(sol.current > 0.0);
    }

    #[test]
    fn pullup_blocking_network_uses_pmos_parameters() {
        let t = tech();
        let g = cells::nor(2, &t);
        // NOR with any input high: output low... wait, output low means
        // pull-down conducts and pull-up blocks.
        let blocking = g.bound_blocking(&[true, true]).unwrap();
        assert_eq!(blocking.polarity(), ptherm_tech::Polarity::Pmos);
        let sol = solve_network(&t, &blocking, 300.0).unwrap();
        assert!(sol.current > 0.0);
        // The pMOS 2-stack (NOR pull-up is series) leaks less than a single
        // pMOS of the same width.
        let w = blocking.root().transistor_count();
        assert_eq!(w, 2);
    }

    #[test]
    fn leakage_depends_on_input_vector() {
        // NAND2: vector 00 (2 OFF in series) leaks much less than vector 01
        // (1 OFF device effectively).
        let t = tech();
        let g = cells::nand(2, &t);
        let i00 = solve_network(&t, &g.bound_blocking(&[false, false]).unwrap(), 300.0)
            .unwrap()
            .current;
        let i10 = solve_network(&t, &g.bound_blocking(&[true, false]).unwrap(), 300.0)
            .unwrap()
            .current;
        assert!(
            i10 / i00 > 2.0,
            "stack effect across vectors: {}",
            i10 / i00
        );
    }

    #[test]
    fn conducting_network_reports_large_current() {
        // Solving the CONDUCTING network is legal (subthreshold equations
        // extrapolate); its "leakage" is orders of magnitude above an OFF
        // network. This guards against accidentally solving the wrong side.
        let t = tech();
        let g = cells::nand(2, &t);
        let (down, _) = g.bind_both(&[true, true]).unwrap();
        assert!(down.is_conducting());
        let on = solve_network(&t, &down, 300.0).unwrap();
        let off = solve_network(&t, &g.bound_blocking(&[true, true]).unwrap(), 300.0).unwrap();
        assert!(on.current > 1e3 * off.current);
    }
}
