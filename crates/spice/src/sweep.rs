//! Sweep drivers over the exact solvers: current-vs-temperature,
//! current-vs-supply and node-voltage-vs-width-ratio series.
//!
//! These produce the "experimental" curves the figure binaries plot
//! against the analytical model, packaged so downstream users can run the
//! same characterizations on their own devices.

use crate::stack::{SolveStackError, Stack, StackDevice};
use ptherm_tech::{MosParams, Technology};

/// One sweep sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Swept variable (kelvin, volts or a pure ratio, per driver).
    pub x: f64,
    /// Resulting current (A) or voltage (V), per driver.
    pub y: f64,
}

/// OFF current of an all-OFF stack vs temperature.
///
/// # Errors
///
/// Propagates the first [`SolveStackError`].
///
/// # Panics
///
/// Panics if `points < 2` or the range is not increasing.
pub fn stack_current_vs_temperature(
    tech: &Technology,
    widths: &[f64],
    t_from: f64,
    t_to: f64,
    points: usize,
) -> Result<Vec<SweepPoint>, SolveStackError> {
    assert!(points >= 2 && t_to > t_from, "bad sweep range");
    (0..points)
        .map(|i| {
            let t = t_from + (t_to - t_from) * i as f64 / (points - 1) as f64;
            Stack::off_current(tech, widths, t).map(|y| SweepPoint { x: t, y })
        })
        .collect()
}

/// OFF current of an all-OFF stack vs supply voltage (DIBL exposure).
///
/// # Errors
///
/// Propagates the first [`SolveStackError`].
///
/// # Panics
///
/// Panics if `points < 2` or the range is not increasing/positive.
pub fn stack_current_vs_vdd(
    params: &MosParams,
    t_ref: f64,
    widths: &[f64],
    vdd_from: f64,
    vdd_to: f64,
    temperature_k: f64,
    points: usize,
) -> Result<Vec<SweepPoint>, SolveStackError> {
    assert!(
        points >= 2 && vdd_to > vdd_from && vdd_from > 0.0,
        "bad sweep range"
    );
    (0..points)
        .map(|i| {
            let vdd = vdd_from + (vdd_to - vdd_from) * i as f64 / (points - 1) as f64;
            let stack = Stack::new(
                params,
                vdd,
                t_ref,
                widths
                    .iter()
                    .map(|&w| StackDevice {
                        width: w,
                        gate_voltage: 0.0,
                    })
                    .collect(),
            );
            stack.solve(temperature_k).map(|s| SweepPoint {
                x: vdd,
                y: s.current,
            })
        })
        .collect()
}

/// Bottom node voltage of a 2-stack vs `W_top/W_bot` ratio — the exact
/// curve of the paper's Fig. 3.
///
/// # Errors
///
/// Propagates the first [`SolveStackError`].
///
/// # Panics
///
/// Panics if `points < 2` or ratios are not positive and increasing.
pub fn node_voltage_vs_width_ratio(
    tech: &Technology,
    w_bot: f64,
    ratio_from: f64,
    ratio_to: f64,
    temperature_k: f64,
    points: usize,
) -> Result<Vec<SweepPoint>, SolveStackError> {
    assert!(
        points >= 2 && ratio_to > ratio_from && ratio_from > 0.0,
        "bad sweep range"
    );
    let log_from = ratio_from.ln();
    let log_to = ratio_to.ln();
    (0..points)
        .map(|i| {
            let ratio = (log_from + (log_to - log_from) * i as f64 / (points - 1) as f64).exp();
            Stack::all_off(tech, &[w_bot, w_bot * ratio])
                .solve(temperature_k)
                .map(|s| SweepPoint {
                    x: ratio,
                    y: s.node_voltages[0],
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::cmos_120nm()
    }

    #[test]
    fn temperature_sweep_is_monotone_and_exponential() {
        let s = stack_current_vs_temperature(&tech(), &[1e-6, 1e-6], 280.0, 400.0, 13)
            .expect("sweep solves");
        assert_eq!(s.len(), 13);
        assert!(s.windows(2).all(|w| w[1].y > w[0].y));
        // Two decades or more over 120 K.
        assert!(s.last().expect("nonempty").y / s[0].y > 100.0);
    }

    #[test]
    fn vdd_sweep_exposes_the_stack_supply_interaction() {
        // Eq. (2) references the threshold at V_DS = V_DD, so a full-rail
        // single device is supply-flat by construction...
        let t = tech();
        let single = stack_current_vs_vdd(&t.nmos, t.t_ref, &[1e-6], 0.6, 1.4, 300.0, 9)
            .expect("sweep solves");
        let spread = single.last().expect("nonempty").y / single[0].y;
        assert!((spread - 1.0).abs() < 0.01, "single-device spread {spread}");
        // ...while a 2-stack leaks LESS at higher supply: the DIBL-driven
        // internal node drop grows with V_DD, deepening the shielding.
        let stack = stack_current_vs_vdd(&t.nmos, t.t_ref, &[1e-6, 1e-6], 0.6, 1.4, 300.0, 9)
            .expect("sweep solves");
        assert!(stack.windows(2).all(|w| w[1].y < w[0].y));
        let suppression = stack[0].y / stack.last().expect("nonempty").y;
        assert!(suppression > 2.0, "supply-driven suppression {suppression}");
        // With sigma = 0 the interaction disappears (both flat-ish).
        let mut no_dibl = t.nmos;
        no_dibl.sigma = 0.0;
        let flat = stack_current_vs_vdd(&no_dibl, t.t_ref, &[1e-6, 1e-6], 0.6, 1.4, 300.0, 9)
            .expect("sweep solves");
        let flat_spread = flat[0].y / flat.last().expect("nonempty").y;
        assert!(flat_spread < 1.1, "no-DIBL stack spread {flat_spread}");
    }

    #[test]
    fn ratio_sweep_is_log_spaced_and_monotone() {
        let s =
            node_voltage_vs_width_ratio(&tech(), 1e-6, 0.1, 10.0, 300.0, 11).expect("sweep solves");
        assert!((s[0].x - 0.1).abs() < 1e-12);
        assert!((s[10].x - 10.0).abs() < 1e-9);
        // Node voltage rises with the width ratio (stronger top device).
        assert!(s.windows(2).all(|w| w[1].y > w[0].y));
    }

    #[test]
    #[should_panic(expected = "bad sweep range")]
    fn ranges_are_validated() {
        let _ = stack_current_vs_temperature(&tech(), &[1e-6], 400.0, 300.0, 5);
    }
}
