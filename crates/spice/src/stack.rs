//! Exact DC solution of a series transistor stack (the paper's Fig. 2).
//!
//! Unknowns are the `N−1` internal node voltages `V_1 … V_{N−1}` of an
//! `N`-device chain whose bottom source sits at the rail (0 V) and whose top
//! drain sits at `V_DD`. KCL demands the same current through every device.
//!
//! Two solvers are provided:
//!
//! 1. **Damped Newton** on the tridiagonal KCL system — fast, quadratic
//!    near the solution (the production path, also what the speed benches
//!    measure);
//! 2. **Current ladder** — an outer bisection on the bottom node voltage
//!    with inner Brent solves propagating the current up the chain. For
//!    chains of positively-biased devices the mismatch function is monotone,
//!    making this fallback unconditionally convergent (used when Newton
//!    stalls, and in tests as an independent cross-check).

use ptherm_device::combined::CombinedModel;
use ptherm_math::roots::{brent, RootError};
use ptherm_math::tridiag::solve_tridiagonal;
use ptherm_tech::{MosParams, Technology};
use std::fmt;

/// One device of the chain: width and (fixed) gate voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackDevice {
    /// Drawn width, m.
    pub width: f64,
    /// Gate voltage, V (0 = OFF, `V_DD` = ON for n-channel convention).
    pub gate_voltage: f64,
}

/// A series chain of devices between the source rail and `V_DD`.
///
/// Index 0 is the bottom device (`T1` in the paper), the last index the top
/// device (`T_N`).
#[derive(Debug, Clone)]
pub struct Stack<'a> {
    params: &'a MosParams,
    devices: Vec<StackDevice>,
    vdd: f64,
    t_ref: f64,
    body_voltage: f64,
}

/// Solution of a stack DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct StackSolution {
    /// Internal node voltages `V_1 … V_{N−1}` (bottom to top), V.
    pub node_voltages: Vec<f64>,
    /// Chain current, A.
    pub current: f64,
    /// Newton iterations, when the Newton path succeeded.
    pub newton_iterations: Option<usize>,
    /// True when the bisection ladder produced the answer.
    pub used_fallback: bool,
}

/// Error returned by [`Stack::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveStackError {
    /// The chain has no devices.
    EmptyStack,
    /// A device has a non-positive or non-finite width.
    BadDevice {
        /// Index of the offending device.
        index: usize,
        /// Its width.
        width: f64,
    },
    /// Both Newton and the ladder fallback failed.
    DidNotConverge {
        /// Failure detail from the fallback.
        detail: String,
    },
}

impl fmt::Display for SolveStackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveStackError::EmptyStack => write!(f, "stack has no devices"),
            SolveStackError::BadDevice { index, width } => {
                write!(f, "device {index} has invalid width {width}")
            }
            SolveStackError::DidNotConverge { detail } => {
                write!(f, "stack solve did not converge: {detail}")
            }
        }
    }
}

impl std::error::Error for SolveStackError {}

impl<'a> Stack<'a> {
    /// Builds a stack from explicit devices.
    pub fn new(params: &'a MosParams, vdd: f64, t_ref: f64, devices: Vec<StackDevice>) -> Self {
        Stack {
            params,
            devices,
            vdd,
            t_ref,
            body_voltage: 0.0,
        }
    }

    /// All-OFF nMOS stack (every gate grounded) in the given technology —
    /// the exact configuration of the paper's Figs. 3 and 8.
    pub fn all_off(tech: &'a Technology, widths: &[f64]) -> Self {
        Stack::new(
            &tech.nmos,
            tech.vdd,
            tech.t_ref,
            widths
                .iter()
                .map(|&w| StackDevice {
                    width: w,
                    gate_voltage: 0.0,
                })
                .collect(),
        )
    }

    /// Sets the common body voltage (default 0).
    pub fn with_body_voltage(mut self, vb: f64) -> Self {
        self.body_voltage = vb;
        self
    }

    /// Devices of the chain, bottom to top.
    pub fn devices(&self) -> &[StackDevice] {
        &self.devices
    }

    fn model(&self) -> CombinedModel<'a> {
        CombinedModel::new(self.params, self.vdd, self.t_ref)
    }

    fn validate(&self) -> Result<(), SolveStackError> {
        if self.devices.is_empty() {
            return Err(SolveStackError::EmptyStack);
        }
        for (i, d) in self.devices.iter().enumerate() {
            if !d.width.is_finite() || d.width <= 0.0 {
                return Err(SolveStackError::BadDevice {
                    index: i,
                    width: d.width,
                });
            }
        }
        Ok(())
    }

    /// Current through device `i` given the full node-voltage profile
    /// `nodes` (length `N−1`).
    fn device_current(
        &self,
        model: &CombinedModel<'_>,
        nodes: &[f64],
        i: usize,
        temperature_k: f64,
    ) -> ptherm_device::subthreshold::NodalCurrent {
        let vs = if i == 0 { 0.0 } else { nodes[i - 1] };
        let vd = if i == self.devices.len() - 1 {
            self.vdd
        } else {
            nodes[i]
        };
        model.current_nodal(
            self.devices[i].width,
            vs,
            vd,
            self.devices[i].gate_voltage,
            self.body_voltage,
            temperature_k,
        )
    }

    /// Solves the DC operating point at `temperature_k`.
    ///
    /// Newton first; on stall, the monotone current ladder.
    ///
    /// # Errors
    ///
    /// See [`SolveStackError`].
    pub fn solve(&self, temperature_k: f64) -> Result<StackSolution, SolveStackError> {
        self.validate()?;
        let model = self.model();
        let n = self.devices.len();
        if n == 1 {
            let nc = model.current_nodal(
                self.devices[0].width,
                0.0,
                self.vdd,
                self.devices[0].gate_voltage,
                self.body_voltage,
                temperature_k,
            );
            return Ok(StackSolution {
                node_voltages: Vec::new(),
                current: nc.i,
                newton_iterations: Some(0),
                used_fallback: false,
            });
        }

        match self.solve_newton(&model, temperature_k) {
            Ok(sol) => Ok(sol),
            Err(_) => self.solve_ladder(&model, temperature_k),
        }
    }

    /// Damped Newton with a tridiagonal Jacobian.
    fn solve_newton(
        &self,
        model: &CombinedModel<'_>,
        temperature_k: f64,
    ) -> Result<StackSolution, SolveStackError> {
        let n = self.devices.len();
        let m = n - 1; // unknowns
                       // Characteristic current for relative convergence checks: the chain
                       // current is bounded by the most-limiting device (each at its own
                       // gate voltage with the full rail across it), so use the minimum.
        let i_char = self
            .devices
            .iter()
            .map(|d| {
                model
                    .current_nodal(
                        d.width,
                        0.0,
                        self.vdd,
                        d.gate_voltage,
                        self.body_voltage,
                        temperature_k,
                    )
                    .i
                    .abs()
            })
            .fold(f64::INFINITY, f64::min)
            .max(1e-30);
        let tol = 1e-10 * i_char;

        // Initial guess: a shallow ramp (OFF stacks settle within ~100 mV of
        // the rail; ON-dominated stacks are corrected by damping).
        let mut nodes: Vec<f64> = (0..m)
            .map(|i| 0.05 * self.vdd * (i + 1) as f64 / n as f64)
            .collect();

        let residual = |nodes: &[f64], f: &mut [f64]| {
            for (i, fi) in f.iter_mut().enumerate().take(m) {
                // KCL at node i: current through device i+1 (above) minus
                // device i (below).
                let above = self.device_current(model, nodes, i + 1, temperature_k);
                let below = self.device_current(model, nodes, i, temperature_k);
                *fi = above.i - below.i;
            }
        };

        let mut f = vec![0.0; m];
        residual(&nodes, &mut f);
        let norm = |f: &[f64]| f.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        let mut fnorm = norm(&f);

        for iter in 0..80 {
            if fnorm <= tol {
                let current = self.device_current(model, &nodes, 0, temperature_k).i;
                return Ok(StackSolution {
                    node_voltages: nodes,
                    current,
                    newton_iterations: Some(iter),
                    used_fallback: false,
                });
            }
            // Assemble tridiagonal Jacobian dF/dnodes.
            let mut lower = vec![0.0; m - 1.min(m)];
            let mut diag = vec![0.0; m];
            let mut upper = vec![0.0; m.saturating_sub(1)];
            lower.resize(m.saturating_sub(1), 0.0);
            for i in 0..m {
                let above = self.device_current(model, &nodes, i + 1, temperature_k);
                let below = self.device_current(model, &nodes, i, temperature_k);
                // dF_i/dV_i: above's source is node i, below's drain is node i.
                diag[i] = above.di_dvs - below.di_dvd;
                // dF_i/dV_{i-1}: below's source.
                if i > 0 {
                    lower[i - 1] = -below.di_dvs;
                }
                // dF_i/dV_{i+1}: above's drain.
                if i + 1 < m {
                    upper[i] = above.di_dvd;
                }
            }
            let rhs: Vec<f64> = f.iter().map(|v| -v).collect();
            let Ok(dx) = solve_tridiagonal(&lower, &diag, &upper, &rhs) else {
                return Err(SolveStackError::DidNotConverge {
                    detail: "singular tridiagonal jacobian".into(),
                });
            };

            // Damped update.
            let mut lambda = 1.0;
            let mut accepted = false;
            for _ in 0..40 {
                let trial: Vec<f64> = nodes
                    .iter()
                    .zip(&dx)
                    .map(|(x, d)| (x + lambda * d).clamp(0.0, self.vdd))
                    .collect();
                let mut ft = vec![0.0; m];
                residual(&trial, &mut ft);
                let fn_t = norm(&ft);
                if fn_t.is_finite() && fn_t < fnorm {
                    nodes = trial;
                    f = ft;
                    fnorm = fn_t;
                    accepted = true;
                    break;
                }
                lambda *= 0.5;
            }
            if !accepted {
                return Err(SolveStackError::DidNotConverge {
                    detail: format!("newton stalled with residual {fnorm:.3e}"),
                });
            }
        }
        Err(SolveStackError::DidNotConverge {
            detail: format!("newton budget exhausted, residual {fnorm:.3e}"),
        })
    }

    /// Monotone bisection ladder (unconditionally convergent for OFF chains).
    fn solve_ladder(
        &self,
        model: &CombinedModel<'_>,
        temperature_k: f64,
    ) -> Result<StackSolution, SolveStackError> {
        let n = self.devices.len();
        let dev_i = |i: usize, vs: f64, vd: f64| {
            model
                .current_nodal(
                    self.devices[i].width,
                    vs,
                    vd,
                    self.devices[i].gate_voltage,
                    self.body_voltage,
                    temperature_k,
                )
                .i
        };

        // Mismatch at the top of the chain given the bottom node voltage.
        // Returns (mismatch, nodes). Monotone decreasing in v1.
        let evaluate = |v1: f64| -> (f64, Vec<f64>) {
            let mut nodes = Vec::with_capacity(n - 1);
            nodes.push(v1);
            let target = dev_i(0, 0.0, v1);
            for i in 1..n - 1 {
                let vs = nodes[i - 1];
                // Find vd in [vs, vdd] with I_i(vs, vd) = target.
                let max_i = dev_i(i, vs, self.vdd);
                if max_i < target {
                    // Cannot push that much current even with full headroom:
                    // v1 is too large.
                    return (max_i - target, nodes);
                }
                let root = brent(|vd| dev_i(i, vs, vd) - target, vs, self.vdd, 1e-15, 200);
                match root {
                    Ok(vd) => nodes.push(vd),
                    Err(RootError::NoBracket { .. }) => {
                        // Degenerate: target ~ 0; keep the node at vs.
                        nodes.push(vs);
                    }
                    Err(_) => {
                        return (f64::NAN, nodes);
                    }
                }
            }
            let top = dev_i(n - 1, nodes[n - 2], self.vdd);
            (top - target, nodes)
        };

        let mut lo = 1e-9 * self.vdd;
        let mut hi = self.vdd * (1.0 - 1e-9);
        let (g_lo, _) = evaluate(lo);
        let (g_hi, _) = evaluate(hi);
        if !g_lo.is_finite() || !g_hi.is_finite() {
            return Err(SolveStackError::DidNotConverge {
                detail: "ladder mismatch non-finite at the brackets".into(),
            });
        }
        if g_lo.signum() == g_hi.signum() {
            // One-sided: the better endpoint is the answer (e.g. all devices
            // strongly ON pushes every node toward a rail).
            let v1 = if g_lo.abs() < g_hi.abs() { lo } else { hi };
            let (_, nodes) = evaluate(v1);
            let current = dev_i(0, 0.0, nodes[0]);
            return Ok(StackSolution {
                node_voltages: nodes,
                current,
                newton_iterations: None,
                used_fallback: true,
            });
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let (g, _) = evaluate(mid);
            if !g.is_finite() {
                return Err(SolveStackError::DidNotConverge {
                    detail: "ladder mismatch became non-finite".into(),
                });
            }
            if g.signum() == g_lo.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) < 1e-16 * self.vdd.max(1.0) {
                break;
            }
        }
        let v1 = 0.5 * (lo + hi);
        let (_, nodes) = evaluate(v1);
        let current = dev_i(0, 0.0, nodes[0]);
        Ok(StackSolution {
            node_voltages: nodes,
            current,
            newton_iterations: None,
            used_fallback: true,
        })
    }

    /// Exact OFF current of an all-OFF stack of the given widths — the
    /// "SPICE" data series of Fig. 8.
    ///
    /// # Errors
    ///
    /// See [`SolveStackError`].
    pub fn off_current(
        tech: &Technology,
        widths: &[f64],
        temperature_k: f64,
    ) -> Result<f64, SolveStackError> {
        Stack::all_off(tech, widths)
            .solve(temperature_k)
            .map(|s| s.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_tech::Technology;

    fn tech() -> Technology {
        Technology::cmos_120nm()
    }

    /// Newton and ladder must agree to high precision.
    #[test]
    fn newton_and_ladder_agree() {
        let t = tech();
        for widths in [
            vec![1e-6, 1e-6],
            vec![1e-6, 2e-6, 4e-6],
            vec![4e-6, 1e-6, 2e-6, 1e-6],
        ] {
            let stack = Stack::all_off(&t, &widths);
            let model = stack.model();
            let newton = stack.solve_newton(&model, 300.0).expect("newton converges");
            let ladder = stack.solve_ladder(&model, 300.0).expect("ladder converges");
            let rel = (newton.current - ladder.current).abs() / ladder.current;
            assert!(rel < 1e-8, "widths {widths:?}: rel error {rel:.2e}");
            for (a, b) in newton.node_voltages.iter().zip(&ladder.node_voltages) {
                assert!((a - b).abs() < 1e-8, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn currents_are_equal_through_the_chain() {
        let t = tech();
        let stack = Stack::all_off(&t, &[1e-6, 3e-6, 2e-6]);
        let sol = stack.solve(320.0).unwrap();
        let model = stack.model();
        for i in 0..3 {
            let ic = stack.device_current(&model, &sol.node_voltages, i, 320.0).i;
            let rel = (ic - sol.current).abs() / sol.current;
            assert!(rel < 1e-9, "device {i}: {rel:.2e}");
        }
    }

    #[test]
    fn stack_effect_reduces_current_with_depth() {
        let t = tech();
        let w = 1e-6;
        let mut previous = f64::INFINITY;
        for n in 1..=5 {
            let i = Stack::off_current(&t, &vec![w; n], 300.0).unwrap();
            assert!(i > 0.0);
            assert!(i < previous, "stack {n} must leak less than {}", n - 1);
            previous = i;
        }
        // Two-stack suppression is strong (the classic "stack effect"):
        let i1 = Stack::off_current(&t, &[w], 300.0).unwrap();
        let i2 = Stack::off_current(&t, &[w, w], 300.0).unwrap();
        assert!(i1 / i2 > 5.0, "suppression factor {}", i1 / i2);
    }

    #[test]
    fn node_voltages_increase_monotonically() {
        let t = tech();
        let sol = Stack::all_off(&t, &[1e-6; 4]).solve(300.0).unwrap();
        let mut last = 0.0;
        for v in &sol.node_voltages {
            assert!(
                *v > last,
                "nodes must rise toward the top: {:?}",
                sol.node_voltages
            );
            last = *v;
        }
        assert!(last < t.vdd);
    }

    #[test]
    fn bottom_node_is_tens_of_millivolts() {
        // The classic result: the first internal node of an OFF 2-stack sits
        // a few V_T above ground.
        let t = tech();
        let sol = Stack::all_off(&t, &[1e-6, 1e-6]).solve(300.0).unwrap();
        let v1 = sol.node_voltages[0];
        assert!(v1 > 0.005 && v1 < 0.2, "V1 = {v1}");
    }

    #[test]
    fn on_transistor_above_off_device_is_nearly_transparent() {
        // Stack of 2 with the TOP device ON: the internal node rises until
        // the pass transistor loses gate drive (the classic threshold-drop
        // effect), settling within a threshold of VDD. The chain current is
        // somewhat below the lone-OFF-device value — mostly via the DIBL
        // reduction from the smaller V_DS across the bottom device — but far
        // above the 2-OFF-stack current.
        let t = tech();
        let devices = vec![
            StackDevice {
                width: 1e-6,
                gate_voltage: 0.0,
            }, // bottom OFF
            StackDevice {
                width: 1e-6,
                gate_voltage: t.vdd,
            }, // top ON
        ];
        let stack = Stack::new(&t.nmos, t.vdd, t.t_ref, devices);
        let sol = stack.solve(300.0).unwrap();
        let single = Stack::off_current(&t, &[1e-6], 300.0).unwrap();
        let two_off = Stack::off_current(&t, &[1e-6, 1e-6], 300.0).unwrap();
        assert!(
            sol.current > 0.3 * single && sol.current < single,
            "I = {:.3e} vs single {:.3e}",
            sol.current,
            single
        );
        assert!(sol.current > 3.0 * two_off, "must beat the 2-OFF stack");
        let v1 = sol.node_voltages[0];
        assert!(v1 > 0.6 * t.vdd && v1 < t.vdd, "V1 = {v1}");
    }

    #[test]
    fn temperature_raises_stack_leakage() {
        let t = tech();
        let cold = Stack::off_current(&t, &[1e-6; 3], 298.15).unwrap();
        let hot = Stack::off_current(&t, &[1e-6; 3], 398.15).unwrap();
        assert!(hot / cold > 10.0, "ratio {}", hot / cold);
    }

    #[test]
    fn empty_and_invalid_stacks_are_rejected() {
        let t = tech();
        assert!(matches!(
            Stack::all_off(&t, &[]).solve(300.0),
            Err(SolveStackError::EmptyStack)
        ));
        assert!(matches!(
            Stack::all_off(&t, &[1e-6, -1.0]).solve(300.0),
            Err(SolveStackError::BadDevice { index: 1, .. })
        ));
    }

    #[test]
    fn single_device_matches_device_model() {
        let t = tech();
        let sol = Stack::all_off(&t, &[2e-6]).solve(300.0).unwrap();
        let m = CombinedModel::new(&t.nmos, t.vdd, t.t_ref);
        let direct = m.current_nodal(2e-6, 0.0, t.vdd, 0.0, 0.0, 300.0).i;
        assert!((sol.current - direct).abs() / direct < 1e-12);
    }

    #[test]
    fn wider_top_device_raises_current() {
        // Making the top device wider increases the chain current (less of
        // the drop is wasted across it).
        let t = tech();
        let narrow = Stack::off_current(&t, &[1e-6, 1e-6], 300.0).unwrap();
        let wide = Stack::off_current(&t, &[1e-6, 8e-6], 300.0).unwrap();
        assert!(wide > narrow);
        // But never more than the single bottom device alone.
        let single = Stack::off_current(&t, &[1e-6], 300.0).unwrap();
        assert!(wide < single);
    }
}
