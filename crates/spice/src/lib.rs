//! Exact DC operating-point solver for subthreshold transistor networks —
//! the workspace's **SPICE substitute**.
//!
//! The paper validates its analytical leakage model against HSPICE with
//! BSIM3 models (Figs. 3 and 8). We have no proprietary simulator or foundry
//! deck, so this crate solves the *same* network of devices governed by the
//! *same* compact equations (Eq. 1–2, via `ptherm-device`) **exactly** — no
//! stack collapsing, no `V_DS ≫ V_T` shortcut, full Kirchhoff current law at
//! every internal node:
//!
//! * [`stack`] — the fast path for series chains (the paper's Fig. 2
//!   topology): damped Newton on a tridiagonal Jacobian, with a bisection
//!   "current ladder" fallback that is unconditionally convergent for OFF
//!   chains,
//! * [`network`] — general series-parallel networks via dense damped Newton
//!   with a `V_DD`-ramping homotopy fallback.
//!
//! Model-vs-"SPICE" error in the experiments means model-vs-this-crate, and
//! since both sides share the device equations, the error measured is
//! *exactly the collapsing approximation error* — the quantity the paper's
//! Figs. 3 and 8 report.
//!
//! # Example
//!
//! ```
//! use ptherm_spice::stack::Stack;
//! use ptherm_tech::Technology;
//!
//! # fn main() -> Result<(), ptherm_spice::stack::SolveStackError> {
//! let tech = Technology::cmos_120nm();
//! // A 3-deep all-OFF nMOS stack of 1 um devices at 300 K.
//! let stack = Stack::all_off(&tech, &[1e-6, 1e-6, 1e-6]);
//! let sol = stack.solve(300.0)?;
//! assert!(sol.current > 0.0);
//! assert_eq!(sol.node_voltages.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod network;
pub mod stack;
pub mod sweep;

pub use network::{solve_network, NetworkSolution, SolveNetworkError};
pub use stack::{SolveStackError, Stack, StackSolution};
