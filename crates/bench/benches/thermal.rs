//! Criterion benches for the thermal path: closed-form evaluation against
//! the numerical references, plus the image-order ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptherm_core::thermal::rect::rect_rise;
use ptherm_core::thermal::ThermalModel;
use ptherm_floorplan::Floorplan;
use ptherm_thermal_num::{rect_surface_temperature, FdmSolver};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    c.bench_function("rect_rise_eq20", |b| {
        b.iter(|| {
            rect_rise(
                black_box(10e-3),
                black_box(148.0),
                black_box(1e-6),
                black_box(0.1e-6),
                black_box(2e-6),
                black_box(1e-6),
            )
        });
    });
    c.bench_function("rect_exact_eq17", |b| {
        b.iter(|| {
            rect_surface_temperature(
                black_box(10e-3),
                black_box(148.0),
                black_box(1e-6),
                black_box(0.1e-6),
                black_box(2e-6),
                black_box(1e-6),
            )
        });
    });
}

fn bench_profile(c: &mut Criterion) {
    let fp = Floorplan::paper_three_blocks();
    let mut group = c.benchmark_group("temperature_query");
    for (label, lateral, z) in [("paper_l2_z1", 2usize, 1usize), ("extended_l2_z9", 2, 9)] {
        let model = ThermalModel::with_image_orders(&fp, lateral, z);
        group.bench_with_input(BenchmarkId::from_parameter(label), &model, |b, m| {
            b.iter(|| m.temperature(black_box(0.4e-3), black_box(0.6e-3)));
        });
    }
    group.finish();

    let model = ThermalModel::paper_defaults(&fp);
    c.bench_function("block_center_temperatures/3", |b| {
        b.iter(|| model.block_center_temperatures());
    });
}

fn bench_fdm(c: &mut Criterion) {
    let fp = Floorplan::paper_three_blocks();
    let g = *fp.geometry();
    let n = 16;
    let fdm = FdmSolver {
        die_w: g.width,
        die_l: g.length,
        thickness: g.thickness,
        k: g.conductivity,
        sink_temperature: g.sink_temperature,
        nx: n,
        ny: n,
        nz: 8,
    };
    let map = fp.power_map(n, n);
    let mut group = c.benchmark_group("fdm_reference");
    group.sample_size(10);
    group.bench_function("solve_16x16x8", |b| {
        b.iter(|| fdm.solve(black_box(&map)).expect("fdm solves"));
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_profile, bench_fdm);
criterion_main!(benches);
