//! Criterion benches for the leakage path: the paper's collapsing model
//! against the exact solvers it replaces, plus the Chen'98 baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptherm_core::leakage::baselines::chen98_stack_current;
use ptherm_core::leakage::{CollapseParams, GateLeakageModel};
use ptherm_netlist::cells;
use ptherm_spice::network::solve_network;
use ptherm_spice::stack::Stack;
use ptherm_tech::Technology;
use std::hint::black_box;

fn bench_collapse(c: &mut Criterion) {
    let tech = Technology::cmos_120nm();
    let params = CollapseParams::from_mos(&tech.nmos, tech.vdd);
    let mut group = c.benchmark_group("collapse_chain");
    for n in [2usize, 4, 8] {
        let widths = vec![1e-6; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &widths, |b, w| {
            b.iter(|| params.collapse_chain(black_box(w), black_box(300.0)));
        });
    }
    group.finish();
}

fn bench_exact_stack(c: &mut Criterion) {
    let tech = Technology::cmos_120nm();
    let mut group = c.benchmark_group("exact_stack_solve");
    for n in [2usize, 4, 8] {
        let widths = vec![1e-6; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &widths, |b, w| {
            b.iter(|| Stack::off_current(black_box(&tech), black_box(w), 300.0).expect("solves"));
        });
    }
    group.finish();
}

fn bench_gate_leakage(c: &mut Criterion) {
    let tech = Technology::cmos_120nm();
    let model = GateLeakageModel::new(&tech);
    let nand3 = cells::nand(3, &tech);
    let aoi22 = cells::aoi22(&tech);

    c.bench_function("gate_off_current/nand3_000", |b| {
        b.iter(|| {
            model
                .gate_off_current(black_box(&nand3), black_box(&[false, false, false]), 300.0)
                .expect("blocking network")
        });
    });
    c.bench_function("gate_off_current/aoi22_0101", |b| {
        b.iter(|| {
            model
                .gate_off_current(
                    black_box(&aoi22),
                    black_box(&[false, true, false, true]),
                    300.0,
                )
                .expect("blocking network")
        });
    });
    c.bench_function("exact_network/aoi22_0101", |b| {
        let blocking = aoi22
            .bound_blocking(&[false, true, false, true])
            .expect("blocking network");
        b.iter(|| solve_network(black_box(&tech), black_box(&blocking), 300.0).expect("solves"));
    });
}

fn bench_baseline(c: &mut Criterion) {
    let tech = Technology::cmos_120nm();
    let widths = vec![1e-6; 4];
    c.bench_function("chen98_stack/4", |b| {
        b.iter(|| chen98_stack_current(black_box(&tech), black_box(&widths), 300.0));
    });
}

criterion_group!(
    benches,
    bench_collapse,
    bench_exact_stack,
    bench_gate_leakage,
    bench_baseline
);
criterion_main!(benches);
