//! Criterion benches for the coupled electro-thermal fixed point — the
//! "concurrent" loop the paper proposes — including the damping ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptherm_core::cosim::ElectroThermalSolver;
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use std::hint::black_box;

fn feedback_power(_i: usize, t: f64) -> f64 {
    0.25 + 0.04 * ((t - 300.0) / 25.0).exp2()
}

fn bench_cosim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosim_fixed_point");
    group.sample_size(20);

    let three = Floorplan::paper_three_blocks();
    let solver3 = ElectroThermalSolver::new(three);
    group.bench_function("3_blocks", |b| {
        b.iter(|| solver3.solve(black_box(feedback_power)).expect("converges"));
    });

    let sixteen =
        generator::tiled(ChipGeometry::paper_1mm(), 4, 4, 0.02, 0.06, 3).expect("tiled floorplan");
    let solver16 = ElectroThermalSolver::new(sixteen);
    group.bench_function("16_blocks", |b| {
        b.iter(|| {
            solver16
                .solve(black_box(|_i: usize, t: f64| {
                    0.03 + 0.01 * ((t - 300.0) / 25.0).exp2()
                }))
                .expect("converges")
        });
    });
    group.finish();
}

fn bench_damping_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosim_damping");
    group.sample_size(20);
    for damping in [0.3f64, 0.7, 1.0] {
        let mut solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
        solver.damping = damping;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{damping:.1}")),
            &solver,
            |b, s| {
                b.iter(|| s.solve(black_box(feedback_power)).expect("converges"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cosim, bench_damping_ablation);
criterion_main!(benches);
