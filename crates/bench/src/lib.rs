//! Shared harness for the figure-regeneration binaries.
//!
//! Every `fig*` binary follows the same protocol: print the experiment
//! header, the regenerated data series as an aligned table (grep-friendly
//! TSV is one flag away: every row is also tab-separated), an ASCII
//! rendition where the paper shows a 2-D figure, and a list of **shape
//! checks** — the paper-level claims the reproduction must honour (who
//! wins, by what factor, where crossovers fall). A binary exits non-zero
//! when a shape check fails, so the whole experiment suite doubles as an
//! integration test.

pub mod check;

use std::fmt::Write as _;

/// A printable data table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns (cells also remain tab-separated).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        fmt_row(
            &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
            &widths,
            &mut out,
        );
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a float in compact engineering style.
pub fn eng(value: f64) -> String {
    if value == 0.0 {
        return "0".into();
    }
    let a = value.abs();
    if (1e-2..1e4).contains(&a) {
        format!("{value:.4}")
    } else {
        format!("{value:.3e}")
    }
}

/// ASCII heat map of a row-major `nx × ny` grid (used for the Fig. 6
/// isotherm view). Row 0 of the grid is the bottom of the plot.
pub fn heatmap(values: &[f64], nx: usize, ny: usize) -> String {
    assert_eq!(values.len(), nx * ny, "grid size mismatch");
    const SHADES: &[u8] = b" .:-=+*#%@";
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-30);
    let mut out = String::with_capacity((nx + 1) * ny);
    for iy in (0..ny).rev() {
        for ix in 0..nx {
            let t = (values[ix + nx * iy] - lo) / span;
            let idx = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    let _ = writeln!(out, "scale: ' ' = {lo:.2} .. '@' = {hi:.2}");
    out
}

/// Simple ASCII line chart of `(x, y)` samples.
pub fn line_chart(series: &[(f64, f64)], width: usize, height: usize) -> String {
    if series.is_empty() || width < 2 || height < 2 {
        return String::new();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in series {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let xs = (x1 - x0).max(1e-30);
    let ys = (y1 - y0).max(1e-30);
    let mut canvas = vec![vec![b' '; width]; height];
    for &(x, y) in series {
        let cx = (((x - x0) / xs) * (width - 1) as f64).round() as usize;
        let cy = (((y - y0) / ys) * (height - 1) as f64).round() as usize;
        canvas[height - 1 - cy][cx] = b'*';
    }
    let mut out = String::new();
    for row in canvas {
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    let _ = writeln!(out, "x: {x0:.3e} .. {x1:.3e}   y: {y0:.3e} .. {y1:.3e}");
    out
}

/// Minimal insertion-ordered JSON object writer for the `BENCH_*.json`
/// artifacts, hardened against non-finite numbers.
///
/// JSON has no literal for NaN or ±infinity, so a sentinel like
/// `f64::NEG_INFINITY` leaking out of a result type would make the whole
/// artifact unparsable. [`JsonObject::number`] therefore **rejects**
/// non-finite values: the field is emitted as `null` (keeping the file
/// valid JSON for downstream tooling) and the key is recorded in
/// [`JsonObject::offenders`], which every bench emitter turns into a
/// failing [`ShapeCheck`].
///
/// # Example
///
/// ```
/// use ptherm_bench::JsonObject;
///
/// let mut j = JsonObject::new();
/// j.string("bench", "demo")
///     .integer("blocks", 64)
///     .number("speedup", 5.7)
///     .number("broken", f64::NAN);
/// assert_eq!(j.offenders(), ["broken"]);
/// assert!(j.render().contains("\"broken\": null"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
    offenders: Vec<String>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn push(&mut self, key: &str, rendered: String) -> &mut Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a string field (the value is emitted verbatim between
    /// quotes; keys and values here are ASCII identifiers, not
    /// arbitrary text needing escapes).
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.push(key, format!("\"{value}\""))
    }

    /// Adds an integer field.
    pub fn integer(&mut self, key: &str, value: u64) -> &mut Self {
        self.push(key, value.to_string())
    }

    /// Adds a floating-point field; non-finite values become `null` and
    /// are recorded as offenders.
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        if value.is_finite() {
            self.push(key, format!("{value:e}"))
        } else {
            self.offenders.push(key.to_string());
            self.push(key, "null".to_string())
        }
    }

    /// Adds a boolean field.
    pub fn boolean(&mut self, key: &str, value: bool) -> &mut Self {
        self.push(key, value.to_string())
    }

    /// Keys whose values were non-finite and had to be nulled.
    pub fn offenders(&self) -> &[String] {
        &self.offenders
    }

    /// Renders the object with one field per line.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            let comma = if i + 1 < self.fields.len() { "," } else { "" };
            let _ = writeln!(out, "  \"{key}\": {value}{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// The standard finiteness shape check for a bench emitter: passes
    /// when every numeric field was finite.
    pub fn finiteness_check(&self) -> ShapeCheck {
        ShapeCheck::new(
            "all JSON fields are finite (artifact is valid JSON)",
            self.offenders.is_empty(),
            if self.offenders.is_empty() {
                "no non-finite values".to_string()
            } else {
                format!("nulled: {}", self.offenders.join(", "))
            },
        )
    }
}

/// One paper-level claim checked by an experiment binary.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// What is being asserted (readable sentence).
    pub claim: String,
    /// Whether the regenerated data satisfies it.
    pub pass: bool,
    /// Measured quantity backing the verdict.
    pub detail: String,
}

impl ShapeCheck {
    /// Builds a check from a claim, a verdict and supporting detail.
    pub fn new(claim: impl Into<String>, pass: bool, detail: impl Into<String>) -> Self {
        ShapeCheck {
            claim: claim.into(),
            pass,
            detail: detail.into(),
        }
    }
}

/// Prints the experiment header.
pub fn header(figure: &str, description: &str) {
    println!("================================================================");
    println!("{figure} — {description}");
    println!("================================================================");
}

/// Prints the checks and returns the process exit code (0 = all pass).
#[must_use]
pub fn report(checks: &[ShapeCheck]) -> i32 {
    println!();
    println!("shape checks:");
    let mut failed = 0;
    for c in checks {
        let verdict = if c.pass { "PASS" } else { "FAIL" };
        println!("  [{verdict}] {} ({})", c.claim, c.detail);
        if !c.pass {
            failed += 1;
        }
    }
    println!(
        "{} of {} checks passed",
        checks.len() - failed,
        checks.len()
    );
    i32::from(failed > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["n", "value"]);
        t.row(["1", "10.0"]);
        t.row(["2", "3.5"]);
        let s = t.render();
        assert!(s.contains('\t'));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_checks_arity() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn heatmap_spans_shades() {
        let grid: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let s = heatmap(&grid, 4, 4);
        assert!(s.contains('@'));
        assert!(s.lines().count() == 5);
    }

    #[test]
    fn line_chart_plots_all_points() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, (i as f64).sin())).collect();
        let s = line_chart(&pts, 40, 10);
        assert!(s.contains('*'));
    }

    #[test]
    fn report_counts_failures() {
        let checks = [
            ShapeCheck::new("a", true, "x"),
            ShapeCheck::new("b", false, "y"),
        ];
        assert_eq!(report(&checks), 1);
        assert_eq!(report(&checks[..1]), 0);
    }

    #[test]
    fn json_object_rejects_non_finite_numbers() {
        let mut j = JsonObject::new();
        j.string("bench", "t")
            .integer("n", 3)
            .number("ok", 1.5)
            .number("bad", f64::NEG_INFINITY)
            .number("worse", f64::NAN)
            .boolean("flag", true);
        assert_eq!(j.offenders(), ["bad", "worse"]);
        let s = j.render();
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("\"worse\": null"));
        assert!(s.contains("\"ok\": 1.5e0"));
        assert!(!j.finiteness_check().pass);
        assert!(JsonObject::new().finiteness_check().pass);
        // No trailing comma on the last field.
        assert!(s.trim_end().ends_with("true\n}"));
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(0.0), "0");
        assert!(eng(1234.5).starts_with("1234."));
        assert!(eng(1.2e-9).contains('e'));
    }
}
