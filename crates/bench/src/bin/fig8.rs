//! Fig. 8 — static current of nMOS stacks: the proposed model and the
//! Chen'98 baseline against the exact ("SPICE") solution, stacks N = 1..4.
//!
//! The paper's claim: both stack-aware models track SPICE, the proposed
//! model tracks it best. The exact reference here is `ptherm-spice` (full
//! KCL, same device equations). Two width assignments are swept: equal
//! widths (the paper's main case) and a mixed-width chain (harder for the
//! `V_DS ≫ V_T` baselines).

use ptherm_bench::{eng, header, report, ShapeCheck, Table};
use ptherm_core::leakage::baselines::{
    chen98_stack_current, gu96_stack_current, naive_stack_current,
};
use ptherm_core::leakage::GateLeakageModel;
use ptherm_spice::stack::Stack;
use ptherm_tech::Technology;

fn run_case(
    tech: &Technology,
    label: &str,
    widths_for: impl Fn(usize) -> Vec<f64>,
    t: f64,
    worst: &mut [f64; 3],
) {
    let model = GateLeakageModel::new(tech);
    let mut table = Table::new([
        "N",
        "exact_A",
        "proposed_A",
        "chen98_A",
        "gu96_A",
        "naive_A",
        "prop_err_%",
        "chen_err_%",
    ]);
    println!("widths: {label}");
    for n in 1..=4 {
        let widths = widths_for(n);
        let exact = Stack::off_current(tech, &widths, t).expect("stack solves");
        let proposed = model.stack_off_current(&widths, t);
        let chen = chen98_stack_current(tech, &widths, t);
        let gu = gu96_stack_current(tech, &widths, t);
        let naive = naive_stack_current(tech, &widths, t);
        let e_prop = (proposed - exact).abs() / exact;
        let e_chen = (chen - exact).abs() / exact;
        let e_naive = (naive - exact).abs() / exact;
        if n >= 2 {
            worst[0] = worst[0].max(e_prop);
            worst[1] = worst[1].max(e_chen);
            worst[2] = worst[2].max(e_naive);
        }
        table.row([
            n.to_string(),
            eng(exact),
            eng(proposed),
            eng(chen),
            gu.map(eng).unwrap_or_else(|| "n/a".into()),
            eng(naive),
            format!("{:.2}", e_prop * 100.0),
            format!("{:.2}", e_chen * 100.0),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    header(
        "Fig. 8",
        "stack leakage: proposed model and Chen'98 vs exact solution (0.12 um, 300 K)",
    );
    let tech = Technology::cmos_120nm();
    let t = 300.0;
    let mut worst = [0.0f64; 3]; // proposed, chen, naive

    run_case(&tech, "equal, W = 1 um", |n| vec![1e-6; n], t, &mut worst);
    run_case(
        &tech,
        "mixed, W_i = (1, 3, 0.5, 2) um",
        |n| [1e-6, 3e-6, 0.5e-6, 2e-6][..n].to_vec(),
        t,
        &mut worst,
    );
    // Temperature robustness: repeat equal-width case hot.
    run_case(
        &tech,
        "equal, W = 1 um, 398 K",
        |n| vec![1e-6; n],
        398.15,
        &mut worst,
    );

    let [e_prop, e_chen, e_naive] = worst;
    let checks = vec![
        ShapeCheck::new(
            "proposed model stays within 10% of the exact stack current",
            e_prop < 0.10,
            format!("worst error {:.2}%", e_prop * 100.0),
        ),
        ShapeCheck::new(
            "proposed model beats the Chen'98 baseline",
            e_prop < e_chen,
            format!("{:.2}% vs {:.2}%", e_prop * 100.0, e_chen * 100.0),
        ),
        ShapeCheck::new(
            "ignoring the stack effect is catastrophically wrong",
            e_naive > 1.0,
            format!("naive worst error {:.0}%", e_naive * 100.0),
        ),
    ];
    std::process::exit(report(&checks));
}
