//! High-resolution thermal map bench: FFT convolution vs the direct
//! `O(N²)` oracle, cross-validated against the dense operator.
//!
//! Three audits back the map engine's claims (`docs/PERFORMANCE.md`):
//!
//! 1. **speed** — rendering an `nx × ny` map through the FFT path must
//!    beat the direct convolution of the *same* kernels by the
//!    documented factor (≥ 10× at 128×128 in full mode; the quick CI
//!    shape keeps a ≥ 2× floor at 64×64),
//! 2. **FFT exactness** — FFT and direct evaluations of one kernel set
//!    differ only by transform rounding: max |ΔT| ≤ 1e-9 K,
//! 3. **physics exactness** — on a floorplan whose blocks coincide with
//!    the grid tiles, the map reproduces the dense
//!    [`ThermalOperator`]'s truncated image sum term for term:
//!    block-centre agreement ≤ 1e-6 K.
//!
//! Emits `BENCH_map.json` (`BENCH_map.quick.json` with `--quick`;
//! override the path with `BENCH_MAP_JSON`), gated in CI by
//! `benchcheck` against `ci/bench_bounds.quick.json`.

use ptherm_bench::{header, heatmap, report, JsonObject, ShapeCheck, Table};
use ptherm_core::cosim::{ScenarioGrid, SweepEngine, ThermalOperator};
use ptherm_core::thermal::map::{MapOperator, MapWorkspace};
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use ptherm_tech::Technology;
use std::time::Instant;

struct BenchConfig {
    tile_rows: usize,
    tile_cols: usize,
    grid_nx: usize,
    grid_ny: usize,
    dense_n: usize,
    speedup_bar: f64,
    label: &'static str,
}

/// The coincident-grid configuration: blocks ARE the tiles of an
/// `n × n` grid (see [`generator::tile_aligned`]), with deterministic
/// non-uniform powers.
fn tile_aligned_floorplan(n: usize) -> Floorplan {
    generator::tile_aligned(ChipGeometry::paper_1mm(), n, n, |i| {
        0.002 + 0.0015 * ((i * 5) % 11) as f64
    })
    .expect("aligned tiling is valid")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        BenchConfig {
            tile_rows: 4,
            tile_cols: 4,
            grid_nx: 64,
            grid_ny: 64,
            dense_n: 8,
            speedup_bar: 2.0,
            label: "quick (CI smoke): 16 blocks on a 64x64 map",
        }
    } else {
        BenchConfig {
            tile_rows: 8,
            tile_cols: 8,
            grid_nx: 128,
            grid_ny: 128,
            dense_n: 16,
            speedup_bar: 10.0,
            label: "64 blocks on a 128x128 map",
        }
    };
    let threads = ptherm_par::default_threads();
    header(
        "Map",
        &format!(
            "FFT thermal maps vs direct convolution, {} ({} threads)",
            cfg.label, threads
        ),
    );

    let floorplan = generator::tiled(
        ChipGeometry::paper_1mm(),
        cfg.tile_rows,
        cfg.tile_cols,
        0.005,
        0.02,
        42,
    )
    .expect("valid tiling");

    // --- kernel build: serial vs threaded (bit-identical) ----------------
    let t0 = Instant::now();
    let op_serial =
        MapOperator::with_image_orders_threaded(&floorplan, cfg.grid_nx, cfg.grid_ny, 2, 9, 1);
    let build_serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let map_op = MapOperator::with_image_orders_threaded(
        &floorplan,
        cfg.grid_nx,
        cfg.grid_ny,
        2,
        9,
        threads,
    );
    let build_threaded_s = t0.elapsed().as_secs_f64();
    let mut ws = MapWorkspace::new();
    let probe: Vec<f64> = floorplan.blocks().iter().map(|b| b.power).collect();
    let mut a = vec![0.0; map_op.tiles()];
    let mut b = vec![0.0; map_op.tiles()];
    op_serial.rise_map_into(&probe, &mut ws, &mut a);
    map_op.rise_map_into(&probe, &mut ws, &mut b);
    let build_bit_identical = a == b;

    // --- the leakage-closed sweep: Picard on the batched engine, then a
    // map per converged scenario --------------------------------------
    let engine = SweepEngine::new(floorplan.clone()).threads(threads);
    let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()])
        .vdd_scales(vec![0.95, 1.0, 1.05])
        .activities(vec![0.5, 1.0]);
    let model = engine.uniform_tech_power(0.3, 0.03).prepared_for(&grid);
    let map_report = engine.run_map_with(&grid, &model, &map_op);
    let converged = map_report.converged_count();
    let map_peak_k = map_report.max_map_temperature().unwrap_or(f64::NAN);
    // The map report carries each scenario's block-level outcome, so the
    // block peak needs no second sweep.
    let block_peak_k = map_report
        .outcomes
        .iter()
        .filter_map(|o| o.outcome.peak_temperature())
        .fold(f64::NAN, f64::max);

    // --- FFT vs direct: same kernels, same power vector -----------------
    // Render timing is best-of-N on one representative power vector (the
    // first converged scenario's), identical work per run.
    let powers = map_report
        .outcomes
        .iter()
        .find_map(|o| match &o.outcome {
            ptherm_core::cosim::SweepOutcome::Converged { block_powers, .. } => {
                Some(block_powers.clone())
            }
            _ => None,
        })
        .unwrap_or(probe);
    const TIMED_RUNS: usize = 3;
    let mut fft_map = vec![0.0; map_op.tiles()];
    let mut fft_s = f64::INFINITY;
    for _ in 0..TIMED_RUNS {
        let t0 = Instant::now();
        map_op.rise_map_into(&powers, &mut ws, &mut fft_map);
        fft_s = fft_s.min(t0.elapsed().as_secs_f64());
    }
    let mut direct_map = vec![0.0; map_op.tiles()];
    let mut direct_s = f64::INFINITY;
    for _ in 0..TIMED_RUNS.min(2) {
        let t0 = Instant::now();
        map_op.rise_map_direct(&powers, &mut ws, &mut direct_map);
        direct_s = direct_s.min(t0.elapsed().as_secs_f64());
    }
    let speedup = direct_s / fft_s;
    let fft_vs_direct_gap = fft_map
        .iter()
        .zip(&direct_map)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);

    // --- dense cross-validation on a coincident grid ---------------------
    let aligned = tile_aligned_floorplan(cfg.dense_n);
    let aligned_powers: Vec<f64> = aligned.blocks().iter().map(|b| b.power).collect();
    let aligned_map_op = MapOperator::with_image_orders(&aligned, cfg.dense_n, cfg.dense_n, 2, 9);
    let dense = ThermalOperator::with_image_orders(&aligned, 2, 9);
    let mut aligned_map = vec![0.0; aligned_map_op.tiles()];
    aligned_map_op.rise_map_into(&aligned_powers, &mut ws, &mut aligned_map);
    let mut dense_rises = vec![0.0; aligned_powers.len()];
    dense.temperature_rises_into(&aligned_powers, &mut dense_rises);
    let dense_gap = aligned
        .blocks()
        .iter()
        .zip(&dense_rises)
        .map(|(block, &r)| (aligned_map[aligned_map_op.tile_of(block.cx, block.cy)] - r).abs())
        .fold(0.0f64, f64::max);

    // --- report -----------------------------------------------------------
    let mut out = Table::new(["path", "wall_s", "maps_per_s", "speedup"]);
    out.row([
        format!("direct convolution ({}x{})", cfg.grid_nx, cfg.grid_ny),
        format!("{direct_s:.4}"),
        format!("{:.2}", 1.0 / direct_s),
        "1.0".into(),
    ]);
    out.row([
        "FFT convolution".into(),
        format!("{fft_s:.4}"),
        format!("{:.2}", 1.0 / fft_s),
        format!("{speedup:.1}"),
    ]);
    println!("{}", out.render());
    println!(
        "kernel build: {build_serial_s:.3} s serial, {build_threaded_s:.3} s on {threads} threads"
    );
    println!(
        "sweep: {converged}/{} scenarios converged, map peak {map_peak_k:.2} K (block-level {block_peak_k:.2} K)",
        map_report.len()
    );
    println!();
    let coarse = 48.min(cfg.grid_nx).min(cfg.grid_ny);
    // Scale indices per sample (not a truncated constant stride) so the
    // preview spans the whole map even when coarse does not divide it.
    let preview: Vec<f64> = (0..coarse * coarse)
        .map(|i| {
            let ix = (i % coarse) * cfg.grid_nx / coarse;
            let iy = (i / coarse) * cfg.grid_ny / coarse;
            fft_map[ix + cfg.grid_nx * iy]
        })
        .collect();
    println!("{}", heatmap(&preview, coarse, coarse));

    // --- BENCH_map.json ---------------------------------------------------
    let mut json = JsonObject::new();
    json.string("bench", "map")
        .string("mode", if quick { "quick" } else { "full" })
        .integer("blocks", floorplan.blocks().len() as u64)
        .integer("grid_nx", cfg.grid_nx as u64)
        .integer("grid_ny", cfg.grid_ny as u64)
        .integer("scenarios", map_report.len() as u64)
        .integer("converged", converged as u64)
        .integer("threads", threads as u64)
        .number("build_serial_s", build_serial_s)
        .number("build_threaded_s", build_threaded_s)
        .number("fft_map_s", fft_s)
        .number("direct_map_s", direct_s)
        .number("fft_maps_per_s", 1.0 / fft_s)
        .number("speedup_fft_vs_direct", speedup)
        .number("max_gap_fft_vs_direct_k", fft_vs_direct_gap)
        .integer("dense_grid_n", cfg.dense_n as u64)
        .number("max_gap_block_center_vs_dense_k", dense_gap)
        .number("map_peak_k", map_peak_k)
        .number("block_peak_k", block_peak_k);
    let default_path = if quick {
        "BENCH_map.quick.json"
    } else {
        "BENCH_map.json"
    };
    let json_path = std::env::var("BENCH_MAP_JSON").unwrap_or_else(|_| default_path.into());
    match std::fs::write(&json_path, json.render()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    let rise = (block_peak_k - 300.0).abs().max(1e-9);
    let checks = vec![
        json.finiteness_check(),
        ShapeCheck::new(
            "every scenario of the map sweep converges and renders a map",
            converged == map_report.len()
                && map_report
                    .outcomes
                    .iter()
                    .all(|o| o.map_k.as_ref().is_some_and(|m| m.len() == map_op.tiles())),
            format!("{converged}/{} converged", map_report.len()),
        ),
        ShapeCheck::new(
            format!(
                "FFT map >= {}x the direct O(N^2) convolution at {}x{}",
                cfg.speedup_bar, cfg.grid_nx, cfg.grid_ny
            ),
            speedup >= cfg.speedup_bar,
            format!(
                "{:.4} s direct vs {:.5} s FFT ({speedup:.1}x)",
                direct_s, fft_s
            ),
        ),
        ShapeCheck::new(
            "FFT and direct convolution agree to <= 1e-9 K",
            fft_vs_direct_gap <= 1e-9,
            format!("max |dT| = {fft_vs_direct_gap:.2e} K"),
        ),
        ShapeCheck::new(
            "block centres match the dense operator on a coincident grid to <= 1e-6 K",
            dense_gap <= 1e-6,
            format!(
                "max |dT| = {dense_gap:.2e} K over {} tiles",
                cfg.dense_n * cfg.dense_n
            ),
        ),
        ShapeCheck::new(
            "threaded kernel build is bit-identical to serial",
            build_bit_identical,
            format!("{threads} threads vs 1"),
        ),
        ShapeCheck::new(
            "spatial peak is consistent with the block-level peak (<= 5% of rise)",
            (map_peak_k - block_peak_k).abs() <= 0.05 * rise,
            format!("map {map_peak_k:.3} K vs blocks {block_peak_k:.3} K"),
        ),
    ];
    std::process::exit(report(&checks));
}
