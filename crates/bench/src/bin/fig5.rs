//! Fig. 5 — thermal profile of a single transistor: the analytical
//! approximation (Eq. 20) against the exact solution of Eq. (17).
//!
//! The paper's example: a W = 1 µm, L = 0.1 µm device dissipating 10 mW on
//! a semi-infinite substrate. The exact profile is the corner-term closed
//! form of the Eq. (17) surface integral (`ptherm-thermal-num`), itself
//! cross-checked against adaptive quadrature in that crate's tests.

use ptherm_bench::{eng, header, line_chart, report, ShapeCheck, Table};
use ptherm_core::thermal::rect::{center_rise, rect_rise};
use ptherm_thermal_num::rect_surface_temperature;

fn main() {
    header(
        "Fig. 5",
        "single-transistor profile: Eq. 20 (min of Eq. 18/19) vs exact Eq. 17",
    );
    let (w, l, p, k) = (1e-6, 0.1e-6, 10e-3, 148.0);

    let mut table = Table::new(["x_um", "exact_K", "model_K", "err_%"]);
    let mut series_model = Vec::new();
    let mut worst_far: f64 = 0.0;
    let mut worst_near: f64 = 0.0;
    // Scan along the wide axis from the source centre outward.
    for i in 0..40 {
        let x = 0.25e-6 * i as f64;
        let exact = rect_surface_temperature(p, k, w, l, x, 0.0);
        let model = rect_rise(p, k, w, l, x, 0.0);
        let rel = (model - exact).abs() / exact;
        if x > 1.5 * w {
            worst_far = worst_far.max(rel);
        } else {
            worst_near = worst_near.max(rel);
        }
        series_model.push((x * 1e6, model));
        if i % 2 == 0 {
            table.row([
                format!("{:.2}", x * 1e6),
                eng(exact),
                eng(model),
                format!("{:.2}", rel * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!("model profile T(x):");
    println!("{}", line_chart(&series_model, 60, 12));

    let t0 = center_rise(p, k, w, l);
    let exact0 = rect_surface_temperature(p, k, w, l, 0.0, 0.0);
    let checks = vec![
        ShapeCheck::new(
            "Eq. 18 equals the exact centre temperature (it is exact there)",
            (t0 - exact0).abs() / exact0 < 1e-12,
            format!("T0 = {t0:.2} K rise"),
        ),
        ShapeCheck::new(
            "far field (|x| > 1.5 W) within 5% of the exact profile",
            worst_far < 0.05,
            format!("worst {:.2}%", worst_far * 100.0),
        ),
        ShapeCheck::new(
            "near field capped by Eq. 18: bounded (if large) error at the source edge",
            worst_near < 1.0,
            format!(
                "worst {:.0}% right at the source edge, where the cap flattens the \
                 profile — visible in the paper's own Fig. 5",
                worst_near * 100.0
            ),
        ),
        ShapeCheck::new(
            "peak rise is tens of kelvin for 10 mW (paper's example scale)",
            t0 > 10.0 && t0 < 200.0,
            format!("{t0:.1} K"),
        ),
    ];
    std::process::exit(report(&checks));
}
