//! Ablation studies for the design choices called out in DESIGN.md §7:
//!
//! 1. image configuration (lateral order × depth order) — accuracy vs the
//!    FDM reference and evaluation cost,
//! 2. Eq. 20 `min(T0, T_line)` vs the exact corner-term rectangle
//!    evaluation — accuracy/speed trade,
//! 3. node-drop formula inside the chain collapse — empirical Eq. 10 vs
//!    its case (a)/(b) asymptotes,
//! 4. fixed-point damping — iterations to convergence vs feedback gain.

use ptherm_bench::{header, report, ShapeCheck, Table};
use ptherm_core::cosim::{ElectroThermalSolver, Workspace};
use ptherm_core::leakage::{CollapseParams, GateLeakageModel};
use ptherm_core::thermal::rect::rect_rise;
use ptherm_core::thermal::ThermalModel;
use ptherm_floorplan::Floorplan;
use ptherm_spice::stack::Stack;
use ptherm_tech::constants::thermal_voltage;
use ptherm_tech::{Polarity, Technology};
use ptherm_thermal_num::{rect_surface_temperature, FdmSolver};
use std::time::Instant;

fn main() {
    header("Ablations", "design-choice studies behind the reproduction");
    let mut checks = Vec::new();

    // ---- 1. image configuration --------------------------------------
    let fp = Floorplan::paper_three_blocks();
    let g = *fp.geometry();
    let fdm = FdmSolver {
        die_w: g.width,
        die_l: g.length,
        thickness: g.thickness,
        k: g.conductivity,
        sink_temperature: g.sink_temperature,
        nx: 24,
        ny: 24,
        nz: 16,
    };
    let reference = fdm.solve(&fp.power_map(24, 24)).expect("fdm solves");
    let ref_rises: Vec<f64> = fp
        .blocks()
        .iter()
        .map(|b| reference.surface_at(b.cx, b.cy) - g.sink_temperature)
        .collect();

    let mut image_table = Table::new(["lateral", "z", "mean_err_%", "ns_per_query"]);
    let mut err_paper = 0.0;
    let mut err_best = f64::INFINITY;
    for (lat, z) in [(0usize, 1usize), (1, 1), (2, 1), (2, 3), (2, 9), (3, 9)] {
        let model = ThermalModel::with_image_orders(&fp, lat, z);
        let rises: Vec<f64> = fp
            .blocks()
            .iter()
            .map(|b| model.temperature_rise(b.cx, b.cy))
            .collect();
        let err = rises
            .iter()
            .zip(&ref_rises)
            .map(|(a, r)| (a - r).abs() / r)
            .sum::<f64>()
            / rises.len() as f64;
        let start = Instant::now();
        let reps = 2000;
        for _ in 0..reps {
            std::hint::black_box(model.temperature(0.4e-3, 0.6e-3));
        }
        let ns = start.elapsed().as_nanos() as f64 / reps as f64;
        if (lat, z) == (2, 1) {
            err_paper = err;
        }
        err_best = err_best.min(err);
        image_table.row([
            lat.to_string(),
            z.to_string(),
            format!("{:.1}", err * 100.0),
            format!("{ns:.0}"),
        ]);
    }
    println!("image configuration vs FDM (block-centre rises):");
    println!("{}", image_table.render());
    checks.push(ShapeCheck::new(
        "deeper image series beats the paper configuration",
        err_best < err_paper,
        format!(
            "best {:.1}% vs paper {:.1}%",
            err_best * 100.0,
            err_paper * 100.0
        ),
    ));

    // ---- 2. Eq. 20 vs exact corner evaluation -------------------------
    let (w, l, p) = (1e-6, 0.1e-6, 10e-3);
    let points: Vec<(f64, f64)> = (1..200)
        .map(|i| (i as f64 * 0.05e-6, (i % 7) as f64 * 0.2e-6))
        .collect();
    let t0 = Instant::now();
    let mut acc = 0.0;
    for &(x, y) in &points {
        acc += rect_rise(p, 148.0, w, l, x, y);
    }
    let t_eq20 = t0.elapsed().as_nanos() as f64 / points.len() as f64;
    let t1 = Instant::now();
    let mut acc2 = 0.0;
    for &(x, y) in &points {
        acc2 += rect_surface_temperature(p, 148.0, w, l, x, y);
    }
    let t_corner = t1.elapsed().as_nanos() as f64 / points.len() as f64;
    let mean_gap = (acc - acc2).abs() / acc2;
    println!(
        "Eq. 20 vs exact corner form: {t_eq20:.0} ns vs {t_corner:.0} ns per eval, \
         mean-field gap {:.1}%",
        mean_gap * 100.0
    );
    checks.push(ShapeCheck::new(
        "Eq. 20 and the exact corner form agree in the aggregate field",
        mean_gap < 0.10,
        format!("{:.1}%", mean_gap * 100.0),
    ));

    // ---- 3. node-drop formula inside the chain collapse ---------------
    let tech = Technology::cmos_120nm();
    let params = CollapseParams::from_mos(&tech.nmos, tech.vdd);
    let model = GateLeakageModel::new(&tech);
    let vt = thermal_voltage(300.0);
    let variant_current = |case: &str, widths: &[f64]| -> f64 {
        let mut w_eq = *widths.last().expect("non-empty");
        for &w_below in widths[..widths.len() - 1].iter().rev() {
            let x = match case {
                "a" => params.delta_v_case_a(w_eq, w_below, 300.0),
                "b" => params.delta_v_case_b(w_eq, w_below, 300.0),
                _ => params.delta_v(w_eq, w_below, 300.0),
            };
            w_eq *= (-(1.0 + params.gamma_b + params.sigma) * x / (params.n * vt)).exp();
        }
        model.equivalent_off_current(w_eq, Polarity::Nmos, 300.0)
    };
    let mut collapse_table =
        Table::new(["N", "exact_A", "eq10_err_%", "caseA_err_%", "caseB_err_%"]);
    let mut worst = [0.0f64; 3];
    for n in 2..=5 {
        let widths = vec![1e-6; n];
        let exact = Stack::off_current(&tech, &widths, 300.0).expect("solves");
        let errs: Vec<f64> = ["10", "a", "b"]
            .iter()
            .map(|c| (variant_current(c, &widths) - exact).abs() / exact)
            .collect();
        for (w, e) in worst.iter_mut().zip(&errs) {
            *w = w.max(*e);
        }
        collapse_table.row([
            n.to_string(),
            format!("{exact:.3e}"),
            format!("{:.2}", errs[0] * 100.0),
            format!("{:.2}", errs[1] * 100.0),
            format!("{:.2}", errs[2] * 100.0),
        ]);
    }
    println!("chain collapse with different node-drop formulas:");
    println!("{}", collapse_table.render());
    checks.push(ShapeCheck::new(
        "the empirical Eq. 10 beats both of its asymptotes inside the chain",
        worst[0] < worst[1] && worst[0] < worst[2],
        format!(
            "eq10 {:.1}% vs caseA {:.1}% vs caseB {:.1}%",
            worst[0] * 100.0,
            worst[1] * 100.0,
            worst[2] * 100.0
        ),
    ));

    // ---- 4. damping ----------------------------------------------------
    // One thermal operator serves the whole sweep: damping only changes
    // the iteration, not the influence matrix.
    let solver_proto = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
    let op = solver_proto.operator();
    let mut ws = Workspace::new();
    let mut damping_table = Table::new(["damping", "iterations", "peak_K"]);
    let mut iters = Vec::new();
    for damping in [0.3, 0.5, 0.7, 1.0] {
        let mut solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
        solver.damping = damping;
        solver
            .solve_with(&op, &mut ws, |_, t| {
                0.25 + 0.05 * ((t - 300.0) / 20.0).exp2()
            })
            .expect("stable case converges");
        iters.push(ws.iterations());
        damping_table.row([
            format!("{damping:.1}"),
            ws.iterations().to_string(),
            format!("{:.3}", ws.peak_temperature()),
        ]);
    }
    println!("fixed-point damping:");
    println!("{}", damping_table.render());
    checks.push(ShapeCheck::new(
        "light damping costs iterations; all dampings agree on the answer",
        iters[0] > iters[3],
        format!("{iters:?}"),
    ));

    std::process::exit(report(&checks));
}
