//! Fig. 3 — drain-source voltage of the lower device of a 2-stack:
//! the empirical Eq. (10) against the exact solution.
//!
//! The paper plots `V_{N−1} − V_{N−2}` for a two-transistor stack in the
//! 0.12 µm technology and shows Eq. (10) hugging the exact curve across
//! the width-ratio range. Here the "exact" curve is the full KCL solve of
//! `ptherm-spice` (same device equations, no approximation), and the two
//! asymptotic cases (Eqs. 7 and 8) are printed alongside to show where
//! each one fails.

use ptherm_bench::{eng, header, line_chart, report, ShapeCheck, Table};
use ptherm_core::leakage::CollapseParams;
use ptherm_spice::stack::Stack;
use ptherm_tech::Technology;

fn main() {
    header(
        "Fig. 3",
        "node voltage of a 2-stack: empirical Eq. (10) vs exact solution (0.12 um)",
    );

    let tech = Technology::cmos_120nm();
    let params = CollapseParams::from_mos(&tech.nmos, tech.vdd);
    let t = 300.0;
    let w_bot = 1e-6;

    let mut table = Table::new([
        "W_top/W_bot",
        "exact_mV",
        "eq10_mV",
        "caseA_mV",
        "caseB_mV",
        "eq10_err_%",
    ]);
    let mut worst_rel: f64 = 0.0;
    let mut series = Vec::new();
    let mut case_a_fails_small = false;
    let mut case_b_fails_large = false;

    for k in -12..=12 {
        let ratio = 2f64.powf(k as f64 / 2.0);
        let w_top = w_bot * ratio;
        let exact = Stack::all_off(&tech, &[w_bot, w_top])
            .solve(t)
            .expect("2-stack solves")
            .node_voltages[0];
        let eq10 = params.delta_v(w_top, w_bot, t);
        let case_a = params.delta_v_case_a(w_top, w_bot, t);
        let case_b = params.delta_v_case_b(w_top, w_bot, t);
        let rel = (eq10 - exact).abs() / exact;
        worst_rel = worst_rel.max(rel);
        series.push((ratio.log2(), eq10 * 1e3));
        if k <= -8 && (case_a - exact).abs() / exact > 0.25 {
            case_a_fails_small = true;
        }
        if k >= 8 && (case_b - exact).abs() / exact > 0.25 {
            case_b_fails_large = true;
        }
        table.row([
            eng(ratio),
            eng(exact * 1e3),
            eng(eq10 * 1e3),
            eng(case_a * 1e3),
            eng(case_b * 1e3),
            format!("{:.2}", rel * 100.0),
        ]);
    }

    println!("{}", table.render());
    println!("Eq. 10 node drop vs log2(width ratio):");
    println!("{}", line_chart(&series, 50, 12));

    let checks = vec![
        ShapeCheck::new(
            "Eq. (10) tracks the exact node voltage across 4+ decades of width ratio",
            worst_rel < 0.05,
            format!("max relative error {:.2}%", worst_rel * 100.0),
        ),
        ShapeCheck::new(
            "case (a) (VDS >> VT) breaks down at small width ratios",
            case_a_fails_small,
            "as the paper argues for the empirical bridge",
        ),
        ShapeCheck::new(
            "case (b) (VDS < VT) breaks down at large width ratios",
            case_b_fails_large,
            "as the paper argues for the empirical bridge",
        ),
    ];
    std::process::exit(report(&checks));
}
