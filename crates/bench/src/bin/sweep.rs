//! Sweep-engine throughput: batched electro-thermal co-simulation with a
//! precomputed thermal operator vs per-scenario cold solves.
//!
//! The production question behind the paper's "fast" claim: estimating
//! one operating point in microseconds is only useful if whole design
//! sweeps — supply × activity × ambient × technology node — stay cheap.
//! The thermal influence operator is fixed per floorplan, so the batched
//! engine computes it once and reuses it for every scenario; the cold
//! baseline rebuilds the full image-expansion thermal model inside every
//! Picard iteration of every scenario, which is what the pre-engine
//! per-figure loops did.
//!
//! Measured on an 8-block floorplan × 1000-scenario grid:
//!
//! 1. cold solves ([`ElectroThermalSolver::solve_rebuilding`]), sequential,
//! 2. batched engine, **1 thread** — isolates the operator-reuse win,
//! 3. batched engine, all threads — adds the parallel fan-out,
//!
//! plus an exactness audit: batched outcomes must equal one-shot
//! operator-path solves **bit for bit**, and agree with the cold
//! reference to rounding error.

use ptherm_bench::{header, report, ShapeCheck, Table};
use ptherm_core::cosim::sweep::{ScenarioGrid, ScenarioPowerModel, SweepEngine, SweepOutcome};
use ptherm_core::cosim::{ElectroThermalSolver, Workspace};
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use ptherm_tech::ScalingTable;
use std::time::Instant;

fn main() {
    header(
        "Sweep",
        "batched operator-reuse engine vs per-scenario cold solves, 8 blocks x 1000 scenarios",
    );

    // 8-block floorplan (2 x 4 tiling of the paper's 1 mm die).
    let floorplan =
        generator::tiled(ChipGeometry::paper_1mm(), 2, 4, 0.0, 0.0, 11).expect("valid tiling");
    assert_eq!(floorplan.blocks().len(), 8);

    // 1000 scenarios: 4 nodes x 5 ambients x 10 activities x 5 Vdd scales,
    // nodes drawn from the embedded ITRS-like scaling table.
    let table = ScalingTable::itrs_like();
    let technologies: Vec<_> = table
        .nodes
        .iter()
        .filter(|n| n.node <= 0.18e-6)
        .take(4)
        .map(|n| n.technology())
        .collect();
    assert_eq!(technologies.len(), 4);
    let grid = ScenarioGrid::new(technologies)
        .vdd_scales(vec![0.8, 0.9, 1.0, 1.1, 1.2])
        .activities((1..=10).map(|i| 0.1 * i as f64).collect())
        .ambients_k(vec![280.0, 300.0, 320.0, 340.0, 360.0]);
    assert_eq!(grid.len(), 1000);

    let engine = SweepEngine::new(floorplan.clone());
    let model = engine.uniform_tech_power(0.45, 0.04).prepared_for(&grid);

    // --- cold baseline: rebuild the thermal model every iteration -------
    // Timed on a 50-scenario sample (identical physics, just slow) and
    // reported as extrapolated per-scenario throughput.
    let scenarios = grid.scenarios(engine.operator().sink_temperature());
    let techs = grid.technologies();
    let sample = 50;
    let t0 = Instant::now();
    let mut cold_results = Vec::with_capacity(sample);
    for scenario in scenarios
        .iter()
        .step_by(scenarios.len() / sample)
        .take(sample)
    {
        let mut plan = floorplan.clone();
        // Ambient is a floorplan property for the cold path.
        let g = ptherm_floorplan::ChipGeometry {
            sink_temperature: scenario.ambient_k,
            ..*plan.geometry()
        };
        plan = Floorplan::new(g, plan.blocks().to_vec()).expect("same blocks");
        let solver = ElectroThermalSolver::new(plan);
        let r = solver.solve_rebuilding(|b, t| {
            model.block_power(scenario, &techs[scenario.tech_index], b, t)
        });
        cold_results.push((scenario.clone(), r));
    }
    let cold_per_scenario = t0.elapsed().as_secs_f64() / sample as f64;
    let cold_throughput = 1.0 / cold_per_scenario;

    // --- batched engine, 1 thread: operator reuse only ------------------
    let engine1 = SweepEngine::new(floorplan.clone()).threads(1);
    let t1 = Instant::now();
    let report1 = engine1.run(&grid, &model);
    let batched1_s = t1.elapsed().as_secs_f64();
    let batched1_throughput = grid.len() as f64 / batched1_s;

    // --- batched engine, all threads ------------------------------------
    let threads = ptherm_par::default_threads();
    let engine_n = SweepEngine::new(floorplan.clone()).threads(threads);
    let tn = Instant::now();
    let report_n = engine_n.run(&grid, &model);
    let batched_n_s = tn.elapsed().as_secs_f64();
    let batched_n_throughput = grid.len() as f64 / batched_n_s;

    let mut out = Table::new([
        "configuration",
        "scenarios",
        "wall_s",
        "scenarios_per_s",
        "speedup_vs_cold",
    ]);
    out.row([
        "cold (rebuild/iter, 1 thread)".into(),
        format!("{sample} (sampled)"),
        format!("{:.3}", cold_per_scenario * sample as f64),
        format!("{cold_throughput:.1}"),
        "1.0".into(),
    ]);
    out.row([
        "batched operator, 1 thread".into(),
        grid.len().to_string(),
        format!("{batched1_s:.3}"),
        format!("{batched1_throughput:.1}"),
        format!("{:.1}", batched1_throughput / cold_throughput),
    ]);
    out.row([
        format!("batched operator, {threads} threads"),
        grid.len().to_string(),
        format!("{batched_n_s:.3}"),
        format!("{batched_n_throughput:.1}"),
        format!("{:.1}", batched_n_throughput / cold_throughput),
    ]);
    println!("{}", out.render());
    println!(
        "sweep outcome: {report_n} (peak {:.1} K)",
        report_n.max_peak_temperature().unwrap_or(f64::NAN)
    );

    // --- exactness audits ------------------------------------------------
    // 1. batched vs one-shot operator path: bit-identical.
    let mut bit_identical = true;
    for (scenario, outcome) in scenarios.iter().zip(&report_n.outcomes).step_by(97) {
        let mut plan = floorplan.clone();
        let g = ptherm_floorplan::ChipGeometry {
            sink_temperature: scenario.ambient_k,
            ..*plan.geometry()
        };
        plan = Floorplan::new(g, plan.blocks().to_vec()).expect("same blocks");
        let solver = ElectroThermalSolver::new(plan);
        let op = solver.operator();
        let mut ws = Workspace::new();
        let solve = solver.solve_with_ambient(&op, scenario.ambient_k, &mut ws, |b, t| {
            model.block_power(scenario, &techs[scenario.tech_index], b, t)
        });
        match (solve, outcome) {
            (
                Ok(()),
                SweepOutcome::Converged {
                    block_temperatures, ..
                },
            ) => {
                if ws.temperatures() != block_temperatures.as_slice() {
                    bit_identical = false;
                }
            }
            (Err(_), SweepOutcome::Converged { .. }) | (Ok(()), _) => bit_identical = false,
            (Err(_), _) => {}
        }
    }

    // 2. batched vs cold reference: rounding error only.
    let mut max_gap: f64 = 0.0;
    for (scenario, cold) in &cold_results {
        let idx = scenarios
            .iter()
            .position(|s| s == scenario)
            .expect("sampled from the grid");
        if let (
            Ok(cold),
            SweepOutcome::Converged {
                block_temperatures, ..
            },
        ) = (cold, &report_n.outcomes[idx])
        {
            for (a, b) in cold.block_temperatures.iter().zip(block_temperatures) {
                max_gap = max_gap.max((a - b).abs());
            }
        }
    }

    // Consistency: 1-thread and n-thread sweeps must agree exactly.
    let threads_agree = report1.outcomes == report_n.outcomes;

    let checks = vec![
        ShapeCheck::new(
            "every scenario resolves (converged or detected runaway)",
            report_n.outcomes.iter().all(|o| {
                !matches!(
                    o,
                    SweepOutcome::BadPower { .. } | SweepOutcome::NotConverged { .. }
                )
            }),
            format!("{report_n}"),
        ),
        ShapeCheck::new(
            "batched engine beats cold solves by >= 4x throughput",
            batched_n_throughput >= 4.0 * cold_throughput,
            format!(
                "{batched_n_throughput:.1} vs {cold_throughput:.1} scenarios/s ({:.0}x)",
                batched_n_throughput / cold_throughput
            ),
        ),
        ShapeCheck::new(
            "operator reuse alone beats cold solves (1 thread vs 1 thread)",
            batched1_throughput > cold_throughput,
            format!(
                "{batched1_throughput:.1} vs {cold_throughput:.1} scenarios/s ({:.0}x)",
                batched1_throughput / cold_throughput
            ),
        ),
        ShapeCheck::new(
            "batched results are bit-identical to one-shot operator solves",
            bit_identical,
            "sampled every 97th scenario",
        ),
        ShapeCheck::new(
            "batched results match the rebuilding reference to rounding error",
            max_gap < 1e-6,
            format!("max block-temperature gap {max_gap:.2e} K"),
        ),
        ShapeCheck::new(
            "thread count does not change results",
            threads_agree,
            format!("1 vs {threads} threads"),
        ),
    ];
    std::process::exit(report(&checks));
}
