//! Sweep-engine throughput: the GEMM-batched Picard hot path against the
//! per-scenario operator engine and the cold rebuild-everything baseline,
//! with a machine-readable `BENCH_sweep.json` for the perf trajectory.
//!
//! Three generations of the same physics:
//!
//! 1. **cold** — [`ElectroThermalSolver::solve_rebuilding`] rebuilds the
//!    full image-expansion thermal model inside every Picard iteration
//!    (what the pre-engine per-figure loops did); timed on a sample,
//!    reported as extrapolated throughput,
//! 2. **per-scenario engine** — the PR 1 design: one precomputed
//!    [`ThermalOperator`], scenarios solved one at a time
//!    ([`SweepEngine::run_per_scenario`], kept as the exact oracle),
//! 3. **batched engine** — [`SweepEngine::run`]: B scenarios per Picard
//!    step through one `n×n · n×B` product, lane refill, batched
//!    exponentials.
//!
//! Audits: batched outcomes must match the per-scenario oracle within the
//! ULP contract of `ptherm_core::cosim::batch` (same iteration counts,
//! ~1e-9 K), and the oracle must match the cold reference to rounding
//! error. `--quick` shrinks the workload for CI smoke runs and writes
//! `BENCH_sweep.quick.json` so it never clobbers the checked-in
//! full-mode `BENCH_sweep.json` baseline (schema in
//! `docs/PERFORMANCE.md`; override either path with `BENCH_SWEEP_JSON`).

use ptherm_bench::{header, report, JsonObject, ShapeCheck, Table};
use ptherm_core::cosim::sweep::{ScenarioGrid, ScenarioPowerModel, SweepEngine, SweepOutcome};
use ptherm_core::cosim::{ElectroThermalSolver, ThermalOperator};
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use ptherm_tech::ScalingTable;
use std::time::Instant;

struct Config {
    tile_rows: usize,
    tile_cols: usize,
    ambients: usize,
    cold_samples: usize,
    label: &'static str,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Config {
            tile_rows: 2,
            tile_cols: 4,
            ambients: 5,
            cold_samples: 8,
            label: "quick (CI smoke): 8 blocks x 1000 scenarios",
        }
    } else {
        Config {
            tile_rows: 8,
            tile_cols: 8,
            ambients: 50,
            cold_samples: 4,
            label: "64 blocks x 10000 scenarios",
        }
    };
    header(
        "Sweep",
        &format!(
            "GEMM-batched engine vs per-scenario engine vs cold rebuilds, {}",
            cfg.label
        ),
    );

    let floorplan = generator::tiled(
        ChipGeometry::paper_1mm(),
        cfg.tile_rows,
        cfg.tile_cols,
        0.0,
        0.0,
        11,
    )
    .expect("valid tiling");
    let blocks = floorplan.blocks().len();

    // Scenario grid: nodes x ambients x activities x Vdd scales, nodes
    // drawn from the embedded ITRS-like scaling table.
    let table = ScalingTable::itrs_like();
    let technologies: Vec<_> = table
        .nodes
        .iter()
        .filter(|n| n.node <= 0.18e-6)
        .take(4)
        .map(|n| n.technology())
        .collect();
    assert_eq!(technologies.len(), 4);
    let grid = ScenarioGrid::new(technologies)
        .vdd_scales(vec![0.8, 0.9, 1.0, 1.1, 1.2])
        .activities((1..=10).map(|i| 0.1 * i as f64).collect())
        .ambients_k((0..cfg.ambients).map(|i| 280.0 + 2.0 * i as f64).collect());
    let scenarios_total = grid.len();

    let threads = ptherm_par::default_threads();
    let engine = SweepEngine::new(floorplan.clone()).threads(threads);
    let lanes = 64;
    let engine = engine.batch_lanes(lanes);
    let model = engine.uniform_tech_power(0.45, 0.04).prepared_for(&grid);

    // --- operator build: serial vs threaded (bit-identical) -------------
    let t0 = Instant::now();
    let op1 = ThermalOperator::with_image_orders_threaded(&floorplan, 2, 9, 1);
    let build_serial_ns = t0.elapsed().as_nanos() as u64;
    let t0 = Instant::now();
    let op_n = ThermalOperator::with_image_orders_threaded(&floorplan, 2, 9, threads);
    let build_threaded_ns = t0.elapsed().as_nanos() as u64;
    let build_bit_identical = op1.influence().as_slice() == op_n.influence().as_slice();

    // --- cold baseline: rebuild the thermal model every iteration -------
    let sink_k = engine.operator().sink_temperature();
    let techs = grid.technologies();
    let step = (scenarios_total / cfg.cold_samples).max(1);
    let cold_scenarios: Vec<_> = (0..scenarios_total)
        .step_by(step)
        .take(cfg.cold_samples)
        .map(|i| (i, grid.scenario(i, sink_k)))
        .collect();
    let t0 = Instant::now();
    let mut cold_results = Vec::with_capacity(cold_scenarios.len());
    for (_, scenario) in &cold_scenarios {
        let g = ChipGeometry {
            sink_temperature: scenario.ambient_k,
            ..*floorplan.geometry()
        };
        let plan = Floorplan::new(g, floorplan.blocks().to_vec()).expect("same blocks");
        let solver = ElectroThermalSolver::new(plan);
        let r = solver.solve_rebuilding(|b, t| {
            model.block_power(scenario, &techs[scenario.tech_index], b, t)
        });
        cold_results.push(r);
    }
    let cold_ns_per_solve = t0.elapsed().as_nanos() as u64 / cold_scenarios.len() as u64;
    let cold_throughput = 1e9 / cold_ns_per_solve as f64;

    // --- per-scenario engine (the PR 1 design, now the oracle) ----------
    // Both engines are timed best-of-N: each run does identical work, so
    // the fastest run is the least scheduler-disturbed measurement.
    const TIMED_RUNS: usize = 3;
    let mut oracle_s = f64::INFINITY;
    let mut oracle_report = engine.run_per_scenario(&grid, &model); // warm-up
    for _ in 0..TIMED_RUNS {
        let t0 = Instant::now();
        oracle_report = engine.run_per_scenario(&grid, &model);
        oracle_s = oracle_s.min(t0.elapsed().as_secs_f64());
    }
    let oracle_ns_per_solve = (oracle_s * 1e9) as u64 / scenarios_total as u64;
    let oracle_throughput = scenarios_total as f64 / oracle_s;

    // --- batched engine -------------------------------------------------
    let mut batched_s = f64::INFINITY;
    let mut batched_report = engine.run(&grid, &model); // warm-up
    for _ in 0..TIMED_RUNS {
        let t0 = Instant::now();
        batched_report = engine.run(&grid, &model);
        batched_s = batched_s.min(t0.elapsed().as_secs_f64());
    }
    let batched_ns_per_solve = (batched_s * 1e9) as u64 / scenarios_total as u64;
    let batched_throughput = scenarios_total as f64 / batched_s;

    let speedup_vs_oracle = batched_throughput / oracle_throughput;
    let speedup_vs_cold = batched_throughput / cold_throughput;

    let mut out = Table::new([
        "configuration",
        "scenarios",
        "wall_s",
        "scenarios_per_s",
        "speedup_vs_cold",
    ]);
    out.row([
        "cold (rebuild/iter, 1 thread)".into(),
        format!("{} (sampled)", cold_scenarios.len()),
        format!(
            "{:.3}",
            cold_ns_per_solve as f64 * 1e-9 * cold_scenarios.len() as f64
        ),
        format!("{cold_throughput:.1}"),
        "1.0".into(),
    ]);
    out.row([
        format!("per-scenario engine, {threads} threads"),
        scenarios_total.to_string(),
        format!("{oracle_s:.3}"),
        format!("{oracle_throughput:.1}"),
        format!("{:.1}", oracle_throughput / cold_throughput),
    ]);
    out.row([
        format!("batched engine, {threads} threads, {lanes} lanes"),
        scenarios_total.to_string(),
        format!("{batched_s:.3}"),
        format!("{batched_throughput:.1}"),
        format!("{speedup_vs_cold:.1}"),
    ]);
    println!("{}", out.render());
    println!(
        "batched vs per-scenario engine: {speedup_vs_oracle:.2}x; operator build {:.1} ms serial / {:.1} ms on {threads} thread(s)",
        build_serial_ns as f64 / 1e6,
        build_threaded_ns as f64 / 1e6,
    );
    println!(
        "sweep outcome: {batched_report} (peak {:.1} K)",
        batched_report.max_peak_temperature().unwrap_or(f64::NAN)
    );

    // --- audits ----------------------------------------------------------
    // 1. batched vs per-scenario oracle: ULP contract (same outcome
    //    kinds, same iteration counts, ~1e-9 K temperatures).
    let mut max_gap_oracle: f64 = 0.0;
    let mut kinds_match = true;
    let mut iterations_match = true;
    for (b, o) in batched_report.outcomes.iter().zip(&oracle_report.outcomes) {
        match (b, o) {
            (
                SweepOutcome::Converged {
                    block_temperatures: bt,
                    iterations: bi,
                    ..
                },
                SweepOutcome::Converged {
                    block_temperatures: ot,
                    iterations: oi,
                    ..
                },
            ) => {
                iterations_match &= bi == oi;
                for (x, y) in bt.iter().zip(ot) {
                    max_gap_oracle = max_gap_oracle.max((x - y).abs());
                }
            }
            (
                SweepOutcome::Runaway { iteration: bi, .. },
                SweepOutcome::Runaway { iteration: oi, .. },
            ) => {
                iterations_match &= bi == oi;
            }
            (b, o) => kinds_match &= b == o,
        }
    }

    // 2. oracle vs cold reference: rounding error only.
    let mut max_gap_cold: f64 = 0.0;
    for ((idx, _), cold) in cold_scenarios.iter().zip(&cold_results) {
        let idx = *idx;
        if let (
            Ok(cold),
            SweepOutcome::Converged {
                block_temperatures, ..
            },
        ) = (cold, &oracle_report.outcomes[idx])
        {
            for (a, b) in cold.block_temperatures.iter().zip(block_temperatures) {
                max_gap_cold = max_gap_cold.max((a - b).abs());
            }
        }
    }

    // --- BENCH_sweep.json -------------------------------------------------
    // The hardened emitter rejects non-finite values (nulled + reported
    // through the finiteness shape check) so a sentinel leaking out of a
    // result type can never produce an unparsable artifact.
    let mut json = JsonObject::new();
    json.string("bench", "sweep")
        .string("mode", if quick { "quick" } else { "full" })
        .integer("blocks", blocks as u64)
        .integer("scenarios", scenarios_total as u64)
        .integer("threads", threads as u64)
        .integer("batch_lanes", lanes as u64)
        .string("simd", &format!("{:?}", ptherm_math::simd::isa()))
        .integer("operator_build_serial_ns", build_serial_ns)
        .integer("operator_build_threaded_ns", build_threaded_ns)
        .integer("cold_ns_per_solve", cold_ns_per_solve)
        .integer("per_scenario_ns_per_solve", oracle_ns_per_solve)
        .integer("batched_ns_per_solve", batched_ns_per_solve)
        .number("speedup_batched_vs_per_scenario", speedup_vs_oracle)
        .number("speedup_batched_vs_rebuilding", speedup_vs_cold)
        .number("max_temp_gap_vs_oracle_k", max_gap_oracle)
        .number("max_temp_gap_oracle_vs_rebuilding_k", max_gap_cold);
    // Quick mode defaults to its own file so a smoke run never clobbers
    // the checked-in full-mode baseline.
    let default_path = if quick {
        "BENCH_sweep.quick.json"
    } else {
        "BENCH_sweep.json"
    };
    let json_path = std::env::var("BENCH_SWEEP_JSON").unwrap_or_else(|_| default_path.into());
    match std::fs::write(&json_path, json.render()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    // The quick (CI) bar is >= 1x; the full baseline documents >= 5x.
    let speedup_bar = if quick { 1.0 } else { 5.0 };
    let checks = vec![
        json.finiteness_check(),
        ShapeCheck::new(
            "every scenario resolves (converged or detected runaway)",
            batched_report.outcomes.iter().all(|o| {
                !matches!(
                    o,
                    SweepOutcome::BadPower { .. } | SweepOutcome::NotConverged { .. }
                )
            }),
            format!("{batched_report}"),
        ),
        ShapeCheck::new(
            format!("batched engine >= {speedup_bar}x the per-scenario engine"),
            speedup_vs_oracle >= speedup_bar,
            format!(
                "{batched_throughput:.1} vs {oracle_throughput:.1} scenarios/s ({speedup_vs_oracle:.2}x)"
            ),
        ),
        ShapeCheck::new(
            "per-scenario engine beats cold solves (operator reuse)",
            oracle_throughput > cold_throughput,
            format!(
                "{oracle_throughput:.1} vs {cold_throughput:.1} scenarios/s ({:.0}x)",
                oracle_throughput / cold_throughput
            ),
        ),
        ShapeCheck::new(
            "batched outcomes match the oracle (kinds + iterations, <= 1e-9 K)",
            kinds_match && iterations_match && max_gap_oracle < 1e-9,
            format!("max block-temperature gap {max_gap_oracle:.2e} K"),
        ),
        ShapeCheck::new(
            "oracle matches the rebuilding reference to rounding error",
            max_gap_cold < 1e-6,
            format!("max block-temperature gap {max_gap_cold:.2e} K"),
        ),
        ShapeCheck::new(
            "threaded operator build is bit-identical to serial",
            build_bit_identical,
            format!("1 vs {threads} thread(s)"),
        ),
    ];
    std::process::exit(report(&checks));
}
