//! Fault-tolerance bench: recovery overhead of the fleet's chaos
//! machinery, and the isolation audit, emitting `BENCH_faults.json`.
//!
//! Two runs of one synthetic mixed fleet (distinct floorplans, steady +
//! transient jobs): a **fault-free** run, then a **chaos** run under a
//! deterministic [`FaultPlan`] scattering one fault per eight jobs
//! across the retryable / panic / delay classes. Audits:
//!
//! * every *non-faulted* job's result line must be bitwise identical
//!   (wall time normalized) between the two runs — a panicking or
//!   retrying neighbour may never perturb an unaffected job;
//! * every faulted job must land its typed outcome (worker-panic error,
//!   retried-to-ok with recorded attempts, on-time delay);
//! * after the chaos run the same engine must drain the queue
//!   fault-free, bitwise identical to the baseline (zero residual cache
//!   poisoning);
//! * **recovery overhead**: summed wall time of the non-faulted jobs in
//!   the chaos run vs the fault-free run, gated at ≤5% in full mode
//!   (`docs/PERFORMANCE.md` documents the schema, `ci/bench_bounds.*`
//!   gate it).
//!
//! Eviction faults are deliberately absent here: a forced cache flush
//! makes innocent jobs legitimately pay rebuilds, which is cache-churn
//! cost, not recovery overhead (the chaos *test* suite covers them).

use ptherm_bench::{header, report, JsonObject, ShapeCheck, Table};
use ptherm_fleet::{
    Fault, FaultPlan, FleetEngine, FleetEngineBuilder, FleetReport, JobError, JobSpec, SteadyJob,
    TransientJob,
};
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use std::time::Instant;

struct BenchConfig {
    floorplans: usize,
    tile_rows: usize,
    tile_cols: usize,
    jobs_per_floorplan: usize,
    repeats: usize,
    overhead_bar: f64,
    label: &'static str,
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    std::process::exit(bench(quick));
}

/// Distinct-geometry floorplans and an interleaved steady/transient
/// queue over them (the `fleet` bench's synthetic shape).
fn synthetic_fleet(cfg: &BenchConfig) -> (Vec<(String, Floorplan)>, Vec<JobSpec>) {
    let mut floorplans = Vec::with_capacity(cfg.floorplans);
    for i in 0..cfg.floorplans {
        let geometry = ChipGeometry {
            width: 1e-3 * (1.0 + 0.02 * i as f64),
            ..ChipGeometry::paper_1mm()
        };
        let plan = generator::tiled(
            geometry,
            cfg.tile_rows,
            cfg.tile_cols,
            0.005,
            0.02,
            i as u64 + 1,
        )
        .expect("valid tiling");
        floorplans.push((format!("fp{i}"), plan));
    }
    let mut jobs = Vec::with_capacity(cfg.floorplans * cfg.jobs_per_floorplan);
    for round in 0..cfg.jobs_per_floorplan {
        for (name, _) in &floorplans {
            let base = SteadyJob {
                floorplan: name.clone(),
                dynamic_w: 0.3,
                leakage_w: 0.03,
                vdd_scales: vec![0.95, 1.0, 1.05],
                activities: vec![0.5, 1.0],
                ambients_k: None,
                backend: ptherm_core::cosim::SweepBackend::Auto,
                deadline_ms: None,
                name: None,
                power: ptherm_fleet::PowerSpec::Scaled,
                v: None,
            };
            if round % 2 == 0 {
                jobs.push(JobSpec::Steady(base));
            } else {
                jobs.push(JobSpec::Transient(TransientJob {
                    base: SteadyJob {
                        vdd_scales: vec![1.0],
                        activities: vec![1.0],
                        ..base
                    },
                    dt_s: 2e-4,
                    steps: 40,
                    scheme: ptherm_math::ode::ImplicitScheme::Trapezoidal,
                    waveforms: Vec::new(),
                }));
            }
        }
    }
    (floorplans, jobs)
}

/// One fault per eight jobs, cycling the recoverable classes. Explicit
/// (not seeded) so the class mix is fixed and the expected outcome of
/// every faulted job is known exactly.
fn fault_plan(jobs: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for (k, job) in (0..jobs).step_by(8).enumerate() {
        let fault = match k % 4 {
            0 => Fault::TransientFault,
            1 => Fault::SolverPanic { iteration: 1 },
            2 => Fault::BuilderPanic,
            _ => Fault::Delay { ms: 1 },
        };
        plan = plan.inject(job, fault);
    }
    plan
}

fn build_engine(floorplans: &[(String, Floorplan)], threads: usize) -> FleetEngine {
    let mut builder = FleetEngineBuilder::new().threads(threads);
    for (name, plan) in floorplans {
        builder = builder.floorplan(name.clone(), plan.clone());
    }
    builder.build().expect("valid bench configuration")
}

/// Result lines with `wall_ns` normalized to 0 — the bitwise-identity
/// currency of the isolation audit.
fn normalized_lines(report: &FleetReport, jobs: &[JobSpec]) -> Vec<String> {
    report
        .jobs
        .iter()
        .map(|record| {
            let mut normalized = record.clone();
            normalized.wall_ns = 0;
            normalized.to_json(&jobs[record.index]).render()
        })
        .collect()
}

/// Summed wall time of the jobs NOT in the fault plan, seconds.
fn unfaulted_wall_s(report: &FleetReport, plan: &FaultPlan) -> f64 {
    report
        .jobs
        .iter()
        .filter(|record| plan.fault_for(record.index, 1).is_none())
        .map(|record| record.wall_ns as f64 * 1e-9)
        .sum()
}

fn bench(quick: bool) -> i32 {
    let cfg = if quick {
        BenchConfig {
            floorplans: 4,
            tile_rows: 3,
            tile_cols: 3,
            jobs_per_floorplan: 6,
            repeats: 2,
            // The quick smoke runs millisecond jobs on shared CI
            // machines: gate shape, not noise.
            overhead_bar: 1.5,
            label: "quick (CI smoke): 4 floorplans x 9 blocks, 24 mixed jobs",
        }
    } else {
        BenchConfig {
            floorplans: 8,
            tile_rows: 4,
            tile_cols: 4,
            jobs_per_floorplan: 12,
            repeats: 3,
            overhead_bar: 1.05,
            label: "8 floorplans x 16 blocks, 96 mixed jobs",
        }
    };
    header(
        "Faults",
        &format!(
            "chaos-run recovery overhead vs fault-free fleet, {} ({} threads)",
            cfg.label,
            ptherm_par::default_threads()
        ),
    );

    let threads = ptherm_par::default_threads();
    let (floorplans, jobs) = synthetic_fleet(&cfg);
    let plan = fault_plan(jobs.len());
    let faulted: Vec<Option<&Fault>> = (0..jobs.len()).map(|j| plan.fault_for(j, 1)).collect();
    let expected_panics = faulted
        .iter()
        .filter(|f| {
            matches!(
                f,
                Some(Fault::SolverPanic { .. }) | Some(Fault::BuilderPanic)
            )
        })
        .count();
    let expected_retries = faulted
        .iter()
        .filter(|f| matches!(f, Some(Fault::TransientFault)))
        .count();

    // --- fault-free baseline ---------------------------------------------
    // Fresh engines every repeat (cold caches on both sides); the
    // overhead ratio takes each side's fastest repeat, which is the
    // standard defence against scheduler noise on small jobs.
    let mut free_wall_s = f64::INFINITY;
    let mut free_unfaulted_s = f64::INFINITY;
    let mut baseline: Option<FleetReport> = None;
    for _ in 0..cfg.repeats {
        let engine = build_engine(&floorplans, threads);
        let t0 = Instant::now();
        let report = engine.run(&jobs);
        free_wall_s = free_wall_s.min(t0.elapsed().as_secs_f64());
        free_unfaulted_s = free_unfaulted_s.min(unfaulted_wall_s(&report, &plan));
        baseline = Some(report);
    }
    let baseline = baseline.expect("at least one repeat");
    let baseline_lines = normalized_lines(&baseline, &jobs);

    // --- chaos run --------------------------------------------------------
    // The injected panics are expected; keep their backtraces out of the
    // bench transcript. `catch_unwind` in the engine still sees them.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut chaos_wall_s = f64::INFINITY;
    let mut chaos_unfaulted_s = f64::INFINITY;
    let mut chaos: Option<FleetReport> = None;
    let mut drained: Option<FleetReport> = None;
    for _ in 0..cfg.repeats {
        let mut engine = build_engine(&floorplans, threads);
        engine.set_faults(Some(plan.clone()));
        let t0 = Instant::now();
        let report = engine.run(&jobs);
        chaos_wall_s = chaos_wall_s.min(t0.elapsed().as_secs_f64());
        chaos_unfaulted_s = chaos_unfaulted_s.min(unfaulted_wall_s(&report, &plan));
        chaos = Some(report);
        // Residual-poisoning probe: the same engine, faults cleared.
        engine.set_faults(None);
        drained = Some(engine.run(&jobs));
    }
    std::panic::set_hook(default_hook);
    let chaos = chaos.expect("at least one repeat");
    let chaos_lines = normalized_lines(&chaos, &jobs);
    let drained_lines = normalized_lines(&drained.expect("at least one repeat"), &jobs);

    // --- audits -----------------------------------------------------------
    let unfaulted_mismatches = baseline_lines
        .iter()
        .zip(&chaos_lines)
        .enumerate()
        .filter(|(j, (base, line))| faulted[*j].is_none() && base != line)
        .count();
    let drained_mismatches = baseline_lines
        .iter()
        .zip(&drained_lines)
        .filter(|(base, line)| base != line)
        .count();
    let typed_panic_lines = chaos
        .jobs
        .iter()
        .filter(|record| matches!(record.outcome, Err(JobError::WorkerPanic { .. })))
        .count();
    let recovery_overhead_ratio = chaos_unfaulted_s / free_unfaulted_s;

    let mut out = Table::new(["run", "jobs", "ok", "errors", "retries", "wall_s"]);
    out.row([
        "fault-free".into(),
        jobs.len().to_string(),
        baseline.ok_count().to_string(),
        baseline.error_count().to_string(),
        baseline.retry_count().to_string(),
        format!("{free_wall_s:.3}"),
    ]);
    out.row([
        format!("chaos ({} faults)", plan.faulted_jobs()),
        jobs.len().to_string(),
        chaos.ok_count().to_string(),
        chaos.error_count().to_string(),
        chaos.retry_count().to_string(),
        format!("{chaos_wall_s:.3}"),
    ]);
    println!("{}", out.render());
    println!(
        "unaffected-job wall: {free_unfaulted_s:.3}s fault-free vs {chaos_unfaulted_s:.3}s \
         under chaos ({recovery_overhead_ratio:.3}x)"
    );

    // --- BENCH_faults.json ------------------------------------------------
    let mut json = JsonObject::new();
    json.string("bench", "faults")
        .string("mode", if quick { "quick" } else { "full" })
        .integer("floorplans", cfg.floorplans as u64)
        .integer("jobs", jobs.len() as u64)
        .integer("faulted_jobs", plan.faulted_jobs() as u64)
        .integer("threads", threads as u64)
        .integer("injected_panics", expected_panics as u64)
        .integer("injected_retryable", expected_retries as u64)
        .integer("observed_panics", chaos.panic_count() as u64)
        .integer("observed_retries", chaos.retry_count() as u64)
        .integer("observed_errors", chaos.error_count() as u64)
        .integer("unfaulted_line_mismatches", unfaulted_mismatches as u64)
        .integer("drained_line_mismatches", drained_mismatches as u64)
        .number("free_wall_s", free_wall_s)
        .number("chaos_wall_s", chaos_wall_s)
        .number("free_unfaulted_wall_s", free_unfaulted_s)
        .number("chaos_unfaulted_wall_s", chaos_unfaulted_s)
        .number("recovery_overhead_ratio", recovery_overhead_ratio);
    let default_path = if quick {
        "BENCH_faults.quick.json"
    } else {
        "BENCH_faults.json"
    };
    let json_path = std::env::var("BENCH_FAULTS_JSON").unwrap_or_else(|_| default_path.into());
    match std::fs::write(&json_path, json.render()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    let checks = vec![
        json.finiteness_check(),
        ShapeCheck::new(
            "the fault-free baseline resolves every job",
            baseline.ok_count() == jobs.len() && baseline.retry_count() == 0,
            format!("{}/{} ok", baseline.ok_count(), jobs.len()),
        ),
        ShapeCheck::new(
            "every non-faulted result line is bitwise identical under chaos",
            unfaulted_mismatches == 0,
            format!("{unfaulted_mismatches} mismatching lines"),
        ),
        ShapeCheck::new(
            "every injected panic lands as a typed worker-panic error",
            chaos.panic_count() == expected_panics
                && typed_panic_lines == expected_panics
                && chaos.error_count() == expected_panics,
            format!(
                "{} observed vs {} injected",
                chaos.panic_count(),
                expected_panics
            ),
        ),
        ShapeCheck::new(
            "every retryable fault retries exactly once to success",
            chaos.retry_count() == expected_retries
                && chaos.ok_count() == jobs.len() - expected_panics,
            format!(
                "{} retries, {}/{} ok",
                chaos.retry_count(),
                chaos.ok_count(),
                jobs.len()
            ),
        ),
        ShapeCheck::new(
            "the chaos engine drains a fault-free queue with zero residual poisoning",
            drained_mismatches == 0,
            format!("{drained_mismatches} mismatching lines"),
        ),
        ShapeCheck::new(
            format!(
                "recovery overhead on unaffected jobs <= {:.0}%",
                (cfg.overhead_bar - 1.0) * 100.0
            ),
            recovery_overhead_ratio <= cfg.overhead_bar,
            format!("{recovery_overhead_ratio:.3}x unaffected-job wall time"),
        ),
    ];
    report(&checks)
}
