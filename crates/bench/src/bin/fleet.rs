//! Fleet front end: serve line-delimited JSON job requests, or measure
//! cache-amortized fleet throughput and emit `BENCH_fleet.json`.
//!
//! Two modes:
//!
//! * **serve** — `fleet --jobs <path|->`: parse a JSONL request
//!   (`ptherm_fleet::jobs` schema, documented in
//!   `docs/ARCHITECTURE.md`), run it on the work-stealing fleet engine
//!   and print one JSON result line per job to stdout (stdout carries
//!   *only* result lines; diagnostics go to stderr). Flags: `--threads
//!   N`, `--cache-capacity N`, `--no-cache`.
//! * **bench** (default; `--quick` for the CI smoke shape) — a
//!   synthetic fleet of distinct floorplans each served many small
//!   mixed jobs, run twice: factor-per-job (the cold baseline, every
//!   job pays assembly + factorization) and cache-amortized (the
//!   production path). Audits: the two runs must agree bitwise on
//!   every temperature (a cache hit may never change a result), and
//!   the amortized run must clear the documented throughput bar
//!   (`docs/PERFORMANCE.md`; ≥10× on the full 16-floorplan workload).

use ptherm_bench::{header, report, JsonObject, ShapeCheck, Table};
use ptherm_fleet::{
    parse_jsonl, FleetConfig, FleetEngine, FleetEngineBuilder, FleetReport, JobReport, JobSpec,
    SteadyJob, TransientJob,
};
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use std::time::Instant;

struct BenchConfig {
    floorplans: usize,
    tile_rows: usize,
    tile_cols: usize,
    jobs_per_floorplan: usize,
    speedup_bar: f64,
    label: &'static str,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => std::process::exit(serve_mode(&args[1..])),
        Some("client") => std::process::exit(client_mode(&args[1..])),
        _ => {}
    }
    if args.iter().any(|a| a == "--jobs") {
        std::process::exit(serve(&args));
    }
    let quick = args.iter().any(|a| a == "--quick");
    std::process::exit(bench(quick));
}

/// Value of `--flag <value>` in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

// ---------------------------------------------------------------------
// Serve mode
// ---------------------------------------------------------------------

fn serve(args: &[String]) -> i32 {
    let path = flag_value(args, "--jobs").unwrap_or("-");
    let text = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf) {
            eprintln!("fleet: could not read stdin: {e}");
            return 2;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("fleet: could not read {path}: {e}");
                return 2;
            }
        }
    };
    let request = match parse_jsonl(&text) {
        Ok(request) => request,
        Err(e) => {
            eprintln!("fleet: invalid request: {e}");
            return 2;
        }
    };
    let mut config = FleetConfig::default();
    // A malformed flag value must refuse to run, not silently fall back
    // to a default the operator did not ask for.
    for (flag, slot) in [
        ("--threads", &mut config.threads),
        ("--cache-capacity", &mut config.cache_capacity),
    ] {
        if let Some(raw) = flag_value(args, flag) {
            match raw.parse::<usize>() {
                Ok(value) if value > 0 => *slot = value,
                _ => {
                    eprintln!("fleet: {flag} needs a positive integer, got {raw:?}");
                    return 2;
                }
            }
        }
    }
    if args.iter().any(|a| a == "--no-cache") {
        config.amortize = false;
    }
    let engine = match FleetEngineBuilder::new()
        .config(config)
        .request(&request)
        .build()
    {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("invalid fleet configuration: {e}");
            return 2;
        }
    };
    let fleet_report = engine.run(&request.jobs);
    for record in &fleet_report.jobs {
        println!("{}", record.to_json(&request.jobs[record.index]).render());
    }
    let steady = fleet_report.steady_cache;
    let transient = fleet_report.transient_cache;
    let map = fleet_report.map_cache;
    eprintln!(
        "fleet: {} jobs, {} ok; steady cache {}h/{}m/{}e, transient cache {}h/{}m/{}e, \
         map cache {}h/{}m/{}e, {} steals",
        fleet_report.jobs.len(),
        fleet_report.ok_count(),
        steady.hits,
        steady.misses,
        steady.evictions,
        transient.hits,
        transient.misses,
        transient.evictions,
        map.hits,
        map.misses,
        map.evictions,
        fleet_report.steals,
    );
    // Final stderr line is machine-readable: one JSON object an
    // operator's supervisor can parse without touching stdout (which
    // carries only result lines).
    let summary = ptherm_fleet::Json::Object(vec![
        (
            "jobs".into(),
            ptherm_fleet::Json::Number(fleet_report.jobs.len() as f64),
        ),
        (
            "ok".into(),
            ptherm_fleet::Json::Number(fleet_report.ok_count() as f64),
        ),
        (
            "errors".into(),
            ptherm_fleet::Json::Number(fleet_report.error_count() as f64),
        ),
        (
            "retries".into(),
            ptherm_fleet::Json::Number(fleet_report.retry_count() as f64),
        ),
        (
            "panics".into(),
            ptherm_fleet::Json::Number(fleet_report.panic_count() as f64),
        ),
    ]);
    eprintln!("{}", summary.render());
    i32::from(fleet_report.ok_count() != fleet_report.jobs.len())
}

// ---------------------------------------------------------------------
// Persistent service (`fleet serve`) and its line client
// ---------------------------------------------------------------------

/// Raised by the SIGTERM/SIGINT handler; a watchdog thread forwards it
/// to the server's shutdown handle (signal handlers must not touch
/// anything but this atomic).
static SIGNALED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALED.store(true, std::sync::atomic::Ordering::SeqCst);
}

// `signal(2)` — std exposes no signal API and the workspace builds
// offline (no `libc` crate), so the binding is declared directly.
// Handlers are `usize`-sized function pointers on every supported
// target.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn install_signal_handlers() {
    // SAFETY: `on_signal` is async-signal-safe (it performs a single
    // relaxed-compatible atomic store and touches no locks, no
    // allocator and no stdio), and SIGINT/SIGTERM are valid signal
    // numbers on every platform this builds for. The previous handler
    // (the default) is intentionally discarded.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// `fleet serve`: the persistent socket service over one long-lived
/// engine. Flags: `--listen <addr>` (TCP, default `127.0.0.1:0`),
/// `--unix <path>` (additional Unix-domain listener), `--threads N`,
/// `--cache-capacity N`, `--queue-capacity N`, `--manifest <path>`
/// (cache warm/persist across restarts), `--stdin-shutdown` (drain
/// when stdin closes — for supervisors that manage children through
/// pipes). Prints one `{"type": "ready", ...}` line to stdout once
/// every listener is bound, then serves until SIGTERM/SIGINT, a
/// `{"type": "shutdown"}` control record, or stdin close (opt-in);
/// the final stats line goes to stdout on exit.
fn serve_mode(args: &[String]) -> i32 {
    let mut config = FleetConfig::default();
    let mut queue_capacity = ptherm_fleet::ServeConfig::default().queue_capacity;
    for (flag, slot) in [
        ("--threads", &mut config.threads),
        ("--cache-capacity", &mut config.cache_capacity),
        ("--queue-capacity", &mut queue_capacity),
    ] {
        if let Some(raw) = flag_value(args, flag) {
            match raw.parse::<usize>() {
                Ok(value) if value > 0 => *slot = value,
                _ => {
                    eprintln!("fleet serve: {flag} needs a positive integer, got {raw:?}");
                    return 2;
                }
            }
        }
    }
    let engine = match FleetEngineBuilder::new().config(config).build() {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("fleet serve: invalid configuration: {e}");
            return 2;
        }
    };
    let serve_config = ptherm_fleet::ServeConfig {
        queue_capacity,
        manifest_path: flag_value(args, "--manifest").map(std::path::PathBuf::from),
    };

    let mut listeners = Vec::new();
    let mut ready = vec![(
        "type".to_string(),
        ptherm_fleet::Json::String("ready".into()),
    )];
    let addr = flag_value(args, "--listen").unwrap_or("127.0.0.1:0");
    match std::net::TcpListener::bind(addr) {
        Ok(listener) => {
            let bound = listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| addr.to_string());
            ready.push(("tcp".into(), ptherm_fleet::Json::String(bound)));
            listeners.push(ptherm_fleet::ServeListener::Tcp(listener));
        }
        Err(e) => {
            eprintln!("fleet serve: could not bind {addr}: {e}");
            return 2;
        }
    }
    let unix_path = flag_value(args, "--unix").map(std::path::PathBuf::from);
    if let Some(path) = &unix_path {
        // A previous unclean exit leaves the socket file behind;
        // rebinding requires removing it first.
        let _ = std::fs::remove_file(path);
        match std::os::unix::net::UnixListener::bind(path) {
            Ok(listener) => {
                ready.push((
                    "unix".into(),
                    ptherm_fleet::Json::String(path.display().to_string()),
                ));
                listeners.push(ptherm_fleet::ServeListener::Unix(listener));
            }
            Err(e) => {
                eprintln!("fleet serve: could not bind {}: {e}", path.display());
                return 2;
            }
        }
    }

    let server = ptherm_fleet::FleetServer::new(engine, serve_config);
    let shutdown = server.shutdown_handle();
    install_signal_handlers();
    {
        let shutdown = std::sync::Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if SIGNALED.load(std::sync::atomic::Ordering::SeqCst) {
                shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
    if args.iter().any(|a| a == "--stdin-shutdown") {
        let shutdown = std::sync::Arc::clone(&shutdown);
        std::thread::spawn(move || {
            // Block until the supervisor closes our stdin, then drain.
            let mut sink = String::new();
            let _ = std::io::Read::read_to_string(&mut std::io::stdin(), &mut sink);
            shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        });
    }

    println!("{}", ptherm_fleet::Json::Object(ready).render());
    let summary = match server.serve(listeners) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("fleet serve: {e}");
            return 1;
        }
    };
    if let Some(path) = &unix_path {
        let _ = std::fs::remove_file(path);
    }
    if let Some(warm) = summary.warm {
        eprintln!(
            "fleet serve: warmed {} cache entr{} ({} stale skipped)",
            warm.rebuilt,
            if warm.rebuilt == 1 { "y" } else { "ies" },
            warm.skipped
        );
    }
    if summary.manifest_saved {
        eprintln!("fleet serve: cache manifest saved");
    }
    println!("{}", summary.stats.render());
    0
}

/// `fleet client`: stream a JSONL request to a serving `fleet serve`
/// process and print every response line. Flags: `--connect <addr>`
/// (TCP) or `--unix <path>`, `--jobs <path|->` (default stdin),
/// `--shutdown` (append a shutdown control record, draining the
/// server). Exits 0 once the server closes the connection.
fn client_mode(args: &[String]) -> i32 {
    let path = flag_value(args, "--jobs").unwrap_or("-");
    let mut text = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf) {
            eprintln!("fleet client: could not read stdin: {e}");
            return 2;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("fleet client: could not read {path}: {e}");
                return 2;
            }
        }
    };
    if !text.ends_with('\n') {
        text.push('\n');
    }
    if args.iter().any(|a| a == "--shutdown") {
        text.push_str("{\"type\": \"shutdown\"}\n");
    }

    let stream: Box<dyn ReadWrite> = if let Some(path) = flag_value(args, "--unix") {
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(stream) => Box::new(stream),
            Err(e) => {
                eprintln!("fleet client: could not connect to {path}: {e}");
                return 2;
            }
        }
    } else {
        let addr = flag_value(args, "--connect").unwrap_or("127.0.0.1:7411");
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => Box::new(stream),
            Err(e) => {
                eprintln!("fleet client: could not connect to {addr}: {e}");
                return 2;
            }
        }
    };
    let mut write_half = match stream.try_clone_box() {
        Ok(clone) => clone,
        Err(e) => {
            eprintln!("fleet client: {e}");
            return 2;
        }
    };
    let sender = std::thread::spawn(move || {
        let _ = write_half.write_all(text.as_bytes());
        let _ = write_half.flush();
        let _ = write_half.shutdown_write();
    });
    let reader = std::io::BufReader::new(stream);
    for line in std::io::BufRead::lines(reader) {
        match line {
            Ok(line) => println!("{line}"),
            Err(_) => break,
        }
    }
    let _ = sender.join();
    0
}

/// Object-safe read+write+clone over TCP and Unix streams, so the
/// client treats both transports uniformly.
trait ReadWrite: std::io::Read + Send {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn ReadWrite>>;
    fn shutdown_write(&self) -> std::io::Result<()>;
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()>;
    fn flush(&mut self) -> std::io::Result<()>;
}

impl ReadWrite for std::net::TcpStream {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn ReadWrite>> {
        self.try_clone().map(|s| Box::new(s) as Box<dyn ReadWrite>)
    }
    fn shutdown_write(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        std::io::Write::write_all(self, buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        std::io::Write::flush(self)
    }
}

impl ReadWrite for std::os::unix::net::UnixStream {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn ReadWrite>> {
        self.try_clone().map(|s| Box::new(s) as Box<dyn ReadWrite>)
    }
    fn shutdown_write(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        std::io::Write::write_all(self, buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        std::io::Write::flush(self)
    }
}

// ---------------------------------------------------------------------
// Bench mode
// ---------------------------------------------------------------------

/// The synthetic fleet: `floorplans` genuinely distinct floorplans and
/// an interleaved mixed job queue over them. Each plan gets its own die
/// width: tilings that differ only by power seed share a geometry
/// fingerprint (the operator is power-blind), which would let one cache
/// entry serve the whole "fleet" and overstate the win.
fn synthetic_fleet(cfg: &BenchConfig) -> (Vec<(String, Floorplan)>, Vec<JobSpec>) {
    let mut floorplans = Vec::with_capacity(cfg.floorplans);
    for i in 0..cfg.floorplans {
        // Distinct die widths make every floorplan a genuinely distinct
        // geometry (distinct operator fingerprint and cache entry).
        let geometry = ChipGeometry {
            width: 1e-3 * (1.0 + 0.02 * i as f64),
            ..ChipGeometry::paper_1mm()
        };
        let plan = generator::tiled(
            geometry,
            cfg.tile_rows,
            cfg.tile_cols,
            0.005,
            0.02,
            i as u64 + 1,
        )
        .expect("valid tiling");
        floorplans.push((format!("fp{i}"), plan));
    }
    let mut jobs = Vec::with_capacity(cfg.floorplans * cfg.jobs_per_floorplan);
    for round in 0..cfg.jobs_per_floorplan {
        for (name, _) in &floorplans {
            let base = SteadyJob {
                floorplan: name.clone(),
                dynamic_w: 0.3,
                leakage_w: 0.03,
                vdd_scales: vec![0.95, 1.0, 1.05],
                activities: vec![0.5, 1.0],
                ambients_k: None,
                backend: ptherm_core::cosim::SweepBackend::Auto,
                deadline_ms: None,
                name: None,
                power: ptherm_fleet::PowerSpec::Scaled,
                v: None,
            };
            // Alternate job kinds per round so every worker's local run
            // of the queue mixes sweeps and transients.
            if round % 2 == 0 {
                jobs.push(JobSpec::Steady(base));
            } else {
                jobs.push(JobSpec::Transient(TransientJob {
                    base: SteadyJob {
                        vdd_scales: vec![1.0],
                        activities: vec![1.0],
                        ..base
                    },
                    dt_s: 2e-4,
                    steps: 40,
                    scheme: ptherm_math::ode::ImplicitScheme::Trapezoidal,
                    waveforms: Vec::new(),
                }));
            }
        }
    }
    (floorplans, jobs)
}

fn build_engine(floorplans: &[(String, Floorplan)], amortize: bool, threads: usize) -> FleetEngine {
    let mut builder = FleetEngineBuilder::new()
        .threads(threads)
        .amortize(amortize);
    for (name, plan) in floorplans {
        builder = builder.floorplan(name.clone(), plan.clone());
    }
    builder.build().expect("valid bench configuration")
}

/// Max absolute block-temperature gap between two runs of the same job
/// queue (steady operating points and transient final states).
fn max_temperature_gap(a: &FleetReport, b: &FleetReport) -> f64 {
    use ptherm_core::cosim::SweepOutcome;
    let mut gap: f64 = 0.0;
    let mut pairwise = |xs: &[f64], ys: &[f64]| {
        for (x, y) in xs.iter().zip(ys) {
            gap = gap.max((x - y).abs());
        }
    };
    for (ra, rb) in a.jobs.iter().zip(&b.jobs) {
        match (&ra.outcome, &rb.outcome) {
            (Ok(JobReport::Steady(p)), Ok(JobReport::Steady(q))) => {
                for (oa, ob) in p.outcomes.iter().zip(&q.outcomes) {
                    match (oa, ob) {
                        (
                            SweepOutcome::Converged {
                                block_temperatures: ta,
                                ..
                            },
                            SweepOutcome::Converged {
                                block_temperatures: tb,
                                ..
                            },
                        ) => pairwise(ta, tb),
                        // Non-converged pairs must at least agree on the
                        // outcome — a cache flipping one scenario from
                        // converged to runaway must poison the audit,
                        // not be skipped.
                        (oa, ob) if oa == ob => {}
                        _ => return f64::INFINITY,
                    }
                }
            }
            (Ok(JobReport::Transient(p)), Ok(JobReport::Transient(q))) => {
                for (oa, ob) in p.outcomes.iter().zip(&q.outcomes) {
                    match (oa.final_temperatures(), ob.final_temperatures()) {
                        (Some(ta), Some(tb)) => pairwise(ta, tb),
                        _ if oa == ob => {}
                        _ => return f64::INFINITY,
                    }
                }
            }
            _ => return f64::INFINITY, // outcome kinds diverged: report loudly
        }
    }
    gap
}

fn bench(quick: bool) -> i32 {
    let cfg = if quick {
        BenchConfig {
            floorplans: 4,
            tile_rows: 3,
            tile_cols: 3,
            jobs_per_floorplan: 6,
            speedup_bar: 1.2,
            label: "quick (CI smoke): 4 floorplans x 9 blocks, 24 mixed jobs",
        }
    } else {
        BenchConfig {
            floorplans: 16,
            tile_rows: 6,
            tile_cols: 6,
            jobs_per_floorplan: 24,
            speedup_bar: 10.0,
            label: "16 floorplans x 36 blocks, 384 mixed jobs",
        }
    };
    header(
        "Fleet",
        &format!(
            "cache-amortized fleet vs factor-per-job, {} ({} threads)",
            cfg.label,
            ptherm_par::default_threads()
        ),
    );

    let threads = ptherm_par::default_threads();
    let (floorplans, jobs) = synthetic_fleet(&cfg);
    let steady_jobs = jobs
        .iter()
        .filter(|j| matches!(j, JobSpec::Steady(_)))
        .count();
    let transient_jobs = jobs.len() - steady_jobs;

    // --- factor-per-job baseline (cold path oracle) ----------------------
    let cold_engine = build_engine(&floorplans, false, threads);
    let t0 = Instant::now();
    let cold = cold_engine.run(&jobs);
    let cold_s = t0.elapsed().as_secs_f64();

    // --- cache-amortized fleet -------------------------------------------
    // A fresh engine each run: the timed run pays its own compulsory
    // misses (one build per distinct floorplan), which is the honest
    // serving cost — not a pre-warmed cache.
    let amortized_engine = build_engine(&floorplans, true, threads);
    let t0 = Instant::now();
    let amortized = amortized_engine.run(&jobs);
    let amortized_s = t0.elapsed().as_secs_f64();

    let cold_jobs_per_s = jobs.len() as f64 / cold_s;
    let amortized_jobs_per_s = jobs.len() as f64 / amortized_s;
    let speedup = amortized_jobs_per_s / cold_jobs_per_s;
    let gap = max_temperature_gap(&amortized, &cold);
    let steady_stats = amortized.steady_cache;
    let transient_stats = amortized.transient_cache;

    let mut out = Table::new(["configuration", "jobs", "wall_s", "jobs_per_s", "speedup"]);
    out.row([
        "factor-per-job (cold)".into(),
        jobs.len().to_string(),
        format!("{cold_s:.3}"),
        format!("{cold_jobs_per_s:.1}"),
        "1.0".into(),
    ]);
    out.row([
        format!(
            "cache-amortized, {} entries",
            amortized_engine.config().cache_capacity
        ),
        jobs.len().to_string(),
        format!("{amortized_s:.3}"),
        format!("{amortized_jobs_per_s:.1}"),
        format!("{speedup:.1}"),
    ]);
    println!("{}", out.render());
    println!(
        "steady cache: {} hits / {} misses / {} evictions; transient cache: {} / {} / {}; {} steals",
        steady_stats.hits,
        steady_stats.misses,
        steady_stats.evictions,
        transient_stats.hits,
        transient_stats.misses,
        transient_stats.evictions,
        amortized.steals,
    );

    // --- BENCH_fleet.json -------------------------------------------------
    let mut json = JsonObject::new();
    json.string("bench", "fleet")
        .string("mode", if quick { "quick" } else { "full" })
        .integer("floorplans", cfg.floorplans as u64)
        .integer(
            "blocks_per_floorplan",
            (cfg.tile_rows * cfg.tile_cols) as u64,
        )
        .integer("jobs", jobs.len() as u64)
        .integer("steady_jobs", steady_jobs as u64)
        .integer("transient_jobs", transient_jobs as u64)
        .integer("threads", threads as u64)
        .integer(
            "cache_capacity",
            amortized_engine.config().cache_capacity as u64,
        )
        .number("cold_wall_s", cold_s)
        .number("amortized_wall_s", amortized_s)
        .number("cold_jobs_per_s", cold_jobs_per_s)
        .number("amortized_jobs_per_s", amortized_jobs_per_s)
        .number("speedup_amortized_vs_factor_per_job", speedup)
        .integer("steady_cache_hits", steady_stats.hits)
        .integer("steady_cache_misses", steady_stats.misses)
        .integer("steady_cache_evictions", steady_stats.evictions)
        .integer("transient_cache_hits", transient_stats.hits)
        .integer("transient_cache_misses", transient_stats.misses)
        .integer("transient_cache_evictions", transient_stats.evictions)
        .integer("steals", amortized.steals)
        .number("max_temp_gap_vs_cold_k", gap);
    let default_path = if quick {
        "BENCH_fleet.quick.json"
    } else {
        "BENCH_fleet.json"
    };
    let json_path = std::env::var("BENCH_FLEET_JSON").unwrap_or_else(|_| default_path.into());
    match std::fs::write(&json_path, json.render()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    let checks = vec![
        json.finiteness_check(),
        ShapeCheck::new(
            "every job resolves in both runs",
            cold.ok_count() == jobs.len() && amortized.ok_count() == jobs.len(),
            format!(
                "{}/{} cold, {}/{} amortized",
                cold.ok_count(),
                jobs.len(),
                amortized.ok_count(),
                jobs.len()
            ),
        ),
        ShapeCheck::new(
            format!(
                "cache-amortized fleet >= {}x factor-per-job throughput",
                cfg.speedup_bar
            ),
            speedup >= cfg.speedup_bar,
            format!("{amortized_jobs_per_s:.1} vs {cold_jobs_per_s:.1} jobs/s ({speedup:.2}x)"),
        ),
        ShapeCheck::new(
            "cache hits never change results (max gap vs cold oracle <= 1e-9 K)",
            gap <= 1e-9,
            format!("max block-temperature gap {gap:.2e} K"),
        ),
        ShapeCheck::new(
            "steady cache amortizes: one miss per distinct floorplan",
            steady_stats.misses == cfg.floorplans as u64
                && steady_stats.hits + steady_stats.misses == jobs.len() as u64,
            format!(
                "{} misses for {} floorplans, {} hits",
                steady_stats.misses, cfg.floorplans, steady_stats.hits
            ),
        ),
        ShapeCheck::new(
            "transient cache amortizes: one factorization per distinct propagator",
            transient_stats.misses == cfg.floorplans as u64
                && transient_stats.hits + transient_stats.misses == transient_jobs as u64,
            format!(
                "{} misses for {} floorplans, {} hits",
                transient_stats.misses, cfg.floorplans, transient_stats.hits
            ),
        ),
        ShapeCheck::new(
            "the cold run never touches the cache",
            cold.steady_cache == ptherm_fleet::CacheStats::default()
                && cold.transient_cache == ptherm_fleet::CacheStats::default(),
            format!(
                "cold steady counters {:?}",
                (cold.steady_cache.hits, cold.steady_cache.misses)
            ),
        ),
    ];
    report(&checks)
}
