//! Fleet front end: serve line-delimited JSON job requests, or measure
//! cache-amortized fleet throughput and emit `BENCH_fleet.json`.
//!
//! Two modes:
//!
//! * **serve** — `fleet --jobs <path|->`: parse a JSONL request
//!   (`ptherm_fleet::jobs` schema, documented in
//!   `docs/ARCHITECTURE.md`), run it on the work-stealing fleet engine
//!   and print one JSON result line per job to stdout (stdout carries
//!   *only* result lines; diagnostics go to stderr). Flags: `--threads
//!   N`, `--cache-capacity N`, `--no-cache`.
//! * **bench** (default; `--quick` for the CI smoke shape) — a
//!   synthetic fleet of distinct floorplans each served many small
//!   mixed jobs, run twice: factor-per-job (the cold baseline, every
//!   job pays assembly + factorization) and cache-amortized (the
//!   production path). Audits: the two runs must agree bitwise on
//!   every temperature (a cache hit may never change a result), and
//!   the amortized run must clear the documented throughput bar
//!   (`docs/PERFORMANCE.md`; ≥10× on the full 16-floorplan workload).

use ptherm_bench::{header, report, JsonObject, ShapeCheck, Table};
use ptherm_fleet::{
    parse_jsonl, FleetConfig, FleetEngine, FleetReport, JobReport, JobSpec, SteadyJob, TransientJob,
};
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use std::time::Instant;

struct BenchConfig {
    floorplans: usize,
    tile_rows: usize,
    tile_cols: usize,
    jobs_per_floorplan: usize,
    speedup_bar: f64,
    label: &'static str,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--jobs") {
        std::process::exit(serve(&args));
    }
    let quick = args.iter().any(|a| a == "--quick");
    std::process::exit(bench(quick));
}

/// Value of `--flag <value>` in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

// ---------------------------------------------------------------------
// Serve mode
// ---------------------------------------------------------------------

fn serve(args: &[String]) -> i32 {
    let path = flag_value(args, "--jobs").unwrap_or("-");
    let text = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf) {
            eprintln!("fleet: could not read stdin: {e}");
            return 2;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("fleet: could not read {path}: {e}");
                return 2;
            }
        }
    };
    let request = match parse_jsonl(&text) {
        Ok(request) => request,
        Err(e) => {
            eprintln!("fleet: invalid request: {e}");
            return 2;
        }
    };
    let mut config = FleetConfig::default();
    // A malformed flag value must refuse to run, not silently fall back
    // to a default the operator did not ask for.
    for (flag, slot) in [
        ("--threads", &mut config.threads),
        ("--cache-capacity", &mut config.cache_capacity),
    ] {
        if let Some(raw) = flag_value(args, flag) {
            match raw.parse::<usize>() {
                Ok(value) if value > 0 => *slot = value,
                _ => {
                    eprintln!("fleet: {flag} needs a positive integer, got {raw:?}");
                    return 2;
                }
            }
        }
    }
    if args.iter().any(|a| a == "--no-cache") {
        config.amortize = false;
    }
    let engine = FleetEngine::from_request(config, &request);
    let fleet_report = engine.run(&request.jobs);
    for record in &fleet_report.jobs {
        println!("{}", record.to_json(&request.jobs[record.index]).render());
    }
    let steady = fleet_report.steady_cache;
    let transient = fleet_report.transient_cache;
    let map = fleet_report.map_cache;
    eprintln!(
        "fleet: {} jobs, {} ok; steady cache {}h/{}m/{}e, transient cache {}h/{}m/{}e, \
         map cache {}h/{}m/{}e, {} steals",
        fleet_report.jobs.len(),
        fleet_report.ok_count(),
        steady.hits,
        steady.misses,
        steady.evictions,
        transient.hits,
        transient.misses,
        transient.evictions,
        map.hits,
        map.misses,
        map.evictions,
        fleet_report.steals,
    );
    // Final stderr line is machine-readable: one JSON object an
    // operator's supervisor can parse without touching stdout (which
    // carries only result lines).
    let summary = ptherm_fleet::Json::Object(vec![
        (
            "jobs".into(),
            ptherm_fleet::Json::Number(fleet_report.jobs.len() as f64),
        ),
        (
            "ok".into(),
            ptherm_fleet::Json::Number(fleet_report.ok_count() as f64),
        ),
        (
            "errors".into(),
            ptherm_fleet::Json::Number(fleet_report.error_count() as f64),
        ),
        (
            "retries".into(),
            ptherm_fleet::Json::Number(fleet_report.retry_count() as f64),
        ),
        (
            "panics".into(),
            ptherm_fleet::Json::Number(fleet_report.panic_count() as f64),
        ),
    ]);
    eprintln!("{}", summary.render());
    i32::from(fleet_report.ok_count() != fleet_report.jobs.len())
}

// ---------------------------------------------------------------------
// Bench mode
// ---------------------------------------------------------------------

/// The synthetic fleet: `floorplans` genuinely distinct floorplans and
/// an interleaved mixed job queue over them. Each plan gets its own die
/// width: tilings that differ only by power seed share a geometry
/// fingerprint (the operator is power-blind), which would let one cache
/// entry serve the whole "fleet" and overstate the win.
fn synthetic_fleet(cfg: &BenchConfig) -> (Vec<(String, Floorplan)>, Vec<JobSpec>) {
    let mut floorplans = Vec::with_capacity(cfg.floorplans);
    for i in 0..cfg.floorplans {
        // Distinct die widths make every floorplan a genuinely distinct
        // geometry (distinct operator fingerprint and cache entry).
        let geometry = ChipGeometry {
            width: 1e-3 * (1.0 + 0.02 * i as f64),
            ..ChipGeometry::paper_1mm()
        };
        let plan = generator::tiled(
            geometry,
            cfg.tile_rows,
            cfg.tile_cols,
            0.005,
            0.02,
            i as u64 + 1,
        )
        .expect("valid tiling");
        floorplans.push((format!("fp{i}"), plan));
    }
    let mut jobs = Vec::with_capacity(cfg.floorplans * cfg.jobs_per_floorplan);
    for round in 0..cfg.jobs_per_floorplan {
        for (name, _) in &floorplans {
            let base = SteadyJob {
                floorplan: name.clone(),
                dynamic_w: 0.3,
                leakage_w: 0.03,
                vdd_scales: vec![0.95, 1.0, 1.05],
                activities: vec![0.5, 1.0],
                ambients_k: None,
                backend: ptherm_core::cosim::SweepBackend::Auto,
                deadline_ms: None,
            };
            // Alternate job kinds per round so every worker's local run
            // of the queue mixes sweeps and transients.
            if round % 2 == 0 {
                jobs.push(JobSpec::Steady(base));
            } else {
                jobs.push(JobSpec::Transient(TransientJob {
                    base: SteadyJob {
                        vdd_scales: vec![1.0],
                        activities: vec![1.0],
                        ..base
                    },
                    dt_s: 2e-4,
                    steps: 40,
                    scheme: ptherm_math::ode::ImplicitScheme::Trapezoidal,
                    waveforms: Vec::new(),
                }));
            }
        }
    }
    (floorplans, jobs)
}

fn build_engine(floorplans: &[(String, Floorplan)], amortize: bool, threads: usize) -> FleetEngine {
    let mut engine = FleetEngine::new(FleetConfig {
        threads,
        amortize,
        ..FleetConfig::default()
    });
    for (name, plan) in floorplans {
        engine.register(name.clone(), plan.clone());
    }
    engine
}

/// Max absolute block-temperature gap between two runs of the same job
/// queue (steady operating points and transient final states).
fn max_temperature_gap(a: &FleetReport, b: &FleetReport) -> f64 {
    use ptherm_core::cosim::SweepOutcome;
    let mut gap: f64 = 0.0;
    let mut pairwise = |xs: &[f64], ys: &[f64]| {
        for (x, y) in xs.iter().zip(ys) {
            gap = gap.max((x - y).abs());
        }
    };
    for (ra, rb) in a.jobs.iter().zip(&b.jobs) {
        match (&ra.outcome, &rb.outcome) {
            (Ok(JobReport::Steady(p)), Ok(JobReport::Steady(q))) => {
                for (oa, ob) in p.outcomes.iter().zip(&q.outcomes) {
                    match (oa, ob) {
                        (
                            SweepOutcome::Converged {
                                block_temperatures: ta,
                                ..
                            },
                            SweepOutcome::Converged {
                                block_temperatures: tb,
                                ..
                            },
                        ) => pairwise(ta, tb),
                        // Non-converged pairs must at least agree on the
                        // outcome — a cache flipping one scenario from
                        // converged to runaway must poison the audit,
                        // not be skipped.
                        (oa, ob) if oa == ob => {}
                        _ => return f64::INFINITY,
                    }
                }
            }
            (Ok(JobReport::Transient(p)), Ok(JobReport::Transient(q))) => {
                for (oa, ob) in p.outcomes.iter().zip(&q.outcomes) {
                    match (oa.final_temperatures(), ob.final_temperatures()) {
                        (Some(ta), Some(tb)) => pairwise(ta, tb),
                        _ if oa == ob => {}
                        _ => return f64::INFINITY,
                    }
                }
            }
            _ => return f64::INFINITY, // outcome kinds diverged: report loudly
        }
    }
    gap
}

fn bench(quick: bool) -> i32 {
    let cfg = if quick {
        BenchConfig {
            floorplans: 4,
            tile_rows: 3,
            tile_cols: 3,
            jobs_per_floorplan: 6,
            speedup_bar: 1.2,
            label: "quick (CI smoke): 4 floorplans x 9 blocks, 24 mixed jobs",
        }
    } else {
        BenchConfig {
            floorplans: 16,
            tile_rows: 6,
            tile_cols: 6,
            jobs_per_floorplan: 24,
            speedup_bar: 10.0,
            label: "16 floorplans x 36 blocks, 384 mixed jobs",
        }
    };
    header(
        "Fleet",
        &format!(
            "cache-amortized fleet vs factor-per-job, {} ({} threads)",
            cfg.label,
            ptherm_par::default_threads()
        ),
    );

    let threads = ptherm_par::default_threads();
    let (floorplans, jobs) = synthetic_fleet(&cfg);
    let steady_jobs = jobs
        .iter()
        .filter(|j| matches!(j, JobSpec::Steady(_)))
        .count();
    let transient_jobs = jobs.len() - steady_jobs;

    // --- factor-per-job baseline (cold path oracle) ----------------------
    let cold_engine = build_engine(&floorplans, false, threads);
    let t0 = Instant::now();
    let cold = cold_engine.run(&jobs);
    let cold_s = t0.elapsed().as_secs_f64();

    // --- cache-amortized fleet -------------------------------------------
    // A fresh engine each run: the timed run pays its own compulsory
    // misses (one build per distinct floorplan), which is the honest
    // serving cost — not a pre-warmed cache.
    let amortized_engine = build_engine(&floorplans, true, threads);
    let t0 = Instant::now();
    let amortized = amortized_engine.run(&jobs);
    let amortized_s = t0.elapsed().as_secs_f64();

    let cold_jobs_per_s = jobs.len() as f64 / cold_s;
    let amortized_jobs_per_s = jobs.len() as f64 / amortized_s;
    let speedup = amortized_jobs_per_s / cold_jobs_per_s;
    let gap = max_temperature_gap(&amortized, &cold);
    let steady_stats = amortized.steady_cache;
    let transient_stats = amortized.transient_cache;

    let mut out = Table::new(["configuration", "jobs", "wall_s", "jobs_per_s", "speedup"]);
    out.row([
        "factor-per-job (cold)".into(),
        jobs.len().to_string(),
        format!("{cold_s:.3}"),
        format!("{cold_jobs_per_s:.1}"),
        "1.0".into(),
    ]);
    out.row([
        format!(
            "cache-amortized, {} entries",
            amortized_engine.config().cache_capacity
        ),
        jobs.len().to_string(),
        format!("{amortized_s:.3}"),
        format!("{amortized_jobs_per_s:.1}"),
        format!("{speedup:.1}"),
    ]);
    println!("{}", out.render());
    println!(
        "steady cache: {} hits / {} misses / {} evictions; transient cache: {} / {} / {}; {} steals",
        steady_stats.hits,
        steady_stats.misses,
        steady_stats.evictions,
        transient_stats.hits,
        transient_stats.misses,
        transient_stats.evictions,
        amortized.steals,
    );

    // --- BENCH_fleet.json -------------------------------------------------
    let mut json = JsonObject::new();
    json.string("bench", "fleet")
        .string("mode", if quick { "quick" } else { "full" })
        .integer("floorplans", cfg.floorplans as u64)
        .integer(
            "blocks_per_floorplan",
            (cfg.tile_rows * cfg.tile_cols) as u64,
        )
        .integer("jobs", jobs.len() as u64)
        .integer("steady_jobs", steady_jobs as u64)
        .integer("transient_jobs", transient_jobs as u64)
        .integer("threads", threads as u64)
        .integer(
            "cache_capacity",
            amortized_engine.config().cache_capacity as u64,
        )
        .number("cold_wall_s", cold_s)
        .number("amortized_wall_s", amortized_s)
        .number("cold_jobs_per_s", cold_jobs_per_s)
        .number("amortized_jobs_per_s", amortized_jobs_per_s)
        .number("speedup_amortized_vs_factor_per_job", speedup)
        .integer("steady_cache_hits", steady_stats.hits)
        .integer("steady_cache_misses", steady_stats.misses)
        .integer("steady_cache_evictions", steady_stats.evictions)
        .integer("transient_cache_hits", transient_stats.hits)
        .integer("transient_cache_misses", transient_stats.misses)
        .integer("transient_cache_evictions", transient_stats.evictions)
        .integer("steals", amortized.steals)
        .number("max_temp_gap_vs_cold_k", gap);
    let default_path = if quick {
        "BENCH_fleet.quick.json"
    } else {
        "BENCH_fleet.json"
    };
    let json_path = std::env::var("BENCH_FLEET_JSON").unwrap_or_else(|_| default_path.into());
    match std::fs::write(&json_path, json.render()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    let checks = vec![
        json.finiteness_check(),
        ShapeCheck::new(
            "every job resolves in both runs",
            cold.ok_count() == jobs.len() && amortized.ok_count() == jobs.len(),
            format!(
                "{}/{} cold, {}/{} amortized",
                cold.ok_count(),
                jobs.len(),
                amortized.ok_count(),
                jobs.len()
            ),
        ),
        ShapeCheck::new(
            format!(
                "cache-amortized fleet >= {}x factor-per-job throughput",
                cfg.speedup_bar
            ),
            speedup >= cfg.speedup_bar,
            format!("{amortized_jobs_per_s:.1} vs {cold_jobs_per_s:.1} jobs/s ({speedup:.2}x)"),
        ),
        ShapeCheck::new(
            "cache hits never change results (max gap vs cold oracle <= 1e-9 K)",
            gap <= 1e-9,
            format!("max block-temperature gap {gap:.2e} K"),
        ),
        ShapeCheck::new(
            "steady cache amortizes: one miss per distinct floorplan",
            steady_stats.misses == cfg.floorplans as u64
                && steady_stats.hits + steady_stats.misses == jobs.len() as u64,
            format!(
                "{} misses for {} floorplans, {} hits",
                steady_stats.misses, cfg.floorplans, steady_stats.hits
            ),
        ),
        ShapeCheck::new(
            "transient cache amortizes: one factorization per distinct propagator",
            transient_stats.misses == cfg.floorplans as u64
                && transient_stats.hits + transient_stats.misses == transient_jobs as u64,
            format!(
                "{} misses for {} floorplans, {} hits",
                transient_stats.misses, cfg.floorplans, transient_stats.hits
            ),
        ),
        ShapeCheck::new(
            "the cold run never touches the cache",
            cold.steady_cache == ptherm_fleet::CacheStats::default()
                && cold.transient_cache == ptherm_fleet::CacheStats::default(),
            format!(
                "cold steady counters {:?}",
                (cold.steady_cache.hits, cold.steady_cache.misses)
            ),
        ),
    ];
    report(&checks)
}
