//! Fig. 1 — power vs technology scaling at three temperatures.
//!
//! The paper opens with Duarte et al.'s scaling study: dynamic power grows
//! slowly across generations while static power explodes, overtaking it in
//! the sub-100 nm regime — and the crossover node moves *earlier* as
//! junction temperature rises. Regenerated here from the embedded
//! ITRS-like scaling table; the static series is computed twice, once from
//! the closed-form single-device estimate and once by running the paper's
//! own stack-collapsing model on an inverter-dominated gate mix in each
//! node's expanded technology kit.

use ptherm_bench::{eng, header, report, ShapeCheck, Table};
use ptherm_core::leakage::GateLeakageModel;
use ptherm_netlist::cells;
use ptherm_tech::constants::celsius_to_kelvin;
use ptherm_tech::ScalingTable;

fn main() {
    header(
        "Fig. 1",
        "dynamic vs static power across nodes 0.8 um -> 0.025 um at 25/100/150 C",
    );
    let table = ScalingTable::itrs_like();
    let temps = [25.0, 100.0, 150.0].map(celsius_to_kelvin);

    let mut out = Table::new([
        "node_um",
        "dynamic_W",
        "static25_W",
        "static100_W",
        "static150_W",
        "model_static25_W",
    ]);
    let mut dynamic = Vec::new();
    let mut statics: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for node in &table.nodes {
        let d = node.dynamic_power();
        dynamic.push(d);
        for (i, &t) in temps.iter().enumerate() {
            statics[i].push(node.static_power(t));
        }
        // Full stack-collapsing model on a representative gate mix:
        // an inverter + nand2 + nand3 blend, averaged over input vectors.
        let tech = node.technology();
        let model = GateLeakageModel::new(&tech);
        let mix = [
            (cells::inv(&tech), 0.5),
            (cells::nand(2, &tech), 0.35),
            (cells::nand(3, &tech), 0.15),
        ];
        let per_gate: f64 = mix
            .iter()
            .map(|(cell, frac)| {
                frac * model
                    .gate_average_static_power(cell, temps[0])
                    .expect("library cells are complementary")
            })
            .sum();
        let full_model = per_gate * node.n_gates;
        out.row([
            format!("{:.3}", node.node * 1e6),
            eng(d),
            eng(statics[0].last().copied().expect("filled")),
            eng(statics[1].last().copied().expect("filled")),
            eng(statics[2].last().copied().expect("filled")),
            eng(full_model),
        ]);
    }
    println!("{}", out.render());

    let cross = |s: &[f64]| (0..s.len()).find(|&i| s[i] > dynamic[i]);
    let c150 = cross(&statics[2]);
    let c100 = cross(&statics[1]);
    let c25 = cross(&statics[0]);
    let node_um = |idx: Option<usize>| {
        idx.map(|i| table.nodes[i].node * 1e6)
            .map(|v| format!("{v:.3} um"))
            .unwrap_or_else(|| "none".into())
    };
    println!(
        "crossover nodes: 150C -> {}, 100C -> {}, 25C -> {}",
        node_um(c150),
        node_um(c100),
        node_um(c25)
    );

    let checks = vec![
        ShapeCheck::new(
            "dynamic power grows mildly and monotonically with scaling",
            dynamic.windows(2).all(|w| w[1] > 0.9 * w[0]),
            format!(
                "{:.1} W -> {:.1} W",
                dynamic[0],
                dynamic.last().expect("nonempty")
            ),
        ),
        ShapeCheck::new(
            "static power at 150 C overtakes dynamic power in the sub-100nm regime",
            c150.is_some_and(|i| table.nodes[i].node <= 0.1e-6),
            format!("crossover at {}", node_um(c150)),
        ),
        ShapeCheck::new(
            "hotter junctions cross earlier (150C before 100C before 25C)",
            match (c150, c100) {
                (Some(a), Some(b)) => a <= b && c25.is_none_or(|c| b <= c),
                _ => false,
            },
            format!("{} / {} / {}", node_um(c150), node_um(c100), node_um(c25)),
        ),
        ShapeCheck::new(
            "static power is negligible (<1% of dynamic) at the 0.8 um node",
            statics[2][0] < 0.01 * dynamic[0],
            format!("{:.4} W vs {:.1} W at 150 C", statics[2][0], dynamic[0]),
        ),
        ShapeCheck::new(
            "full collapsing model agrees with the closed-form estimate within 10x",
            {
                // Spot-check the 0.05 um node, 25 C.
                let i = 7;
                let tech = table.nodes[i].technology();
                let model = GateLeakageModel::new(&tech);
                let inv = cells::inv(&tech);
                let per_gate = model
                    .gate_average_static_power(&inv, temps[0])
                    .expect("complementary");
                let full = per_gate * table.nodes[i].n_gates;
                let simple = statics[0][i];
                full / simple > 0.1 && full / simple < 10.0
            },
            "order-of-magnitude consistency of the two static estimates",
        ),
    ];
    std::process::exit(report(&checks));
}
