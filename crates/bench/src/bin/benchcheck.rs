//! CI regression gate over `BENCH_*.json` artifacts.
//!
//! ```text
//! benchcheck <bounds.json> [...more bounds files]
//! ```
//!
//! Each bounds file (format: `ptherm_bench::check`) lists artifacts and
//! the min/max tolerance bounds their fields must respect. Exit status
//! is non-zero when any bound fails — wiring this after the quick
//! benches in the `bench-smoke` CI job turns a perf or accuracy
//! regression into a red build instead of a quietly drifting artifact.

use ptherm_bench::check::{check_artifact, parse_bounds};
use ptherm_bench::{header, report, ShapeCheck};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: benchcheck <bounds.json> [...more bounds files]");
        std::process::exit(2);
    }
    header("Benchcheck", "BENCH_*.json artifacts vs tolerance bounds");
    let mut checks: Vec<ShapeCheck> = Vec::new();
    for path in &args {
        let specs = match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_bounds(&text) {
                Ok(specs) => specs,
                Err(e) => {
                    // A broken bounds file is itself a failing check, so
                    // the gate can never pass vacuously.
                    checks.push(ShapeCheck::new(format!("{path} parses"), false, e));
                    continue;
                }
            },
            Err(e) => {
                checks.push(ShapeCheck::new(format!("{path} is readable"), false, e));
                continue;
            }
        };
        println!("{path}: {} artifact spec(s)", specs.len());
        for spec in &specs {
            let content = std::fs::read_to_string(&spec.file).ok();
            checks.extend(check_artifact(spec, content.as_deref()));
        }
    }
    std::process::exit(report(&checks));
}
