//! Fig. 10 — thermal resistance of four nMOS devices: model prediction
//! (Eq. 18) vs measurement (bars in the paper; the virtual rig here).
//!
//! For each device width the rig captures noisy traces at several seeds;
//! the spread of the extracted `R_th` plays the role of the paper's error
//! bars. The model line is Eq. 18 per watt (centre temperature of the
//! dissipating rectangle); the "physical" value is the exact Eq. 17
//! integral averaged over the device, so the model is expected to sit
//! somewhat above the measured values (centre > average) — same
//! qualitative agreement the paper reports.

use ptherm_bench::{header, report, ShapeCheck, Table};
use ptherm_core::thermal::resistance::self_heating_resistance;
use ptherm_device::on_current::OnCurrentModel;
use ptherm_math::stats::{mean, std_dev};
use ptherm_tech::constants::celsius_to_kelvin;
use ptherm_tech::Technology;
use ptherm_thermal_num::rect_integral::rect_unit_integral;
use ptherm_thermal_num::transient::ThermalRc;
use ptherm_thermal_num::SelfHeatingRig;

fn true_rth(k: f64, w: f64, l: f64) -> f64 {
    let n = 15;
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            let x = w * ((i as f64 + 0.5) / n as f64 - 0.5);
            let y = l * ((j as f64 + 0.5) / n as f64 - 0.5);
            acc += rect_unit_integral(w, l, x, y, 0.0);
        }
    }
    acc / (n * n) as f64 / (2.0 * std::f64::consts::PI * k * w * l)
}

fn main() {
    header(
        "Fig. 10",
        "thermal resistance of four 0.35 um devices: Eq. 18 model vs virtual measurement",
    );
    let tech = Technology::cmos_350nm();
    let l = tech.nmos.l;
    let k_si = 148.0;
    let widths = [4e-6, 8e-6, 15e-6, 30e-6];
    let ambients = [30.0, 35.0, 40.0].map(celsius_to_kelvin);

    let mut table = Table::new([
        "W_um",
        "model_Rth_K/W",
        "measured_K/W",
        "sigma_K/W",
        "model/meas",
    ]);
    let mut ratios = Vec::new();
    let mut measured_means = Vec::new();
    for &w in &widths {
        let rth_true = true_rth(k_si, w, l);
        let thermal = ThermalRc {
            rth: rth_true,
            cth: 25e-3 / rth_true,
        };
        let mut extracted = Vec::new();
        for seed in 0..6u64 {
            let rig = SelfHeatingRig {
                dut_current: move |t| {
                    OnCurrentModel::new(&Technology::cmos_350nm().nmos, 300.0).current(w, 3.3, t)
                },
                supply: 3.3,
                sense_resistance: 15.0,
                thermal,
                gate_frequency: 3.0,
                noise_rms: 0.3e-3,
                seed: 77 + seed,
            };
            let cal = rig.calibrate(&ambients, 1024).expect("calibration");
            let m = rig.measure(ambients[0], cal, 2048).expect("measurement");
            extracted.push(m.rth);
        }
        let meas = mean(&extracted);
        let sigma = std_dev(&extracted);
        let model = self_heating_resistance(k_si, w, l);
        ratios.push(model / meas);
        measured_means.push(meas);
        table.row([
            format!("{:.0}", w * 1e6),
            format!("{model:.0}"),
            format!("{meas:.0}"),
            format!("{sigma:.0}"),
            format!("{:.2}", model / meas),
        ]);
    }
    println!("{}", table.render());

    let monotone = measured_means.windows(2).all(|p| p[1] < p[0]);
    let worst_ratio = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let best_ratio = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let checks = vec![
        ShapeCheck::new(
            "measured Rth decreases with device width",
            monotone,
            format!("{measured_means:?}"),
        ),
        ShapeCheck::new(
            "model within a factor 1.6 of measurement for every device",
            best_ratio > 0.6 && worst_ratio < 1.6,
            format!("model/measured in [{best_ratio:.2}, {worst_ratio:.2}]"),
        ),
        ShapeCheck::new(
            "model sits at/above measurement (Eq. 18 is the CENTRE temperature; \
             the measurement averages over the channel)",
            best_ratio > 0.95,
            format!("min ratio {best_ratio:.2}"),
        ),
        ShapeCheck::new(
            "Rth magnitudes are device-scale (10^2 - 10^5 K/W)",
            measured_means.iter().all(|&r| r > 1e2 && r < 1e5),
            format!("{:.0} .. {:.0} K/W", measured_means[3], measured_means[0]),
        ),
    ];
    std::process::exit(report(&checks));
}
