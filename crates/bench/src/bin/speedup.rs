//! The paper's headline claim: analytical models give "faster estimation
//! and optimization" than numerical procedures (SPICE + PDE solvers).
//!
//! Three measurements on identical workloads:
//!
//! 1. **leakage** — per-vector gate OFF current: stack collapsing (Eq. 13)
//!    vs the exact Newton network solve,
//! 2. **thermal** — 3-block die surface temperature: Eq. 21 + images vs
//!    one 3-D finite-difference solve,
//! 3. **co-simulation** — the coupled fixed point: closed-form loop vs a
//!    numerical loop that re-solves the FDM field every iteration.
//!
//! Wall-clock ratios are hardware-dependent; the shape claim is that the
//! analytical route wins by orders of magnitude.

use ptherm_bench::{header, report, ShapeCheck, Table};
use ptherm_core::cosim::{ElectroThermalSolver, Workspace};
use ptherm_core::leakage::GateLeakageModel;
use ptherm_core::thermal::ThermalModel;
use ptherm_floorplan::Floorplan;
use ptherm_netlist::cells;
use ptherm_spice::network::solve_network;
use ptherm_tech::Technology;
use ptherm_thermal_num::FdmSolver;
use std::time::Instant;

fn time<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    header(
        "Speed",
        "analytical estimation vs numerical references (the paper's core claim)",
    );
    let tech = Technology::cmos_120nm();
    let model = GateLeakageModel::new(&tech);
    let library = cells::standard_library(&tech);

    // --- leakage ---------------------------------------------------------
    let vectors: Vec<(usize, Vec<bool>)> = library
        .iter()
        .enumerate()
        .flat_map(|(ci, cell)| {
            let n = cell.inputs().len();
            (0..(1u64 << n)).map(move |bits| {
                (
                    ci,
                    (0..n).map(|i| bits >> i & 1 == 1).collect::<Vec<bool>>(),
                )
            })
        })
        .collect();
    let t_analytic = time(
        || {
            for (ci, v) in &vectors {
                let _ = model.gate_off_current(&library[*ci], v, 300.0);
            }
        },
        20,
    );
    let t_exact = time(
        || {
            for (ci, v) in &vectors {
                if let Ok(blocking) = library[*ci].bound_blocking(v) {
                    let _ = solve_network(&tech, &blocking, 300.0);
                }
            }
        },
        2,
    );
    let leak_speedup = t_exact / t_analytic;

    // --- thermal ---------------------------------------------------------
    // Block-centre temperatures of a 16-block chip: the workload a floorplan
    // optimizer queries in its inner loop. FDM must solve the whole field.
    let fp16 = ptherm_floorplan::generator::tiled(
        ptherm_floorplan::ChipGeometry::paper_1mm(),
        4,
        4,
        0.02,
        0.08,
        1,
    )
    .expect("tiled floorplan");
    let fp = Floorplan::paper_three_blocks();
    let g = *fp.geometry();
    let n = 32;
    // Paper image configuration (single bottom mirror): what the paper's
    // CAD tool would run. The extended depth series trades ~5x evaluation
    // cost for accuracy (see fig6).
    let thermal = ThermalModel::paper_defaults(&fp16);
    let t_thermal_analytic = time(
        || {
            let _ = thermal.block_center_temperatures();
        },
        20,
    );
    let fdm = FdmSolver {
        die_w: g.width,
        die_l: g.length,
        thickness: g.thickness,
        k: g.conductivity,
        sink_temperature: g.sink_temperature,
        nx: n,
        ny: n,
        nz: 12,
    };
    let map = fp16.power_map(n, n);
    let t_thermal_fdm = time(
        || {
            let _ = fdm.solve(&map).expect("fdm solves");
        },
        2,
    );
    let thermal_speedup = t_thermal_fdm / t_thermal_analytic;

    // --- co-simulation ---------------------------------------------------
    // The analytical loop goes through the batched engine's operator path:
    // the influence matrix is precomputed once (as any sweep would), and
    // each solve is allocation-free Picard over a matrix-vector product.
    let power = |_i: usize, t: f64| 0.25 + 0.04 * ((t - 300.0) / 25.0).exp2();
    let solver = ElectroThermalSolver::new(fp.clone());
    let op = solver.operator();
    let mut ws = Workspace::new();
    let t_cosim_analytic = time(
        || {
            solver
                .solve_with(&op, &mut ws, power)
                .expect("cosim converges");
        },
        3,
    );
    // Numerical loop: FDM thermal solve per Picard iteration.
    let t_cosim_numeric = time(
        || {
            let mut plan = fp.clone();
            let mut temps = vec![g.sink_temperature; plan.blocks().len()];
            for _ in 0..12 {
                for (i, &t) in temps.iter().enumerate() {
                    plan.set_power(i, power(i, t));
                }
                let sol = fdm.solve(&plan.power_map(n, n)).expect("fdm solves");
                let fresh: Vec<f64> = plan
                    .blocks()
                    .iter()
                    .map(|b| sol.surface_at(b.cx, b.cy))
                    .collect();
                for i in 0..temps.len() {
                    temps[i] += 0.7 * (fresh[i] - temps[i]);
                }
            }
        },
        1,
    );
    let cosim_speedup = t_cosim_numeric / t_cosim_analytic;

    let mut table = Table::new(["task", "analytic_s", "numeric_s", "speedup_x"]);
    table.row([
        "gate leakage (library x vectors)".to_string(),
        format!("{t_analytic:.3e}"),
        format!("{t_exact:.3e}"),
        format!("{leak_speedup:.0}"),
    ]);
    table.row([
        "block temperatures (16-block chip)".to_string(),
        format!("{t_thermal_analytic:.3e}"),
        format!("{t_thermal_fdm:.3e}"),
        format!("{thermal_speedup:.0}"),
    ]);
    table.row([
        "electro-thermal fixed point".to_string(),
        format!("{t_cosim_analytic:.3e}"),
        format!("{t_cosim_numeric:.3e}"),
        format!("{cosim_speedup:.0}"),
    ]);
    println!("{}", table.render());

    let checks = vec![
        ShapeCheck::new(
            "analytical leakage beats the exact network solve by >= 10x",
            leak_speedup >= 10.0,
            format!("{leak_speedup:.0}x"),
        ),
        ShapeCheck::new(
            "analytical block temperatures beat the FDM solve by >= 10x",
            thermal_speedup >= 10.0,
            format!("{thermal_speedup:.0}x"),
        ),
        ShapeCheck::new(
            "closed-form co-simulation beats the numerical loop by >= 10x",
            cosim_speedup >= 10.0,
            format!("{cosim_speedup:.0}x"),
        ),
    ];
    std::process::exit(report(&checks));
}
