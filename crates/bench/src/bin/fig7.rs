//! Fig. 7 — temperature cross-section at the middle of the IC.
//!
//! The paper's claim: with the lateral images in place, the temperature
//! derivative — and therefore the heat flux — vanishes at both sides of
//! the IC. Regenerated for the 3-block floorplan, with the FDM reference
//! cross-section for context and a no-images ablation showing the property
//! disappear.

use ptherm_bench::{header, line_chart, report, ShapeCheck, Table};
use ptherm_core::thermal::ThermalModel;
use ptherm_floorplan::Floorplan;
use ptherm_thermal_num::FdmSolver;

fn main() {
    header(
        "Fig. 7",
        "mid-IC cross-section: zero temperature derivative at both die edges",
    );
    let fp = Floorplan::paper_three_blocks();
    let g = *fp.geometry();
    let y_cut = 0.55e-3; // through blocks A and B

    let model = ThermalModel::with_image_orders(&fp, 3, 9);
    let bare = ThermalModel::with_image_orders(&fp, 0, 9);
    let section = model.cross_section(y_cut, 64);
    println!("analytic cross-section T(x) at y = 0.55 mm:");
    println!("{}", line_chart(&section, 64, 14));

    let fdm = FdmSolver {
        die_w: g.width,
        die_l: g.length,
        thickness: g.thickness,
        k: g.conductivity,
        sink_temperature: g.sink_temperature,
        nx: 48,
        ny: 48,
        nz: 16,
    };
    let reference = fdm.solve(&fp.power_map(48, 48)).expect("fdm solves");

    let mut table = Table::new(["x_um", "analytic_K", "fdm_K"]);
    for i in (0..64).step_by(8) {
        let (x, t) = section[i];
        table.row([
            format!("{:.0}", x * 1e6),
            format!("{t:.3}"),
            format!("{:.3}", reference.surface_at(x, y_cut)),
        ]);
    }
    println!("{}", table.render());

    // Edge derivatives via one-sided differences at both sides.
    let h = 1e-6;
    let d_left = (model.temperature(h, y_cut) - model.temperature(0.0, y_cut)) / h;
    let d_right = (model.temperature(g.width, y_cut) - model.temperature(g.width - h, y_cut)) / h;
    // Interior gradient scale for comparison (flank of block B).
    let d_interior =
        ((model.temperature(0.60e-3, y_cut) - model.temperature(0.60e-3 - h, y_cut)) / h).abs();
    // Order-0 lateral images only reflect across the x = 0 / y = 0 axes,
    // so the RIGHT edge (x = W) loses its mirror: its flux must not vanish.
    let d_right_bare =
        (bare.temperature(g.width, y_cut) - bare.temperature(g.width - h, y_cut)) / h;

    let checks = vec![
        ShapeCheck::new(
            "left-edge temperature derivative vanishes (|dT/dx| < 5% of interior)",
            d_left.abs() < 0.05 * d_interior,
            format!("{d_left:.1} K/m vs interior {d_interior:.1} K/m"),
        ),
        ShapeCheck::new(
            "right-edge temperature derivative vanishes",
            d_right.abs() < 0.05 * d_interior,
            format!("{d_right:.1} K/m"),
        ),
        ShapeCheck::new(
            "without the far-side mirror the right-edge flux does not vanish",
            d_right_bare.abs() > 10.0 * d_right.abs(),
            format!("bare {d_right_bare:.1} K/m vs imaged {d_right:.1} K/m"),
        ),
        ShapeCheck::new(
            "cross-section peaks on/near the blocks it crosses",
            {
                let peak_x = section
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    .expect("nonempty")
                    .0;
                // Block A spans x in [0.1, 0.5] mm; block B [0.625, 0.875] mm.
                // Eq. 20's cap flattens the top along the source line, so the
                // argmax may sit up to ~100 um outside the footprint.
                let pad = 0.1e-3;
                (0.1e-3 - pad..0.5e-3 + pad).contains(&peak_x)
                    || (0.625e-3 - pad..0.875e-3 + pad).contains(&peak_x)
            },
            "peak within 100 um of a crossed block footprint",
        ),
    ];
    std::process::exit(report(&checks));
}
