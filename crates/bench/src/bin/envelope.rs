//! Scenario-space intelligence bench: warm-started Picard chaining and
//! runaway-envelope bisection vs their cold/exhaustive oracles,
//! emitting `BENCH_envelope.json`.
//!
//! Three audited measurements on the paper's three-block floorplan
//! under budgets that put the runaway boundary inside the swept Vdd
//! interval:
//!
//! * **warm iteration ratio** — total Picard iterations of a
//!   warm-started sweep over a monotone Vdd grid vs the identical cold
//!   sweep. Warm chaining seeds each scenario from its converged
//!   predecessor, so the ratio must sit below 1; the fixed points must
//!   agree to ≤ 1e-9 K (the warm-start contract `tests/
//!   warm_start_validation.rs` proves under proptest).
//! * **bisection solve ratio** — Picard solves spent by
//!   [`SweepEngine::map_envelope`] vs the exhaustive
//!   tolerance-stepped march it prices (`exhaustive_solves`), gated
//!   at ≤ 25% (`ci/bench_bounds.*`).
//! * **boundary agreement** — per fiber, an actually-executed
//!   exhaustive march must land its last-converged/first-runaway
//!   crossing inside the bisected bracket (zero disagreements).
//!
//! `docs/PERFORMANCE.md` documents the JSON schema.

use ptherm_bench::{header, report, JsonObject, ShapeCheck, Table};
use ptherm_core::cosim::{
    EnvelopeAxis, EnvelopeSpec, FiberBoundary, RunOptions, ScenarioGrid, SweepEngine, SweepOutcome,
};
use ptherm_floorplan::Floorplan;
use ptherm_tech::Technology;
use std::time::Instant;

struct BenchConfig {
    /// Monotone Vdd axis length for the warm-vs-cold sweep.
    warm_vdd_points: usize,
    /// Bracket tolerance for the envelope map.
    tolerance: f64,
    label: &'static str,
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    std::process::exit(bench(quick));
}

/// The bench engine: paper floorplan, iteration budget raised so
/// probes that land near the boundary (critical slowing down) still
/// classify instead of timing out.
fn engine(warm: bool) -> SweepEngine {
    SweepEngine::new(Floorplan::paper_three_blocks())
        .threads(ptherm_par::default_threads())
        .warm_start(warm)
        .configure(|s| s.max_iterations = 2000)
}

/// The warm-vs-cold engines additionally tighten the Picard tolerance
/// far below the 1e-9 K agreement gate, so warm/cold disagreement
/// would be a real seeding bug rather than loop-exit truncation.
fn tight_engine(warm: bool) -> SweepEngine {
    engine(warm).configure(|s| s.tolerance_k = 1e-10)
}

fn grid(vdd: Vec<f64>, activities: Vec<f64>, ambients: Vec<f64>) -> ScenarioGrid {
    ScenarioGrid::new(vec![Technology::cmos_120nm()])
        .vdd_scales(vdd)
        .activities(activities)
        .ambients_k(ambients)
}

/// Chip budgets that put the runaway boundary around Vdd-scale 1.8–3.4
/// for the fiber family below (activity 0.5/1.0, ambient 300/330 K).
const DYNAMIC_W: f64 = 1.0;
const LEAKAGE_W: f64 = 0.1;

/// The envelope's swept interval: converged at `LO` on every fiber,
/// runaway at `HI` on every fiber.
const LO: f64 = 1.0;
const HI: f64 = 4.0;

fn bench(quick: bool) -> i32 {
    let cfg = if quick {
        BenchConfig {
            warm_vdd_points: 16,
            tolerance: 0.05,
            label: "quick (CI smoke): 16-point warm fiber, 0.05 bracket",
        }
    } else {
        BenchConfig {
            warm_vdd_points: 48,
            tolerance: 0.02,
            label: "48-point warm fiber, 0.02 bracket",
        }
    };
    header(
        "Envelope",
        &format!(
            "warm-started Picard + runaway-envelope bisection vs cold/exhaustive oracles, {} \
             ({} threads)",
            cfg.label,
            ptherm_par::default_threads()
        ),
    );

    // --- warm vs cold iterations on a monotone sweep ----------------------
    // The whole grid sits below the runaway boundary so every lane
    // converges and the iteration totals compare like for like.
    let vdd: Vec<f64> = (0..cfg.warm_vdd_points)
        .map(|i| 0.8 + i as f64 * (1.7 - 0.8) / (cfg.warm_vdd_points - 1) as f64)
        .collect();
    let warm_grid = grid(vdd, vec![0.5, 1.0], vec![300.0, 330.0]);
    let cold_engine = tight_engine(false);
    let model = cold_engine.uniform_tech_power(DYNAMIC_W, LEAKAGE_W);
    let t0 = Instant::now();
    let cold = cold_engine.run(&warm_grid, &model);
    let cold_wall_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm = tight_engine(true).run(&warm_grid, &model);
    let warm_wall_s = t0.elapsed().as_secs_f64();

    let total_iterations = |report: &ptherm_core::cosim::SweepReport| {
        report
            .outcomes
            .iter()
            .map(|o| match o {
                SweepOutcome::Converged { iterations, .. } => *iterations,
                _ => 0,
            })
            .sum::<usize>()
    };
    let cold_iterations = total_iterations(&cold);
    let warm_iterations = total_iterations(&warm);
    let warm_iteration_ratio = warm_iterations as f64 / cold_iterations as f64;
    let max_warm_gap_k = cold
        .outcomes
        .iter()
        .zip(&warm.outcomes)
        .filter_map(|(c, w)| match (c, w) {
            (
                SweepOutcome::Converged {
                    block_temperatures: ct,
                    ..
                },
                SweepOutcome::Converged {
                    block_temperatures: wt,
                    ..
                },
            ) => Some(
                ct.iter()
                    .zip(wt)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max),
            ),
            _ => None,
        })
        .fold(0.0f64, f64::max);

    // --- envelope bisection vs the exhaustive oracle ----------------------
    let fiber_grid = grid(vec![LO], vec![0.5, 1.0], vec![300.0, 330.0]);
    let spec = EnvelopeSpec {
        axis: EnvelopeAxis::VddScale,
        lo: LO,
        hi: HI,
        tolerance: cfg.tolerance,
    };
    let envelope_engine = engine(false);
    let t0 = Instant::now();
    let envelope = envelope_engine
        .map_envelope(&fiber_grid, &model, &spec, RunOptions::new())
        .expect("valid spec");
    let envelope_wall_s = t0.elapsed().as_secs_f64();
    let bisection_solve_ratio = envelope.solves as f64 / envelope.exhaustive_solves as f64;

    // The oracle actually marches every fiber at tolerance resolution:
    // the bisected bracket must contain its last-converged /
    // first-runaway crossing.
    let steps = ((HI - LO) / cfg.tolerance).ceil() as usize + 1;
    let march: Vec<f64> = (0..steps)
        .map(|i| (LO + i as f64 * cfg.tolerance).min(HI))
        .collect();
    let t0 = Instant::now();
    let mut disagreements = 0usize;
    let mut marched_fibers = 0usize;
    for fiber in &envelope.fibers {
        let march_grid = grid(
            march.clone(),
            vec![fiber.scenario.activity],
            vec![fiber.scenario.ambient_k],
        );
        let oracle = envelope_engine.run(&march_grid, &model);
        marched_fibers += 1;
        let crossing = oracle
            .outcomes
            .iter()
            .position(|o| matches!(o, SweepOutcome::Runaway { .. }));
        let agrees = match (&fiber.boundary, crossing) {
            (FiberBoundary::Bracketed { converged, runaway }, Some(first_runaway)) => {
                // The march's last converged point sits at or below the
                // bracket's runaway edge, and its first runaway at or
                // above the converged edge (both within one step of
                // the bracket, which is itself ≤ tolerance wide).
                let march_runaway = march[first_runaway];
                first_runaway > 0
                    && march_runaway >= *converged - cfg.tolerance
                    && march_runaway <= *runaway + cfg.tolerance
            }
            (FiberBoundary::AllConverged, None) => true,
            (FiberBoundary::AllRunaway, Some(0)) => true,
            _ => false,
        };
        if !agrees {
            disagreements += 1;
        }
    }
    let exhaustive_wall_s = t0.elapsed().as_secs_f64();

    // --- transcript -------------------------------------------------------
    let mut out = Table::new(["measurement", "optimized", "oracle", "ratio"]);
    out.row([
        "warm vs cold Picard iterations".into(),
        warm_iterations.to_string(),
        cold_iterations.to_string(),
        format!("{warm_iteration_ratio:.3}"),
    ]);
    out.row([
        "bisection vs exhaustive solves".into(),
        envelope.solves.to_string(),
        envelope.exhaustive_solves.to_string(),
        format!("{bisection_solve_ratio:.3}"),
    ]);
    out.row([
        "envelope vs marched wall (s)".into(),
        format!("{envelope_wall_s:.3}"),
        format!("{exhaustive_wall_s:.3}"),
        format!("{:.3}", envelope_wall_s / exhaustive_wall_s),
    ]);
    println!("{}", out.render());
    for fiber in &envelope.fibers {
        println!(
            "fiber activity {:.2}, ambient {:.0} K: {}",
            fiber.scenario.activity,
            fiber.scenario.ambient_k,
            match &fiber.boundary {
                FiberBoundary::Bracketed { converged, runaway } =>
                    format!("boundary in ({converged:.3}, {runaway:.3}]"),
                other => other.kind().to_string(),
            }
        );
    }

    // --- BENCH_envelope.json ----------------------------------------------
    let mut json = JsonObject::new();
    json.string("bench", "envelope")
        .string("mode", if quick { "quick" } else { "full" })
        .integer("threads", ptherm_par::default_threads() as u64)
        .integer("warm_grid_scenarios", warm_grid.len() as u64)
        .integer("warm_total_iterations", warm_iterations as u64)
        .integer("cold_total_iterations", cold_iterations as u64)
        .number("warm_iteration_ratio", warm_iteration_ratio)
        .number("max_warm_temp_gap_k", max_warm_gap_k)
        .integer("envelope_fibers", envelope.len() as u64)
        .integer("bracketed_fibers", envelope.bracketed_count() as u64)
        .integer("envelope_solves", envelope.solves as u64)
        .integer("exhaustive_solves", envelope.exhaustive_solves as u64)
        .number("bisection_solve_ratio", bisection_solve_ratio)
        .integer("boundary_disagreements", disagreements as u64)
        .number("tolerance", cfg.tolerance)
        .number("cold_wall_s", cold_wall_s)
        .number("warm_wall_s", warm_wall_s)
        .number("envelope_wall_s", envelope_wall_s)
        .number("exhaustive_wall_s", exhaustive_wall_s);
    let default_path = if quick {
        "BENCH_envelope.quick.json"
    } else {
        "BENCH_envelope.json"
    };
    let json_path = std::env::var("BENCH_ENVELOPE_JSON").unwrap_or_else(|_| default_path.into());
    match std::fs::write(&json_path, json.render()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    let checks = vec![
        json.finiteness_check(),
        ShapeCheck::new(
            "the warm-vs-cold grid fully converges on both sides",
            cold.converged_count() == warm_grid.len() && warm.converged_count() == warm_grid.len(),
            format!(
                "cold {}/{}, warm {}/{}",
                cold.converged_count(),
                warm_grid.len(),
                warm.converged_count(),
                warm_grid.len()
            ),
        ),
        ShapeCheck::new(
            "warm chaining reduces total Picard iterations",
            warm_iteration_ratio < 1.0,
            format!("{warm_iteration_ratio:.3}x"),
        ),
        ShapeCheck::new(
            "warm and cold fixed points agree to 1e-9 K",
            max_warm_gap_k <= 1e-9,
            format!("max gap {max_warm_gap_k:.2e} K"),
        ),
        ShapeCheck::new(
            "every fiber brackets its boundary",
            envelope.bracketed_count() == envelope.len(),
            format!(
                "{}/{} bracketed",
                envelope.bracketed_count(),
                envelope.len()
            ),
        ),
        ShapeCheck::new(
            "bisection spends at most 25% of the exhaustive solves",
            bisection_solve_ratio <= 0.25,
            format!(
                "{} vs {} ({bisection_solve_ratio:.3}x)",
                envelope.solves, envelope.exhaustive_solves
            ),
        ),
        ShapeCheck::new(
            "the exhaustive march agrees with every bisected bracket",
            disagreements == 0 && marched_fibers == envelope.len(),
            format!("{disagreements} disagreements over {marched_fibers} fibers"),
        ),
    ];
    report(&checks)
}
