//! Fig. 6 — isothermal map of a 1 mm × 1 mm IC with three logic blocks,
//! boundary conditions enforced by the method of images.
//!
//! Regenerates the paper's map with the analytical model in two image
//! configurations — the paper's (single `−P` bottom mirror) and the
//! extended convergent depth series — and validates both against the 3-D
//! finite-difference solve of the same die.

use ptherm_bench::{header, heatmap, report, ShapeCheck, Table};
use ptherm_core::thermal::ThermalModel;
use ptherm_floorplan::Floorplan;
use ptherm_math::stats;
use ptherm_thermal_num::FdmSolver;

fn main() {
    header(
        "Fig. 6",
        "isothermal map of the 3-block 1 mm IC (analytic + images vs 3-D FDM)",
    );
    let fp = Floorplan::paper_three_blocks();
    let g = *fp.geometry();
    let n = 32;

    // Analytic surface maps: paper mode and extended depth series.
    let paper = ThermalModel::paper_defaults(&fp);
    let extended = ThermalModel::with_image_orders(&fp, 3, 9);
    let map_paper = paper.surface_grid(n, n);
    let map_ext = extended.surface_grid(n, n);
    println!("analytic surface map (paper mode: lateral order 2, single -P mirror):");
    println!("{}", heatmap(&map_paper, n, n));

    // FDM reference on the same grid.
    let fdm = FdmSolver {
        die_w: g.width,
        die_l: g.length,
        thickness: g.thickness,
        k: g.conductivity,
        sink_temperature: g.sink_temperature,
        nx: n,
        ny: n,
        nz: 24,
    };
    let reference = fdm.solve(&fp.power_map(n, n)).expect("fdm solves");
    let ref_grid: Vec<f64> = (0..n * n)
        .map(|i| reference.surface_cell(i % n, i / n))
        .collect();
    println!("FDM reference map:");
    println!("{}", heatmap(&ref_grid, n, n));

    // Rise-level comparison over the interior (cells with meaningful rise).
    let rises = |m: &[f64]| -> Vec<f64> { m.iter().map(|t| t - g.sink_temperature).collect() };
    let (ra, re, rr) = (rises(&map_paper), rises(&map_ext), rises(&ref_grid));
    let peak_r = rr.iter().cloned().fold(f64::MIN, f64::max);
    let mask: Vec<usize> = (0..rr.len()).filter(|&i| rr[i] > 0.2 * peak_r).collect();
    let sel = |v: &[f64]| -> Vec<f64> { mask.iter().map(|&i| v[i]).collect() };
    let err_paper = stats::mean_relative_error(&sel(&ra), &sel(&rr), 1e-9).expect("metric");
    let err_ext = stats::mean_relative_error(&sel(&re), &sel(&rr), 1e-9).expect("metric");
    let peak_a = ra.iter().cloned().fold(f64::MIN, f64::max);
    let peak_e = re.iter().cloned().fold(f64::MIN, f64::max);

    let mut summary = Table::new(["model", "peak_rise_K", "mean_rel_err_vs_fdm_%"]);
    summary.row([
        "paper (z=1)".to_string(),
        format!("{peak_a:.2}"),
        format!("{:.1}", err_paper * 100.0),
    ]);
    summary.row([
        "extended (z=9)".to_string(),
        format!("{peak_e:.2}"),
        format!("{:.1}", err_ext * 100.0),
    ]);
    summary.row([
        "FDM reference".to_string(),
        format!("{peak_r:.2}"),
        "-".to_string(),
    ]);
    println!("{}", summary.render());

    // Peak location agreement (paper mode).
    let argmax = |v: &[f64]| {
        let mut best = (0usize, f64::MIN);
        for (i, &x) in v.iter().enumerate() {
            if x > best.1 {
                best = (i, x);
            }
        }
        (best.0 % n, best.0 / n)
    };
    let (ax, ay) = argmax(&ra);
    let (rx, ry) = argmax(&rr);

    // Image-order ablation at the hottest block centre.
    let mut ablation = Table::new(["lateral", "z", "T_center_K"]);
    for (lat, z) in [(0, 1), (1, 1), (2, 1), (3, 1), (2, 3), (2, 5), (2, 9)] {
        let m = ThermalModel::with_image_orders(&fp, lat, z);
        ablation.row([
            lat.to_string(),
            z.to_string(),
            format!("{:.3}", m.temperature(0.30e-3, 0.70e-3)),
        ]);
    }
    println!("image-configuration ablation (hottest block centre):");
    println!("{}", ablation.render());

    let checks = vec![
        ShapeCheck::new(
            "hot spots sit on the right blocks (peak within 3 cells of FDM's)",
            (ax as i64 - rx as i64).abs() <= 3 && (ay as i64 - ry as i64).abs() <= 3,
            format!(
                "analytic ({ax},{ay}) vs fdm ({rx},{ry}) — the Eq. 20 cap flattens \
                 block tops, biasing the argmax toward the neighbour-facing edge"
            ),
        ),
        ShapeCheck::new(
            "extended-mode peak rise within 40% of FDM",
            (peak_e - peak_r).abs() / peak_r < 0.40,
            format!(
                "{peak_e:.2} K vs {peak_r:.2} K — Eq. 18 assumes semi-infinite \
                 spreading; at block-size ~ substrate-thickness it overestimates"
            ),
        ),
        ShapeCheck::new(
            "extended-mode mean rise error below 50% on the warm interior",
            err_ext < 0.50,
            format!("{:.1}%", err_ext * 100.0),
        ),
        ShapeCheck::new(
            "paper mode (single mirror) overestimates but stays shape-correct",
            peak_a > peak_r && err_paper < 1.5,
            format!(
                "peak {peak_a:.2} vs {peak_r:.2} K, mean err {:.0}%",
                err_paper * 100.0
            ),
        ),
        ShapeCheck::new(
            "deeper image series improves accuracy over the paper's single mirror",
            err_ext < err_paper,
            format!("{:.1}% vs {:.1}%", err_ext * 100.0, err_paper * 100.0),
        ),
    ];
    std::process::exit(report(&checks));
}
