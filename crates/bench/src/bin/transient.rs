//! Transient-engine throughput: the chip-scale batched implicit
//! electro-thermal transient ([`SweepEngine::run_transient`]) against the
//! per-scenario explicit RK4 reference, with a machine-readable
//! `BENCH_transient.json` for the perf trajectory.
//!
//! Two discretizations of the same ODE `C dT/dt = P(T, t) − R⁻¹(T −
//! T_amb)`:
//!
//! 1. **implicit batched** — `Φ`/`Q` precomputed from one LU
//!    factorization, B scenario×waveform lanes advanced per step through
//!    two GEMMs; the step size is an accuracy knob, so the stiff fastest
//!    block never caps it,
//! 2. **explicit RK4 reference** — textbook integration whose step is
//!    stability-bound at `h·λ_max ≲ 1` ([`TransientRk4Reference`]), run
//!    per scenario on the same worker fan-out.
//!
//! Audits: on a 1-block floorplan the engine must land on the analytic
//! Fig. 9 step response (`R_th·P·(1−e^{−t/τ})`, ≤ 1e-6 relative) and on
//! the lumped `ptherm-thermal-num` integration it mirrors; the batched
//! path must match the per-scenario implicit oracle to ≤ 1e-9 K and the
//! RK4 reference within the documented discretization tolerance. Speedup
//! bar: ≥ 5× over the reference in full mode (≥ 1× in `--quick` CI
//! smoke, which writes `BENCH_transient.quick.json`; override either
//! path with `BENCH_TRANSIENT_JSON`). Schema in `docs/PERFORMANCE.md`.

use ptherm_bench::{header, report, JsonObject, ShapeCheck, Table};
use ptherm_core::cosim::sweep::{ScenarioGrid, SweepEngine};
use ptherm_core::cosim::transient::{DriveWaveform, TransientConfig, TransientRk4Reference};
use ptherm_core::cosim::ThermalOperator;
use ptherm_core::thermal::capacitance::silicon_block_capacitances;
use ptherm_floorplan::{generator, Block, ChipGeometry, Floorplan};
use ptherm_math::ode::ImplicitScheme;
use ptherm_tech::ScalingTable;
use ptherm_thermal_num::transient::ThermalRc;
use std::time::Instant;

struct Config {
    tile_rows: usize,
    tile_cols: usize,
    ambients: usize,
    steps: usize,
    label: &'static str,
}

/// Smallest diagonal block time constant of `op` under `caps`, s.
fn min_tau(op: &ThermalOperator, caps: &[f64]) -> f64 {
    (0..caps.len())
        .map(|i| op.influence()[(i, i)] * caps[i])
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Config {
            tile_rows: 2,
            tile_cols: 4,
            ambients: 2,
            steps: 200,
            label: "quick (CI smoke): 8 blocks",
        }
    } else {
        Config {
            tile_rows: 8,
            tile_cols: 8,
            ambients: 3,
            steps: 500,
            label: "64 blocks",
        }
    };
    header(
        "Transient",
        &format!(
            "batched implicit chip transient vs per-scenario RK4 reference, {}",
            cfg.label
        ),
    );

    // ---- audit: 1-block chip engine vs the analytic Fig. 9 response ----
    let one_block = Floorplan::new(
        ChipGeometry::paper_1mm(),
        vec![Block::new("b0", 0.5e-3, 0.5e-3, 0.4e-3, 0.4e-3, 0.0)],
    )
    .expect("valid plan");
    let one_engine = SweepEngine::new(one_block.clone()).threads(1);
    let one_caps = silicon_block_capacitances(&one_block);
    let rth = one_engine.operator().influence()[(0, 0)];
    let tau = rth * one_caps[0];
    let p_step = 0.3;
    let steady = rth * p_step;
    let analytic_steps = 2000usize;
    let analytic_cfg = TransientConfig::new(5.0 * tau / analytic_steps as f64, analytic_steps)
        .scheme(ImplicitScheme::Trapezoidal)
        .record_stride(1);
    let one_grid = ScenarioGrid::new(vec![ptherm_tech::Technology::cmos_120nm()]);
    let flat_power = move |_: &ptherm_core::cosim::Scenario,
                           _: &ptherm_tech::Technology,
                           _: usize,
                           _: f64| { p_step };
    let one_report = one_engine
        .run_transient(&one_grid, &flat_power, &analytic_cfg)
        .expect("valid transient");
    let mut analytic_gap_rel: f64 = 0.0;
    let mut lumped_gap_rel: f64 = 0.0;
    {
        // The lumped thermal-num path on the identical RC (fine RK4).
        let rc = ThermalRc {
            rth,
            cth: one_caps[0],
        };
        let lumped = rc.simulate(|_, _| p_step, 5.0 * tau, 4000);
        let ptherm_core::cosim::TransientOutcome::Finished { samples, .. } =
            &one_report.outcomes[0]
        else {
            panic!("1-block transient must finish");
        };
        for s in samples {
            let exact = 300.0 + rc.step_response(p_step, s.time_s);
            analytic_gap_rel = analytic_gap_rel.max((s.peak_temperature_k - exact).abs() / steady);
            let num = 300.0 + lumped.sample(s.time_s)[0];
            lumped_gap_rel = lumped_gap_rel.max((s.peak_temperature_k - num).abs() / steady);
        }
    }
    println!(
        "1-block audit: |engine - analytic| <= {analytic_gap_rel:.2e} x dT_ss, |engine - lumped rk4| <= {lumped_gap_rel:.2e} x dT_ss"
    );

    // ---- the chip-scale workload ---------------------------------------
    let floorplan = generator::tiled(
        ChipGeometry::paper_1mm(),
        cfg.tile_rows,
        cfg.tile_cols,
        0.0,
        0.0,
        11,
    )
    .expect("valid tiling");
    let blocks = floorplan.blocks().len();
    let threads = ptherm_par::default_threads();
    let lanes = 64usize;
    let engine = SweepEngine::new(floorplan.clone())
        .threads(threads)
        .batch_lanes(lanes);
    let caps = silicon_block_capacitances(&floorplan);
    let tmin = min_tau(engine.operator(), &caps);

    let table = ScalingTable::itrs_like();
    let technologies: Vec<_> = table
        .nodes
        .iter()
        .filter(|n| n.node <= 0.18e-6)
        .take(2)
        .map(|n| n.technology())
        .collect();
    let grid = ScenarioGrid::new(technologies)
        .vdd_scales(vec![0.9, 1.1])
        .activities(vec![0.5, 1.0])
        .ambients_k((0..cfg.ambients).map(|i| 290.0 + 10.0 * i as f64).collect());
    let model = engine.uniform_tech_power(0.45, 0.04).prepared_for(&grid);

    // Long stiff transient: dt = 2x the fastest block tau (far past any
    // explicit stability limit), gated and stepped drives. The gating
    // fits 1.75 periods in the span so the run ends mid-OFF, decayed —
    // ending exactly on a gate edge would make the audit measure the
    // worst-case ±dt edge skew instead of the integration quality.
    let dt = 2.0 * tmin;
    let span = dt * cfg.steps as f64;
    let waveforms = vec![
        DriveWaveform::Step,
        DriveWaveform::SquareWave {
            frequency: 1.75 / span,
            duty: 0.5,
        },
    ];
    let run_cfg = TransientConfig::new(dt, cfg.steps)
        .scheme(ImplicitScheme::BackwardEuler)
        .waveforms(waveforms.clone());
    let transients_total = grid.len() * waveforms.len();
    let duration = run_cfg.duration();

    // ---- batched implicit engine (best-of-N) ---------------------------
    const TIMED_RUNS: usize = 3;
    let mut implicit_s = f64::INFINITY;
    let mut implicit_report = engine
        .run_transient(&grid, &model, &run_cfg)
        .expect("valid transient"); // warm-up
    for _ in 0..TIMED_RUNS {
        let t0 = Instant::now();
        implicit_report = engine
            .run_transient(&grid, &model, &run_cfg)
            .expect("valid transient");
        implicit_s = implicit_s.min(t0.elapsed().as_secs_f64());
    }
    let lane_steps = (transients_total * cfg.steps) as f64;
    let implicit_steps_per_s = lane_steps / implicit_s;

    // ---- per-scenario implicit oracle ----------------------------------
    let oracle_report = engine
        .run_transient_per_scenario(&grid, &model, &run_cfg)
        .expect("valid transient");

    // ---- explicit RK4 reference ----------------------------------------
    let reference = TransientRk4Reference::new(engine.operator(), &caps).expect("invertible");
    let rk4_steps = reference.stable_steps(duration).max(cfg.steps);
    let mut rk4_s = f64::INFINITY;
    let mut rk4_report = engine
        .run_transient_rk4(&grid, &model, &run_cfg)
        .expect("valid transient"); // warm-up
    for _ in 0..TIMED_RUNS {
        let t0 = Instant::now();
        rk4_report = engine
            .run_transient_rk4(&grid, &model, &run_cfg)
            .expect("valid transient");
        rk4_s = rk4_s.min(t0.elapsed().as_secs_f64());
    }
    let speedup_vs_rk4 = rk4_s / implicit_s;

    // ---- audits ---------------------------------------------------------
    // Batched vs per-scenario implicit oracle: identical per-lane
    // arithmetic modulo the FMA/expv ULP contract.
    let mut max_gap_oracle: f64 = 0.0;
    for (b, o) in implicit_report.outcomes.iter().zip(&oracle_report.outcomes) {
        match (b.final_temperatures(), o.final_temperatures()) {
            (Some(bt), Some(ot)) => {
                for (x, y) in bt.iter().zip(ot) {
                    max_gap_oracle = max_gap_oracle.max((x - y).abs());
                }
            }
            _ => max_gap_oracle = f64::INFINITY,
        }
    }
    // Batched vs RK4 reference: same physics, coarse-vs-fine
    // discretization, measured relative to each lane's **peak
    // excursion above its own ambient** (the physically meaningful
    // scale; a fixed offset in the denominator would silently loosen
    // the tolerance). Step-drive lanes are smooth and settled, so they
    // must agree tightly; square-wave lanes additionally carry a ±dt
    // skew in where the implicit scheme samples the gate edge, so
    // their documented tolerance is one decay-fraction coarser (see
    // docs/PERFORMANCE.md).
    let sink_k = engine.operator().sink_temperature();
    let mut max_gap_rk4_rel_step: f64 = 0.0;
    let mut max_gap_rk4_rel_gated: f64 = 0.0;
    for (id, (b, r)) in implicit_report
        .outcomes
        .iter()
        .zip(&rk4_report.outcomes)
        .enumerate()
    {
        let ambient = grid.scenario(id / waveforms.len(), sink_k).ambient_k;
        let excursion = r
            .peak_temperature()
            .map_or(1.0, |pk| (pk - ambient).max(1e-3));
        let gap = match (b.final_temperatures(), r.final_temperatures()) {
            (Some(bt), Some(rt)) => bt
                .iter()
                .zip(rt)
                .map(|(x, y)| (x - y).abs() / excursion)
                .fold(0.0, f64::max),
            _ => f64::INFINITY,
        };
        if id % waveforms.len() == 0 {
            max_gap_rk4_rel_step = max_gap_rk4_rel_step.max(gap);
        } else {
            max_gap_rk4_rel_gated = max_gap_rk4_rel_gated.max(gap);
        }
    }

    let mut out = Table::new([
        "configuration",
        "transients",
        "steps",
        "wall_s",
        "lane_steps_per_s",
    ]);
    out.row([
        format!("rk4 reference, {threads} threads (stability-capped)"),
        transients_total.to_string(),
        rk4_steps.to_string(),
        format!("{rk4_s:.3}"),
        format!("{:.0}", (transients_total * rk4_steps) as f64 / rk4_s),
    ]);
    out.row([
        format!("batched implicit, {threads} threads, {lanes} lanes"),
        transients_total.to_string(),
        cfg.steps.to_string(),
        format!("{implicit_s:.3}"),
        format!("{implicit_steps_per_s:.0}"),
    ]);
    println!("{}", out.render());
    println!(
        "implicit dt = {:.2e} s (2x min block tau {tmin:.2e} s); rk4 needs {rk4_steps} steps for the same {duration:.2e} s span; speedup {speedup_vs_rk4:.2}x",
        run_cfg.dt
    );
    println!(
        "sweep outcome: {implicit_report} (peak {:.1} K)",
        implicit_report.max_peak_temperature().unwrap_or(f64::NAN)
    );

    // ---- BENCH_transient.json -------------------------------------------
    let mut json = JsonObject::new();
    json.string("bench", "transient")
        .string("mode", if quick { "quick" } else { "full" })
        .integer("blocks", blocks as u64)
        .integer("transients", transients_total as u64)
        .integer("waveforms", waveforms.len() as u64)
        .integer("threads", threads as u64)
        .integer("batch_lanes", lanes as u64)
        .string("simd", &format!("{:?}", ptherm_math::simd::isa()))
        .string("scheme", "backward_euler")
        .number("dt_s", run_cfg.dt)
        .integer("steps", cfg.steps as u64)
        .number("min_block_tau_s", tmin)
        .integer("rk4_steps", rk4_steps as u64)
        .number("implicit_wall_s", implicit_s)
        .number("rk4_wall_s", rk4_s)
        .number("implicit_lane_steps_per_s", implicit_steps_per_s)
        .number("speedup_batched_vs_rk4", speedup_vs_rk4)
        .number("max_final_temp_gap_vs_oracle_k", max_gap_oracle)
        .number("max_final_temp_gap_vs_rk4_step_rel", max_gap_rk4_rel_step)
        .number("max_final_temp_gap_vs_rk4_gated_rel", max_gap_rk4_rel_gated)
        .number("one_block_analytic_gap_rel", analytic_gap_rel)
        .number("one_block_lumped_gap_rel", lumped_gap_rel);
    let default_path = if quick {
        "BENCH_transient.quick.json"
    } else {
        "BENCH_transient.json"
    };
    let json_path = std::env::var("BENCH_TRANSIENT_JSON").unwrap_or_else(|_| default_path.into());
    match std::fs::write(&json_path, json.render()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    let speedup_bar = if quick { 1.0 } else { 5.0 };
    let checks = vec![
        json.finiteness_check(),
        ShapeCheck::new(
            "1-block engine matches the analytic step response (<= 1e-6 rel)",
            analytic_gap_rel <= 1e-6,
            format!("max gap {analytic_gap_rel:.2e} x dT_ss"),
        ),
        ShapeCheck::new(
            "1-block engine matches the lumped thermal-num integration (<= 1e-5 rel)",
            lumped_gap_rel <= 1e-5,
            format!("max gap {lumped_gap_rel:.2e} x dT_ss"),
        ),
        ShapeCheck::new(
            "every transient finishes (no divergence, no bad power)",
            implicit_report.finished_count() == implicit_report.len(),
            format!("{implicit_report}"),
        ),
        ShapeCheck::new(
            "batched matches the per-scenario implicit oracle (<= 1e-9 K)",
            max_gap_oracle <= 1e-9,
            format!("max final-temperature gap {max_gap_oracle:.2e} K"),
        ),
        ShapeCheck::new(
            "batched matches the rk4 reference on step drives (<= 1e-2 of the peak excursion)",
            max_gap_rk4_rel_step <= 1e-2,
            format!("max relative final-temperature gap {max_gap_rk4_rel_step:.2e}"),
        ),
        ShapeCheck::new(
            "batched matches the rk4 reference on gated drives (<= 1e-2 of the peak excursion)",
            max_gap_rk4_rel_gated <= 1e-2,
            format!("max relative final-temperature gap {max_gap_rk4_rel_gated:.2e}"),
        ),
        ShapeCheck::new(
            format!("batched implicit >= {speedup_bar}x the rk4 reference"),
            speedup_vs_rk4 >= speedup_bar,
            format!("{implicit_s:.3} s vs {rk4_s:.3} s ({speedup_vs_rk4:.2}x)"),
        ),
        ShapeCheck::new(
            "implicit step runs far past the explicit stability limit",
            run_cfg.dt > 2.78 * tmin / 4.0,
            format!("dt {:.2e} s vs tau_min {tmin:.2e} s", run_cfg.dt),
        ),
    ];
    std::process::exit(report(&checks));
}
