//! Fig. 9 — self-heating oscilloscope traces of a single MOS transistor at
//! three ambient temperatures (30/35/40 °C), gated at 3 Hz.
//!
//! Paper setup (§4.2): the device is switched ON/OFF; the voltage across a
//! series sense resistor (∝ drain current ∝ temperature) is recorded. The
//! traces show the exponential charging of the device's thermal
//! capacitance; the three ambients calibrate the V→T conversion.
//!
//! Substitution (no 0.35 µm test chip): the virtual measurement rig of
//! `ptherm-thermal-num` drives the α-power-law device model through a
//! lumped thermal RC whose "true" resistance comes from the exact Eq. 17
//! integral averaged over the device footprint.

use ptherm_bench::{header, line_chart, report, ShapeCheck, Table};
use ptherm_device::on_current::OnCurrentModel;
use ptherm_tech::constants::celsius_to_kelvin;
use ptherm_tech::Technology;
use ptherm_thermal_num::rect_integral::rect_unit_integral;
use ptherm_thermal_num::transient::ThermalRc;
use ptherm_thermal_num::SelfHeatingRig;

/// Source-averaged exact thermal resistance of a `w × l` device (Eq. 17
/// averaged over the footprint), K/W.
fn true_rth(k: f64, w: f64, l: f64) -> f64 {
    let n = 15;
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            let x = w * ((i as f64 + 0.5) / n as f64 - 0.5);
            let y = l * ((j as f64 + 0.5) / n as f64 - 0.5);
            acc += rect_unit_integral(w, l, x, y, 0.0);
        }
    }
    acc / (n * n) as f64 / (2.0 * std::f64::consts::PI * k * w * l)
}

fn main() {
    header(
        "Fig. 9",
        "self-heating scope traces at 30/35/40 C ambient (virtual measurement rig)",
    );
    let tech = Technology::cmos_350nm();
    let w = 10e-6;
    let l = tech.nmos.l;
    let on = OnCurrentModel::new(&tech.nmos, tech.t_ref);
    let rth = true_rth(148.0, w, l);
    let thermal = ThermalRc {
        rth,
        cth: 25e-3 / rth,
    }; // tau = 25 ms (die-scale)

    let rig = SelfHeatingRig {
        dut_current: |t| {
            OnCurrentModel::new(&Technology::cmos_350nm().nmos, 300.0).current(10e-6, 3.3, t)
        },
        supply: 3.3,
        sense_resistance: 20.0,
        thermal,
        gate_frequency: 3.0,
        noise_rms: 0.3e-3,
        seed: 2005,
    };

    let ambients = [30.0, 35.0, 40.0].map(celsius_to_kelvin);
    let mut table = Table::new(["t_ms", "V@30C_mV", "V@35C_mV", "V@40C_mV"]);
    let mut traces = Vec::new();
    for ambient in ambients {
        traces.push(rig.capture(ambient, 1024).expect("capture"));
    }
    for row in (0..1024).step_by(96) {
        table.row([
            format!("{:.3}", traces[0].time[row] * 1e3),
            format!("{:.3}", traces[0].voltage[row] * 1e3),
            format!("{:.3}", traces[1].voltage[row] * 1e3),
            format!("{:.3}", traces[2].voltage[row] * 1e3),
        ]);
    }
    println!("{}", table.render());
    let pts: Vec<(f64, f64)> = traces[0]
        .time
        .iter()
        .zip(&traces[0].voltage)
        .step_by(16)
        .map(|(&t, &v)| (t * 1e3, v * 1e3))
        .collect();
    println!("scope trace at 30 C (mV vs ms):");
    println!("{}", line_chart(&pts, 64, 14));

    // Full extraction at 30 C.
    let cal = rig.calibrate(&ambients, 1024).expect("calibration");
    let m = rig.measure(ambients[0], cal, 2048).expect("measurement");
    println!(
        "extraction at 30 C: dT = {:.2} K, tau = {:.1} us, P = {:.2} mW, Rth = {:.0} K/W (true {:.0})",
        m.delta_t,
        m.tau * 1e6,
        m.power * 1e3,
        m.rth,
        rth
    );

    // Baseline (t -> 0) voltages must order with ambient: hotter chuck,
    // lower current, lower sense voltage (negative TC above ZTC).
    let v0: Vec<f64> = traces
        .iter()
        .map(|t| t.voltage[..8].iter().sum::<f64>() / 8.0)
        .collect();
    // Early-vs-late drop shows the exponential settling.
    let drop = |tr: &ptherm_thermal_num::measurement::ScopeTrace| {
        let head: f64 = tr.voltage[..32].iter().sum::<f64>() / 32.0;
        let tail: f64 = tr.voltage[992..].iter().sum::<f64>() / 32.0;
        head - tail
    };

    let tc = on.temperature_coefficient(w, 3.3, 303.15);
    let checks = vec![
        ShapeCheck::new(
            "device has negative TC at full drive (above the ZTC point)",
            tc < 0.0,
            format!("dI/dT/I = {tc:.2e} 1/K"),
        ),
        ShapeCheck::new(
            "baseline sense voltage decreases with ambient (calibration signal)",
            v0[0] > v0[1] && v0[1] > v0[2],
            format!(
                "{:.2} > {:.2} > {:.2} mV",
                v0[0] * 1e3,
                v0[1] * 1e3,
                v0[2] * 1e3
            ),
        ),
        ShapeCheck::new(
            "traces settle exponentially (visible self-heating sag)",
            traces.iter().all(|t| drop(t) > 5.0 * rig.noise_rms),
            format!("sag {:.2} mV at 30 C", drop(&traces[0]) * 1e3),
        ),
        ShapeCheck::new(
            "extracted Rth within 15% of the rig's true Rth",
            (m.rth - rth).abs() / rth < 0.15,
            format!("{:.0} vs {:.0} K/W", m.rth, rth),
        ),
        ShapeCheck::new(
            "extracted time constant within 25% of the rig's",
            (m.tau - 25e-3).abs() / 25e-3 < 0.25,
            format!("{:.1} ms vs 25 ms", m.tau * 1e3),
        ),
    ];
    std::process::exit(report(&checks));
}
