//! Spectral sweep bench: batched Picard through the FFT-backed
//! `SpectralOperator` vs the dense `O(n²)` influence matrix, on
//! tile-aligned floorplans from 1024 to 4096 blocks.
//!
//! Three audits back the spectral backend's claims
//! (`docs/PERFORMANCE.md`):
//!
//! 1. **scaling** — the fitted log-log slope of spectral sweep time vs
//!    block count across the three sizes must stay below 1.5 (the
//!    dense path is quadratic by construction: its per-iteration GEMM
//!    and its kernel build both touch all `n²` block pairs),
//! 2. **speed** — at the largest size the spectral end-to-end cost
//!    (operator build + sweep) must beat the dense cost by the
//!    documented factor. Dense is *measured* at the smallest size only
//!    and *projected* quadratically to the largest
//!    (`dense_projected_largest_s = dense_total_smallest_s × ratio²`);
//!    measuring dense at 4096 blocks directly would take minutes and
//!    the projection is conservative for a quadratic algorithm,
//! 3. **exactness** — on a 256-block coincident grid the spectral and
//!    dense fixed points agree to ≤ 1e-6 K with identical outcome
//!    kinds (the same term-for-term contract the validation suites
//!    pin).
//!
//! Emits `BENCH_spectral.json` (`BENCH_spectral.quick.json` with
//! `--quick`; override the path with `BENCH_SPECTRAL_JSON`), gated in
//! CI by `benchcheck` against `ci/bench_bounds.quick.json`.

use ptherm_bench::{header, report, JsonObject, ShapeCheck, Table};
use ptherm_core::cosim::{ScenarioGrid, SweepBackend, SweepEngine, SweepOutcome};
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use ptherm_tech::Technology;
use std::time::Instant;

struct BenchConfig {
    /// Tile-grid shapes for the spectral scaling ladder, smallest first.
    sizes: [(usize, usize); 3],
    /// End-to-end speedup bar at the largest size vs projected dense.
    speedup_bar: f64,
    label: &'static str,
}

/// Blocks ARE the tiles of an `nx × ny` grid (see
/// [`generator::tile_aligned`]) with deterministic non-uniform powers —
/// the coincident geometry on which spectral equals dense term for
/// term.
fn tile_aligned_floorplan(nx: usize, ny: usize) -> Floorplan {
    generator::tile_aligned(ChipGeometry::paper_1mm(), nx, ny, |i| {
        0.002 + 0.0015 * ((i * 5) % 11) as f64
    })
    .expect("aligned tiling is valid")
}

/// Least-squares slope of `ln(seconds)` vs `ln(blocks)` — the empirical
/// scaling exponent over the size ladder.
fn fitted_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(blocks, seconds) in points {
        let (x, y) = (blocks.ln(), seconds.ln());
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        BenchConfig {
            sizes: [(16, 16), (32, 16), (32, 32)],
            speedup_bar: 2.0,
            label: "quick (CI smoke): 256/512/1024 blocks",
        }
    } else {
        BenchConfig {
            sizes: [(32, 32), (64, 32), (64, 64)],
            speedup_bar: 10.0,
            label: "1024/2048/4096 blocks",
        }
    };
    let threads = ptherm_par::default_threads();
    header(
        "Spectral",
        &format!(
            "FFT-backed batched Picard vs the dense influence matrix, {} ({} threads)",
            cfg.label, threads
        ),
    );

    let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()])
        .vdd_scales(vec![0.95, 1.0, 1.05])
        .activities(vec![0.5, 1.0]);
    const TIMED_RUNS: usize = 5;

    // --- the spectral scaling ladder -------------------------------------
    let mut out = Table::new(["blocks", "grid", "build_s", "sweep_s", "sweeps_per_s"]);
    let mut ladder: Vec<(usize, f64, f64)> = Vec::new(); // (blocks, build_s, sweep_s)
    let mut all_converged = true;
    let mut peak_k = f64::NAN;
    for &(nx, ny) in &cfg.sizes {
        let floorplan = tile_aligned_floorplan(nx, ny);
        let blocks = floorplan.blocks().len();
        let engine = SweepEngine::new(floorplan)
            .backend(SweepBackend::Spectral)
            .threads(threads);
        let t0 = Instant::now();
        engine
            .spectral_operator()
            .expect("tile-aligned plans are grid-coincident");
        let build_s = t0.elapsed().as_secs_f64();
        let model = engine.uniform_tech_power(0.3, 0.03).prepared_for(&grid);
        let mut sweep_s = f64::INFINITY;
        for _ in 0..TIMED_RUNS {
            let t0 = Instant::now();
            let rep = engine.run(&grid, &model);
            sweep_s = sweep_s.min(t0.elapsed().as_secs_f64());
            all_converged &= rep.converged_count() == rep.len();
            peak_k = rep.max_peak_temperature().unwrap_or(f64::NAN);
        }
        out.row([
            blocks.to_string(),
            format!("{nx}x{ny}"),
            format!("{build_s:.4}"),
            format!("{sweep_s:.5}"),
            format!("{:.1}", 1.0 / sweep_s),
        ]);
        ladder.push((blocks, build_s, sweep_s));
    }
    let sweep_points: Vec<(f64, f64)> = ladder
        .iter()
        .map(|&(blocks, _, sweep_s)| (blocks as f64, sweep_s))
        .collect();
    let scaling_exponent = fitted_exponent(&sweep_points);
    println!("{}", out.render());
    println!(
        "spectral sweep time ~ blocks^{scaling_exponent:.2} (dense is blocks^2 by construction)"
    );

    // --- dense at the smallest size, projected to the largest -------------
    let (base_nx, base_ny) = cfg.sizes[0];
    let base_blocks = ladder[0].0;
    let dense_engine = SweepEngine::new(tile_aligned_floorplan(base_nx, base_ny))
        .backend(SweepBackend::Dense)
        .threads(threads);
    let t0 = Instant::now();
    dense_engine.operator();
    let dense_build_s = t0.elapsed().as_secs_f64();
    let dense_model = dense_engine
        .uniform_tech_power(0.3, 0.03)
        .prepared_for(&grid);
    let mut dense_sweep_s = f64::INFINITY;
    for _ in 0..TIMED_RUNS.min(3) {
        let t0 = Instant::now();
        dense_engine.run(&grid, &dense_model);
        dense_sweep_s = dense_sweep_s.min(t0.elapsed().as_secs_f64());
    }
    let (largest_blocks, spectral_build_largest_s, spectral_sweep_largest_s) =
        *ladder.last().expect("three sizes");
    let ratio = largest_blocks as f64 / base_blocks as f64;
    // Build (n² kernel image sums) and per-iteration GEMM (n² MACs) are
    // both quadratic in block count, so end-to-end dense cost projects
    // with ratio².
    let dense_projected_largest_s = (dense_build_s + dense_sweep_s) * ratio * ratio;
    let spectral_total_largest_s = spectral_build_largest_s + spectral_sweep_largest_s;
    let speedup = dense_projected_largest_s / spectral_total_largest_s;
    println!(
        "dense at {base_blocks} blocks: {dense_build_s:.3} s build + {dense_sweep_s:.4} s sweep \
         -> projected x{ratio:.0}^2 to {largest_blocks} blocks: {dense_projected_largest_s:.2} s"
    );
    println!(
        "spectral at {largest_blocks} blocks: {spectral_total_largest_s:.4} s end-to-end \
         ({speedup:.0}x vs projected dense)"
    );

    // --- exactness: spectral vs dense fixed points at 256 blocks ----------
    let check_plan = tile_aligned_floorplan(16, 16);
    let spectral_check = SweepEngine::new(check_plan.clone())
        .backend(SweepBackend::Spectral)
        .threads(threads);
    let dense_check = SweepEngine::new(check_plan)
        .backend(SweepBackend::Dense)
        .threads(threads);
    let model_s = spectral_check
        .uniform_tech_power(0.3, 0.03)
        .prepared_for(&grid);
    let model_d = dense_check
        .uniform_tech_power(0.3, 0.03)
        .prepared_for(&grid);
    let rep_s = spectral_check.run(&grid, &model_s);
    let rep_d = dense_check.run(&grid, &model_d);
    let mut max_gap_k = 0.0f64;
    let mut kinds_match = rep_s.outcomes.len() == rep_d.outcomes.len();
    for (s, d) in rep_s.outcomes.iter().zip(&rep_d.outcomes) {
        kinds_match &= std::mem::discriminant(s) == std::mem::discriminant(d);
        if let (
            SweepOutcome::Converged {
                block_temperatures: ts,
                ..
            },
            SweepOutcome::Converged {
                block_temperatures: td,
                ..
            },
        ) = (s, d)
        {
            for (a, b) in ts.iter().zip(td) {
                max_gap_k = max_gap_k.max((a - b).abs());
            }
        }
    }
    println!(
        "exactness at 256 blocks: max |dT| = {max_gap_k:.2e} K across {} scenarios",
        rep_s.len()
    );

    // --- BENCH_spectral.json ----------------------------------------------
    let mut json = JsonObject::new();
    json.string("bench", "spectral")
        .string("mode", if quick { "quick" } else { "full" })
        .integer("threads", threads as u64)
        .integer("scenarios", grid.len() as u64);
    for (i, &(blocks, build_s, sweep_s)) in ladder.iter().enumerate() {
        json.integer(&format!("blocks_{i}"), blocks as u64)
            .number(&format!("spectral_build_{i}_s"), build_s)
            .number(&format!("spectral_sweep_{i}_s"), sweep_s);
    }
    json.number("scaling_exponent", scaling_exponent)
        .integer("dense_measured_blocks", base_blocks as u64)
        .number("dense_build_s", dense_build_s)
        .number("dense_sweep_s", dense_sweep_s)
        .number("dense_projected_largest_s", dense_projected_largest_s)
        .number("spectral_total_largest_s", spectral_total_largest_s)
        .number("speedup_vs_dense_at_largest", speedup)
        .number("max_gap_vs_dense_k", max_gap_k)
        .number("peak_k", peak_k);
    let default_path = if quick {
        "BENCH_spectral.quick.json"
    } else {
        "BENCH_spectral.json"
    };
    let json_path = std::env::var("BENCH_SPECTRAL_JSON").unwrap_or_else(|_| default_path.into());
    match std::fs::write(&json_path, json.render()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }

    let checks = vec![
        json.finiteness_check(),
        ShapeCheck::new(
            "every scenario converges at every ladder size",
            all_converged,
            format!("{} scenarios per size", grid.len()),
        ),
        ShapeCheck::new(
            "spectral sweep time scales better than quadratic (exponent < 1.5)",
            scaling_exponent < 1.5,
            format!("fitted blocks^{scaling_exponent:.2} over the ladder"),
        ),
        ShapeCheck::new(
            format!(
                "spectral end-to-end >= {}x projected dense at {largest_blocks} blocks",
                cfg.speedup_bar
            ),
            speedup >= cfg.speedup_bar,
            format!(
                "{dense_projected_largest_s:.2} s dense (projected) vs \
                 {spectral_total_largest_s:.4} s spectral ({speedup:.0}x)"
            ),
        ),
        ShapeCheck::new(
            "spectral and dense fixed points agree to <= 1e-6 K at 256 blocks",
            max_gap_k <= 1e-6 && kinds_match,
            format!("max |dT| = {max_gap_k:.2e} K, outcome kinds match: {kinds_match}"),
        ),
    ];
    std::process::exit(report(&checks));
}
