//! The bench regression gate: compare `BENCH_*.json` artifacts against
//! checked-in tolerance bounds, so a perf or accuracy regression fails
//! CI instead of silently riding along as an uploaded artifact.
//!
//! A bounds file is a JSON array of per-artifact specs:
//!
//! ```json
//! [
//!   {"file": "BENCH_sweep.quick.json",
//!    "min": {"speedup_batched_vs_per_scenario": 1.0},
//!    "max": {"max_temp_gap_vs_oracle_k": 1e-9}}
//! ]
//! ```
//!
//! `min` fields must be `>=` the bound, `max` fields `<=`. A missing or
//! non-numeric field (including one the hardened emitters nulled for
//! being non-finite) **fails** its bound — an artifact that stopped
//! reporting a number is a regression of the gate itself. The
//! `benchcheck` binary wraps this module; the CI `bench-smoke` job runs
//! it against `ci/bench_bounds.quick.json` after the quick benches, and
//! `ci/bench_bounds.full.json` documents the bars the checked-in
//! full-mode baselines clear.

use crate::ShapeCheck;
use ptherm_fleet::Json;

/// Which side of the bound a field must fall on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Field must be `>=` the bound (throughput, speedups).
    Min,
    /// Field must be `<=` the bound (error gaps, wall budgets).
    Max,
}

/// One field bound inside a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Bound {
    /// Artifact field name.
    pub key: String,
    /// Direction.
    pub kind: BoundKind,
    /// Tolerance value.
    pub value: f64,
}

/// All bounds declared for one artifact file.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSpec {
    /// Artifact path (relative to the checker's working directory).
    pub file: String,
    /// Field bounds.
    pub bounds: Vec<Bound>,
}

/// Parses a bounds file (see the [module docs](self)).
///
/// # Errors
///
/// A human-readable description of the first problem.
pub fn parse_bounds(text: &str) -> Result<Vec<BoundSpec>, String> {
    let root = Json::parse(text).map_err(|e| format!("bounds file is not valid JSON: {e}"))?;
    let entries = root
        .as_array()
        .ok_or("bounds file must be a JSON array of specs")?;
    let mut specs = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let file = entry
            .get("file")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("spec {i} needs a string \"file\""))?
            .to_string();
        let mut bounds = Vec::new();
        for (kind, key) in [(BoundKind::Min, "min"), (BoundKind::Max, "max")] {
            let Some(section) = entry.get(key) else {
                continue;
            };
            let Json::Object(fields) = section else {
                return Err(format!("spec {i} \"{key}\" must be an object"));
            };
            for (field, bound) in fields {
                let value = bound
                    .as_f64()
                    .ok_or_else(|| format!("spec {i} bound \"{field}\" must be a number"))?;
                bounds.push(Bound {
                    key: field.clone(),
                    kind,
                    value,
                });
            }
        }
        if bounds.is_empty() {
            return Err(format!("spec {i} ({file}) declares no bounds"));
        }
        specs.push(BoundSpec { file, bounds });
    }
    Ok(specs)
}

/// Evaluates one spec against the artifact's content (`None` = the file
/// could not be read, which fails every bound it declares). Returns one
/// [`ShapeCheck`] per bound, ready for [`crate::report`].
pub fn check_artifact(spec: &BoundSpec, content: Option<&str>) -> Vec<ShapeCheck> {
    let parsed = content.map(Json::parse);
    spec.bounds
        .iter()
        .map(|bound| {
            let (op, word) = match bound.kind {
                BoundKind::Min => (">=", "min"),
                BoundKind::Max => ("<=", "max"),
            };
            let claim = format!(
                "{}: {} {} {:e} ({word} bound)",
                spec.file, bound.key, op, bound.value
            );
            match &parsed {
                None => ShapeCheck::new(claim, false, "artifact missing or unreadable"),
                Some(Err(e)) => ShapeCheck::new(claim, false, format!("invalid JSON: {e}")),
                Some(Ok(json)) => match json.get(&bound.key).and_then(Json::as_f64) {
                    None => ShapeCheck::new(
                        claim,
                        false,
                        "field missing, non-numeric or nulled (non-finite at emit time)",
                    ),
                    Some(actual) => {
                        let pass = match bound.kind {
                            BoundKind::Min => actual >= bound.value,
                            BoundKind::Max => actual <= bound.value,
                        };
                        ShapeCheck::new(claim, pass, format!("measured {actual:e}"))
                    }
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &str = r#"[
      {"file": "BENCH_demo.json",
       "min": {"speedup": 2.0},
       "max": {"gap_k": 1e-9}}
    ]"#;

    fn demo_artifact(speedup: f64, gap: f64) -> String {
        format!("{{\"bench\": \"demo\", \"speedup\": {speedup}, \"gap_k\": {gap:e}}}")
    }

    #[test]
    fn bounds_parse() {
        let specs = parse_bounds(BOUNDS).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].file, "BENCH_demo.json");
        assert_eq!(specs[0].bounds.len(), 2);
        assert_eq!(specs[0].bounds[0].kind, BoundKind::Min);
        assert_eq!(specs[0].bounds[1].kind, BoundKind::Max);
    }

    #[test]
    fn bad_bounds_are_rejected() {
        assert!(parse_bounds("{}").is_err());
        assert!(parse_bounds(r#"[{"file": "x"}]"#).is_err());
        assert!(parse_bounds(r#"[{"min": {"a": 1}}]"#).is_err());
        assert!(parse_bounds(r#"[{"file": "x", "min": {"a": "fast"}}]"#).is_err());
    }

    #[test]
    fn healthy_artifact_passes_both_bounds() {
        let specs = parse_bounds(BOUNDS).unwrap();
        let checks = check_artifact(&specs[0], Some(&demo_artifact(5.0, 1e-11)));
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| c.pass));
    }

    #[test]
    fn regressions_fail_their_bound() {
        let specs = parse_bounds(BOUNDS).unwrap();
        // Throughput regression: speedup below the min bound.
        let checks = check_artifact(&specs[0], Some(&demo_artifact(1.5, 1e-11)));
        assert!(!checks[0].pass, "speedup bound must fail");
        assert!(checks[1].pass);
        // Accuracy regression: gap above the max bound.
        let checks = check_artifact(&specs[0], Some(&demo_artifact(5.0, 1e-3)));
        assert!(checks[0].pass);
        assert!(!checks[1].pass, "gap bound must fail");
    }

    #[test]
    fn missing_artifact_fields_and_files_fail() {
        let specs = parse_bounds(BOUNDS).unwrap();
        // Missing file.
        assert!(check_artifact(&specs[0], None).iter().all(|c| !c.pass));
        // Unparsable artifact.
        assert!(check_artifact(&specs[0], Some("not json"))
            .iter()
            .all(|c| !c.pass));
        // A nulled (non-finite at emit time) field fails its bound.
        let artifact = r#"{"speedup": null, "gap_k": 1e-12}"#;
        let checks = check_artifact(&specs[0], Some(artifact));
        assert!(!checks[0].pass);
        assert!(checks[1].pass);
    }
}
