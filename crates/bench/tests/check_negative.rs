//! Negative-path suite for the bench regression gate
//! (`ptherm_bench::check` + the `benchcheck` binary): every way an
//! artifact or bounds file can go bad must fail with its **own**
//! diagnostic — previously these paths were only verified by hand
//! (PR 4 notes). Covers perturbed bounds, missing/nulled/non-numeric
//! fields, unreadable and malformed artifacts, malformed bounds files,
//! and the binary's exit codes.

use ptherm_bench::check::{check_artifact, parse_bounds, BoundKind};
use std::process::Command;

const BOUNDS: &str = r#"[
  {"file": "BENCH_neg.json",
   "min": {"speedup": 10.0},
   "max": {"gap_k": 1e-9}}
]"#;

fn artifact(speedup: &str, gap: &str) -> String {
    format!(r#"{{"bench": "neg", "speedup": {speedup}, "gap_k": {gap}}}"#)
}

/// The single failing check of a run that must fail exactly one bound.
fn single_failure(content: &str) -> ptherm_bench::ShapeCheck {
    let specs = parse_bounds(BOUNDS).unwrap();
    let checks = check_artifact(&specs[0], Some(content));
    let mut failed: Vec<_> = checks.into_iter().filter(|c| !c.pass).collect();
    assert_eq!(failed.len(), 1, "expected exactly one failing bound");
    failed.remove(0)
}

#[test]
fn perturbed_min_and_max_bounds_fail_with_measured_values() {
    // Speedup below the floor: the diagnostic carries the measurement.
    let c = single_failure(&artifact("9.9", "1e-12"));
    assert!(c.claim.contains("speedup"), "{}", c.claim);
    assert!(c.detail.contains("measured 9.9"), "{}", c.detail);
    // Gap above the ceiling.
    let c = single_failure(&artifact("12.0", "2e-9"));
    assert!(c.claim.contains("gap_k"), "{}", c.claim);
    assert!(c.detail.contains("measured 2e-9"), "{}", c.detail);
    // Boundary values pass on both sides (>= and <= are inclusive).
    let specs = parse_bounds(BOUNDS).unwrap();
    assert!(check_artifact(&specs[0], Some(&artifact("10.0", "1e-9")))
        .iter()
        .all(|c| c.pass));
}

/// The spectral gate's scaling-exponent ceiling is a max bound like any
/// other: a ladder whose fitted slope drifts to quadratic must fail the
/// `scaling_exponent <= 1.5` spec with the measured slope in the
/// diagnostic, and a sub-quadratic slope must pass.
#[test]
fn a_quadratic_scaling_exponent_fails_the_spectral_bound() {
    let bounds = r#"[
      {"file": "BENCH_spectral.json",
       "min": {"speedup_vs_dense_at_largest": 10.0},
       "max": {"scaling_exponent": 1.5,
               "max_gap_vs_dense_k": 1e-6}}
    ]"#;
    let specs = parse_bounds(bounds).unwrap();
    let artifact = |exponent: &str| {
        format!(
            r#"{{"bench": "spectral", "speedup_vs_dense_at_largest": 2.7e3,
                 "scaling_exponent": {exponent}, "max_gap_vs_dense_k": 7.4e-11}}"#
        )
    };
    // A healthy near-linear fit clears every bound.
    assert!(check_artifact(&specs[0], Some(&artifact("0.97")))
        .iter()
        .all(|c| c.pass));
    // A regression back to dense-like quadratic scaling fails exactly
    // the exponent ceiling, naming the measurement.
    let failed: Vec<_> = check_artifact(&specs[0], Some(&artifact("1.98")))
        .into_iter()
        .filter(|c| !c.pass)
        .collect();
    assert_eq!(failed.len(), 1, "only the exponent bound should fail");
    assert!(
        failed[0].claim.contains("scaling_exponent"),
        "{}",
        failed[0].claim
    );
    assert!(
        failed[0].detail.contains("measured 1.98"),
        "{}",
        failed[0].detail
    );
}

/// The fault-tolerance gate is max-bounds only: a chaos run whose
/// recovery overhead creeps past the ceiling — or that perturbs even a
/// single unaffected result line — must fail with the measurement, and
/// a healthy run clears every bound.
#[test]
fn a_slow_or_leaky_chaos_run_fails_the_faults_bounds() {
    let bounds = r#"[
      {"file": "BENCH_faults.json",
       "max": {"recovery_overhead_ratio": 1.05,
               "unfaulted_line_mismatches": 0,
               "drained_line_mismatches": 0}}
    ]"#;
    let specs = parse_bounds(bounds).unwrap();
    let artifact = |ratio: &str, mismatches: &str| {
        format!(
            r#"{{"bench": "faults", "recovery_overhead_ratio": {ratio},
                 "unfaulted_line_mismatches": {mismatches},
                 "drained_line_mismatches": 0}}"#
        )
    };
    // A healthy chaos run clears every bound.
    assert!(check_artifact(&specs[0], Some(&artifact("1.02", "0")))
        .iter()
        .all(|c| c.pass));
    // Recovery overhead above the 5% ceiling fails exactly that bound,
    // naming the measured ratio.
    let failed: Vec<_> = check_artifact(&specs[0], Some(&artifact("1.31", "0")))
        .into_iter()
        .filter(|c| !c.pass)
        .collect();
    assert_eq!(failed.len(), 1, "only the overhead bound should fail");
    assert!(
        failed[0].claim.contains("recovery_overhead_ratio"),
        "{}",
        failed[0].claim
    );
    assert!(
        failed[0].detail.contains("measured 1.31"),
        "{}",
        failed[0].detail
    );
    // A single perturbed unaffected line breaks isolation: the
    // zero-mismatch ceiling fails.
    let failed: Vec<_> = check_artifact(&specs[0], Some(&artifact("1.02", "1")))
        .into_iter()
        .filter(|c| !c.pass)
        .collect();
    assert_eq!(failed.len(), 1, "only the mismatch bound should fail");
    assert!(
        failed[0].claim.contains("unfaulted_line_mismatches"),
        "{}",
        failed[0].claim
    );
}

/// The scenario-space gate mixes a min bound (every fiber bracketed)
/// with max bounds (warm ratio, solve ratio, agreement): a warm start
/// that stops helping, a bisection that degenerates toward the
/// exhaustive march, or a single boundary disagreement must each fail
/// its own bound with the measured value.
#[test]
fn a_regressed_envelope_run_fails_the_scenario_space_bounds() {
    let bounds = r#"[
      {"file": "BENCH_envelope.json",
       "min": {"bracketed_fibers": 4},
       "max": {"warm_iteration_ratio": 0.9,
               "bisection_solve_ratio": 0.25,
               "boundary_disagreements": 0}}
    ]"#;
    let specs = parse_bounds(bounds).unwrap();
    let artifact = |warm: &str, solves: &str, disagreements: &str| {
        format!(
            r#"{{"bench": "envelope", "bracketed_fibers": 4,
                 "warm_iteration_ratio": {warm},
                 "bisection_solve_ratio": {solves},
                 "boundary_disagreements": {disagreements}}}"#
        )
    };
    // A healthy run clears every bound.
    assert!(
        check_artifact(&specs[0], Some(&artifact("0.87", "0.07", "0")))
            .iter()
            .all(|c| c.pass)
    );
    // Warm chaining regressed to no-better-than-cold: exactly the
    // iteration-ratio ceiling fails, naming the measurement.
    let failed: Vec<_> = check_artifact(&specs[0], Some(&artifact("1.0", "0.07", "0")))
        .into_iter()
        .filter(|c| !c.pass)
        .collect();
    assert_eq!(failed.len(), 1, "only the warm ratio should fail");
    assert!(
        failed[0].claim.contains("warm_iteration_ratio"),
        "{}",
        failed[0].claim
    );
    assert!(
        failed[0].detail.contains("measured 1e0"),
        "{}",
        failed[0].detail
    );
    // Bisection degenerated past the 25% solve budget.
    let failed: Vec<_> = check_artifact(&specs[0], Some(&artifact("0.87", "0.4", "0")))
        .into_iter()
        .filter(|c| !c.pass)
        .collect();
    assert_eq!(failed.len(), 1, "only the solve ratio should fail");
    assert!(
        failed[0].claim.contains("bisection_solve_ratio"),
        "{}",
        failed[0].claim
    );
    // One fiber disagreeing with the exhaustive oracle breaks the gate.
    let failed: Vec<_> = check_artifact(&specs[0], Some(&artifact("0.87", "0.07", "1")))
        .into_iter()
        .filter(|c| !c.pass)
        .collect();
    assert_eq!(failed.len(), 1, "only the agreement bound should fail");
    assert!(
        failed[0].claim.contains("boundary_disagreements"),
        "{}",
        failed[0].claim
    );
}

#[test]
fn missing_nulled_and_mistyped_fields_have_a_distinct_diagnostic() {
    let field_diag = "field missing, non-numeric or nulled (non-finite at emit time)";
    // Field absent entirely.
    let c = single_failure(r#"{"bench": "neg", "gap_k": 1e-12}"#);
    assert!(c.claim.contains("speedup"));
    assert_eq!(c.detail, field_diag);
    // Field nulled by the hardened emitter (was non-finite).
    let c = single_failure(&artifact("null", "1e-12"));
    assert_eq!(c.detail, field_diag);
    // Field present but a string.
    let c = single_failure(&artifact("\"fast\"", "1e-12"));
    assert_eq!(c.detail, field_diag);
}

#[test]
fn unreadable_and_malformed_artifacts_fail_every_bound_distinctly() {
    let specs = parse_bounds(BOUNDS).unwrap();
    // Missing file: every bound fails with the missing-artifact text.
    let checks = check_artifact(&specs[0], None);
    assert_eq!(checks.len(), 2);
    assert!(checks
        .iter()
        .all(|c| !c.pass && c.detail == "artifact missing or unreadable"));
    // Unparsable artifact: every bound fails with the JSON diagnosis
    // (which names the parse error, not the missing-field text).
    let checks = check_artifact(&specs[0], Some("{not json"));
    assert!(checks
        .iter()
        .all(|c| !c.pass && c.detail.starts_with("invalid JSON:")));
}

#[test]
fn malformed_bounds_files_are_rejected_with_their_own_errors() {
    // Each malformation names its problem — a broken gate config can
    // never be mistaken for a passing (or vacuous) gate.
    let cases: [(&str, &str); 6] = [
        ("{not json", "not valid JSON"),
        (r#"{"file": "x"}"#, "must be a JSON array"),
        (r#"[{"min": {"a": 1}}]"#, "needs a string \"file\""),
        (r#"[{"file": "x", "min": [1]}]"#, "must be an object"),
        (
            r#"[{"file": "x", "min": {"a": "fast"}}]"#,
            "must be a number",
        ),
        (r#"[{"file": "x"}]"#, "declares no bounds"),
    ];
    for (text, needle) in cases {
        let err = parse_bounds(text).expect_err(text);
        assert!(err.contains(needle), "{text:?} -> {err:?}");
    }
    // And parsing a healthy file keeps both kinds in declaration order.
    let specs = parse_bounds(BOUNDS).unwrap();
    assert_eq!(specs[0].bounds[0].kind, BoundKind::Min);
    assert_eq!(specs[0].bounds[1].kind, BoundKind::Max);
}

// ---------------------------------------------------------------------
// Binary-level: exit codes and printed verdicts of `benchcheck` itself.
// ---------------------------------------------------------------------

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("ptherm-benchcheck-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }

    fn write(&self, name: &str, content: &str) -> std::path::PathBuf {
        let path = self.0.join(name);
        std::fs::write(&path, content).expect("write temp file");
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_benchcheck(dir: &TempDir, bounds: &[&str]) -> (i32, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_benchcheck"))
        .current_dir(&dir.0)
        .args(bounds)
        .output()
        .expect("benchcheck runs");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

#[test]
fn benchcheck_exit_codes_separate_pass_fail_and_usage() {
    let dir = TempDir::new("exit");
    dir.write("BENCH_neg.json", &artifact("12.0", "1e-12"));
    let bounds = dir.write("bounds.json", BOUNDS);
    let bounds = bounds.to_str().unwrap();

    // All bounds clear: exit 0, PASS verdicts.
    let (code, stdout) = run_benchcheck(&dir, &[bounds]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("[PASS]"));
    assert!(!stdout.contains("[FAIL]"));

    // A perturbed bound: exit 1 and a FAIL naming the field.
    dir.write("BENCH_neg.json", &artifact("1.5", "1e-12"));
    let (code, stdout) = run_benchcheck(&dir, &[bounds]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[FAIL]") && stdout.contains("speedup"));

    // No arguments at all: usage error, exit 2.
    let (code, _) = run_benchcheck(&dir, &[]);
    assert_eq!(code, 2);
}

#[test]
fn benchcheck_missing_inputs_are_failing_checks_not_vacuous_passes() {
    let dir = TempDir::new("missing");
    // Bounds file that does not exist: the gate reports it unreadable
    // and exits non-zero (never "0 of 0 checks passed").
    let (code, stdout) = run_benchcheck(&dir, &["nonexistent-bounds.json"]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("is readable"));
    // Bounds file that fails to parse: same story, different check.
    let bad = dir.write("bad-bounds.json", "[{\"file\": \"x\"}]");
    let (code, stdout) = run_benchcheck(&dir, &[bad.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("parses") && stdout.contains("declares no bounds"));
    // Artifact referenced by healthy bounds is absent: the artifact's
    // bounds fail.
    let bounds = dir.write("bounds.json", BOUNDS);
    let (code, stdout) = run_benchcheck(&dir, &[bounds.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("artifact missing or unreadable"));
}
