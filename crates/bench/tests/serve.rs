//! Binary-level contract of the `fleet` serve mode: exit codes separate
//! "all jobs ok" (0) / "some job errored" (1) / "request or flags
//! refused" (2), stdout carries *only* JSONL result lines, and the last
//! stderr line is a machine-readable JSON summary
//! (`jobs`/`ok`/`errors`/`retries`/`panics`) a supervisor can parse
//! without touching stdout.

use std::process::Command;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ptherm-serve-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        TempDir(dir)
    }

    fn write(&self, name: &str, content: &str) -> std::path::PathBuf {
        let path = self.0.join(name);
        std::fs::write(&path, content).expect("write temp file");
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_fleet(dir: &TempDir, args: &[&str]) -> (i32, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_fleet"))
        .current_dir(&dir.0)
        .args(args)
        .output()
        .expect("fleet runs");
    (
        output.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Parse the final stderr line as the machine-readable summary and
/// return the value of `field`.
fn summary_field(stderr: &str, field: &str) -> f64 {
    let line = stderr.lines().last().expect("a summary line");
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "last stderr line is not a JSON object: {line:?}"
    );
    let needle = format!("\"{field}\":");
    let at = line.find(&needle).unwrap_or_else(|| {
        panic!("summary line lacks {field:?}: {line:?}");
    });
    let rest = &line[at + needle.len()..];
    let end = rest.find([',', '}']).expect("terminated value");
    rest[..end].trim().parse::<f64>().expect("numeric field")
}

const OK_REQUEST: &str = r#"
{"type": "floorplan", "name": "a", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.05, "seed": 1}}
{"type": "steady", "floorplan": "a", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [0.9, 1.0, 1.1]}
{"type": "transient", "floorplan": "a", "dynamic_w": 0.25, "leakage_w": 0.02, "dt_s": 2e-4, "steps": 20}
{"type": "steady", "floorplan": "a", "dynamic_w": 0.2, "leakage_w": 0.02}
"#;

#[test]
fn a_clean_request_exits_zero_with_pure_jsonl_stdout_and_a_summary_line() {
    let dir = TempDir::new("ok");
    let jobs = dir.write("jobs.jsonl", OK_REQUEST);
    let (code, stdout, stderr) =
        run_fleet(&dir, &["--jobs", jobs.to_str().unwrap(), "--threads", "2"]);
    assert_eq!(code, 0, "stderr: {stderr}");

    // stdout is result lines only: one JSON object per job, nothing else.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line:?}");
        assert!(line.contains("\"ok\":true"), "{line:?}");
    }

    // The final stderr line is the parseable summary.
    assert_eq!(summary_field(&stderr, "jobs"), 3.0);
    assert_eq!(summary_field(&stderr, "ok"), 3.0);
    assert_eq!(summary_field(&stderr, "errors"), 0.0);
    assert_eq!(summary_field(&stderr, "retries"), 0.0);
    assert_eq!(summary_field(&stderr, "panics"), 0.0);
}

#[test]
fn a_job_error_exits_one_and_the_summary_counts_it() {
    let dir = TempDir::new("err");
    // Floorplan "c" is two irregular explicit blocks no uniform grid
    // aligns, so the forced spectral backend fails at run time with a
    // typed backend error — a job failure, not a request refusal.
    let jobs = dir.write(
        "jobs.jsonl",
        r#"
{"type": "floorplan", "name": "a", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.05, "seed": 1}}
{"type": "floorplan", "name": "c", "blocks": [{"name": "hot", "cx": 0.5e-3, "cy": 0.5e-3, "w": 0.3e-3, "l": 0.3e-3, "power": 0.2}, {"name": "cool", "cx": 0.15e-3, "cy": 0.2e-3, "w": 0.1e-3, "l": 0.25e-3, "power": 0.05}]}
{"type": "steady", "floorplan": "a", "dynamic_w": 0.3, "leakage_w": 0.03}
{"type": "steady", "floorplan": "c", "dynamic_w": 0.1, "leakage_w": 0.01, "backend": "spectral"}
"#,
    );
    let (code, stdout, stderr) = run_fleet(&dir, &["--jobs", jobs.to_str().unwrap()]);
    assert_eq!(code, 1, "stderr: {stderr}");

    // Both jobs still get a result line; the failed one is typed.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
    assert!(
        lines[1].contains("\"ok\":false") && lines[1].contains("\"error\":"),
        "{}",
        lines[1]
    );

    assert_eq!(summary_field(&stderr, "jobs"), 2.0);
    assert_eq!(summary_field(&stderr, "ok"), 1.0);
    assert_eq!(summary_field(&stderr, "errors"), 1.0);
    assert_eq!(summary_field(&stderr, "panics"), 0.0);
}

#[test]
fn refused_requests_and_flags_exit_two_with_empty_stdout() {
    let dir = TempDir::new("refuse");

    // Malformed JSONL: refused before any job runs.
    let bad = dir.write("bad.jsonl", "{not json\n");
    let (code, stdout, stderr) = run_fleet(&dir, &["--jobs", bad.to_str().unwrap()]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stdout.is_empty(), "{stdout}");
    assert!(stderr.contains("invalid request"), "{stderr}");

    // Unreadable request file.
    let (code, stdout, stderr) = run_fleet(&dir, &["--jobs", "no-such-file.jsonl"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stdout.is_empty(), "{stdout}");
    assert!(stderr.contains("could not read"), "{stderr}");

    // A malformed flag value refuses to run rather than falling back.
    let jobs = dir.write("jobs.jsonl", OK_REQUEST);
    let (code, stdout, stderr) =
        run_fleet(&dir, &["--jobs", jobs.to_str().unwrap(), "--threads", "0"]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stdout.is_empty(), "{stdout}");
    assert!(stderr.contains("--threads"), "{stderr}");
}

#[test]
fn a_deadline_blown_in_serve_mode_is_a_typed_result_line_not_a_crash() {
    let dir = TempDir::new("deadline");
    // An absurd deadline of 0 is refused by the parser; 1 ms against a
    // multi-scenario sweep on a 6x6 grid blows deterministically only if
    // the machine is slow, so give the job real work and a deadline the
    // first Picard checkpoint has already passed: deadline_ms is checked
    // cooperatively, so even a blown deadline yields a typed line.
    let jobs = dir.write(
        "jobs.jsonl",
        r#"
{"type": "floorplan", "name": "a", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.05, "seed": 1}}
{"type": "steady", "floorplan": "a", "dynamic_w": 0.3, "leakage_w": 0.03, "deadline_ms": 600000}
"#,
    );
    let (code, stdout, stderr) = run_fleet(&dir, &["--jobs", jobs.to_str().unwrap()]);
    // A generous deadline resolves normally…
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.lines().next().unwrap().contains("\"ok\":true"));

    // …and a non-positive one is refused at parse time (exit 2).
    let bad = dir.write(
        "bad.jsonl",
        r#"
{"type": "floorplan", "name": "a", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.05, "seed": 1}}
{"type": "steady", "floorplan": "a", "dynamic_w": 0.3, "leakage_w": 0.03, "deadline_ms": 0}
"#,
    );
    let (code, stdout, stderr) = run_fleet(&dir, &["--jobs", bad.to_str().unwrap()]);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(stdout.is_empty(), "{stdout}");
    assert!(stderr.contains("deadline_ms"), "{stderr}");
}
