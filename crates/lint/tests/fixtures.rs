//! The fixture corpus: every rule's diagnostics pinned to exact
//! `line:col` on known-bad (and known-good) snippets. The fixtures
//! live under `tests/fixtures/` — outside the workspace scan (the
//! walker skips `fixtures` directories) and outside cargo's test
//! discovery, so they are read as data, never compiled.

use ptherm_lint::{analyze_source, RuleSet};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(line, col, rule)` triples, in report order.
fn diags(name: &str, rules: RuleSet) -> Vec<(usize, usize, &'static str)> {
    analyze_source(name, &fixture(name), rules)
        .violations
        .iter()
        .map(|v| (v.line, v.col, v.rule))
        .collect()
}

const R1: RuleSet = RuleSet {
    panic_freedom: true,
    determinism: false,
    float_compare: false,
};

#[test]
fn strings_raw_strings_and_nested_comments_do_not_fire() {
    // Only the real `xs.unwrap()` on line 16 fires; the copies inside
    // cooked strings, raw strings, escaped strings, and a nested block
    // comment are invisible to the rules.
    assert_eq!(
        diags("strings_and_comments.rs", R1),
        vec![(16, 8, "panic-freedom")]
    );
}

#[test]
fn cfg_test_modules_and_test_fns_are_exempt() {
    assert_eq!(
        diags("cfg_test_module.rs", R1),
        vec![(5, 8, "panic-freedom")]
    );
}

#[test]
fn allow_requires_nonempty_reason_and_known_rule() {
    assert_eq!(
        diags("allow_reasons.rs", R1),
        vec![
            (6, 5, "allow-syntax"),   // empty reason is a violation...
            (7, 17, "panic-freedom"), // ...and suppresses nothing
            (9, 5, "allow-syntax"),   // unknown rule id
            (10, 17, "panic-freedom"),
        ]
    );
}

#[test]
fn unsafe_without_safety_comment_fires_documented_sites_pass() {
    let analysis = analyze_source("unsafe_sites.rs", &fixture("unsafe_sites.rs"), R1);
    let triples: Vec<_> = analysis
        .violations
        .iter()
        .map(|v| (v.line, v.col, v.rule))
        .collect();
    assert_eq!(triples, vec![(5, 13, "unsafe-hygiene")]);
    // The inventory counts every site, documented or not: `bad`,
    // `good`, the `unsafe fn` and its inner block.
    assert_eq!(analysis.unsafe_count, 4);
}

#[test]
fn determinism_rule_flags_hashmap_clocks_and_thread_identity() {
    let rules = RuleSet {
        panic_freedom: false,
        determinism: true,
        float_compare: false,
    };
    assert_eq!(
        diags("determinism.rs", rules),
        vec![
            (3, 23, "determinism"), // use ...::HashMap
            (4, 16, "determinism"), // use ...::Instant
            (7, 12, "determinism"), // HashMap type annotation
            (7, 32, "determinism"), // HashMap::new()
            (8, 13, "determinism"), // Instant::now()
            (9, 19, "determinism"), // thread::current()
        ]
    );
}

#[test]
fn float_compare_flags_literal_equality_not_to_bits() {
    let rules = RuleSet {
        panic_freedom: false,
        determinism: false,
        float_compare: true,
    };
    assert_eq!(
        diags("float_compare.rs", rules),
        vec![(4, 7, "float-compare"), (8, 12, "float-compare")]
    );
}

#[test]
fn literal_subscripts_fire_ranges_and_dynamic_indexes_do_not() {
    assert_eq!(diags("literal_index.rs", R1), vec![(4, 7, "panic-freedom")]);
}

#[test]
fn panic_family_macros_fire_and_cfg_not_test_is_in_scope() {
    assert_eq!(
        diags("panic_macros.rs", R1),
        vec![
            (5, 14, "panic-freedom"),
            (6, 14, "panic-freedom"),
            (7, 14, "panic-freedom"),
            (14, 5, "panic-freedom"),
        ]
    );
}
