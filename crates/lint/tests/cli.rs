//! Binary-level contract: exit codes 0/1/2, `--json` machine output,
//! `--rule` filtering and `--baseline` suppression, driven against a
//! throwaway mini-workspace with a seeded hot-path violation.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ptherm-lint")
}

/// Builds a disposable workspace whose `crates/core/src/cosim/` scope
/// contains one seeded R1 violation and one clean file.
fn seeded_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("ptherm-lint-cli-{tag}-{}", std::process::id()));
    let cosim = root.join("crates/core/src/cosim");
    std::fs::create_dir_all(&cosim).expect("mkdir");
    std::fs::create_dir_all(root.join("ci")).expect("mkdir ci");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(
        cosim.join("bad.rs"),
        "pub fn f() -> u32 {\n    None::<u32>.unwrap()\n}\n",
    )
    .expect("bad.rs");
    std::fs::write(
        cosim.join("good.rs"),
        "pub fn g() -> Option<u32> {\n    None\n}\n",
    )
    .expect("good.rs");
    std::fs::write(
        root.join("ci/unsafe_inventory.json"),
        "{\n  \"files\": {\n  },\n  \"total\": 0\n}\n",
    )
    .expect("inventory");
    root
}

fn run(root: &Path, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(bin())
        .arg("--root")
        .arg(root)
        .args(args)
        .output()
        .expect("spawn ptherm-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn seeded_violation_exits_1_with_rule_id_in_json() {
    let root = seeded_workspace("seeded");
    let (code, stdout, _) = run(&root, &["--json"]);
    assert_eq!(code, 1);
    assert!(
        stdout.contains("\"rule\": \"panic-freedom\""),
        "JSON must carry the rule id, got:\n{stdout}"
    );
    assert!(stdout.contains("crates/core/src/cosim/bad.rs"));
    assert!(stdout.contains("\"line\": 2"));
    assert!(stdout.contains("\"count\": 1"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn rule_filter_and_baseline_suppress_to_exit_0() {
    let root = seeded_workspace("filter");
    // Filtering to an unrelated rule hides the violation.
    let (code, stdout, _) = run(&root, &["--rule", "determinism", "--json"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"count\": 0"));
    // A baseline carrying the exact (file, line, rule) hides it too.
    let baseline = root.join("baseline.txt");
    let (code, _, _) = run(
        &root,
        &["--write-baseline", baseline.to_str().expect("utf8")],
    );
    assert_eq!(code, 1, "writing a baseline still reports this run");
    let (code, stdout, _) = run(&root, &["--baseline", baseline.to_str().expect("utf8")]);
    assert_eq!(code, 0, "baselined violation must be suppressed:\n{stdout}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn bad_invocation_exits_2() {
    let root = seeded_workspace("badflag");
    let (code, _, stderr) = run(&root, &["--no-such-flag"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage:"), "stderr was: {stderr}");
    let (code, _, stderr) = run(&root, &["--rule", "no-such-rule"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown rule"), "stderr was: {stderr}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn clean_tree_exits_0() {
    let root = seeded_workspace("clean");
    std::fs::write(
        root.join("crates/core/src/cosim/bad.rs"),
        "pub fn f() -> Option<u32> {\n    None\n}\n",
    )
    .expect("fix bad.rs");
    let (code, stdout, _) = run(&root, &["--json"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("\"count\": 0"));
    std::fs::remove_dir_all(&root).ok();
}
