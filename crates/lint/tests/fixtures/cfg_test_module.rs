// Fixture: `#[cfg(test)]` modules and `#[test]` fns are exempt from
// panic-freedom; shipping code is not.
pub fn shipping() {
    let xs: Option<u32> = None;
    xs.expect("boom");
}

#[cfg(test)]
mod tests {
    fn helper() {
        let xs: Option<u32> = None;
        xs.unwrap();
        xs.expect("fine in tests");
    }
}

#[test]
fn a_test() {
    None::<u32>.unwrap();
}
