// Fixture: every unsafe needs an adjacent SAFETY comment; doc
// `# Safety` sections on the item count too.
pub fn bad() {
    let xs = [1u8, 2];
    let _ = unsafe { *xs.as_ptr() };
}

pub fn good() {
    let xs = [1u8, 2];
    // SAFETY: the array is non-empty, so the pointer is valid.
    let _ = unsafe { *xs.as_ptr() };
}

/// Reads the byte behind `p`.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn documented(p: *const u8) -> u8 {
    // SAFETY: caller contract (see `# Safety`).
    unsafe { *p }
}
