// Fixture: panic-family macros kill workers; `#[cfg(not(test))]` is
// NOT test code and stays in scope.
pub fn boom(kind: u8) -> u8 {
    match kind {
        0 => panic!("no"),
        1 => unreachable!(),
        2 => todo!(),
        _ => kind,
    }
}

#[cfg(not(test))]
pub fn not_test_gated() {
    unimplemented!()
}
