// Fixture: bare float equality in shipping code; bitwise identity
// goes through to_bits(), tolerances through an epsilon.
pub fn bad(x: f64) -> bool {
    x == 0.0
}

pub fn also_bad(x: f64) -> bool {
    1.5e-3 != x
}

pub fn fine(x: f64, y: f64) -> bool {
    x.to_bits() == y.to_bits() && (x - y).abs() < 1e-12
}

pub fn ints(a: usize) -> bool {
    a == 0
}
