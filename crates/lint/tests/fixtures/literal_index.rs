// Fixture: literal subscripts are statically-visible panic sites;
// ranges, dynamic subscripts and array literals are not flagged.
pub fn bad(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn fine(xs: &[u32], i: usize) -> u32 {
    let head = xs.first().copied().unwrap_or(0);
    let arr = [1u32, 2, 3];
    let tail = &xs[1..];
    head + arr[i % 3] + tail.len() as u32 + xs.get(2).copied().unwrap_or(0)
}
