// Fixture: unwrap-looking text inside strings and comments must not
// fire; the one real call at the end must.
fn strings() {
    let a = "calls .unwrap() in a string";
    let b = r#"raw string .expect("x") with "quotes" inside"#;
    let c = "escaped \" quote then .unwrap()";
    /* block comment .unwrap()
       /* nested block comment .expect() */
       still comment .unwrap() */
    let d = 'x';
    let _ = (a, b, c, d);
}

fn real() -> u32 {
    let xs: Option<u32> = None;
    xs.unwrap()
}
