// Fixture: the escape hatch needs a reason; empty reasons are
// themselves violations and suppress nothing.
fn a() {
    // lint:allow(panic-freedom) — upstream len check makes this infallible
    None::<u32>.unwrap();
    // lint:allow(panic-freedom)
    None::<u32>.unwrap();
    None::<u32>.unwrap(); // lint:allow(panic-freedom) — trailing form, justified
    // lint:allow(no-such-rule) — the rule id must exist
    None::<u32>.unwrap();
}
