// Fixture: fingerprint/protocol modules must not read wall clocks,
// thread identity, or seed-dependent iteration order.
use std::collections::HashMap;
use std::time::Instant;

fn fingerprint_inputs() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let t = Instant::now();
    let id = std::thread::current().id();
    let _ = (t, id);
    m.len()
}
