//! The lint runs green on its own workspace: zero unjustified
//! violations, and the unsafe inventory manifest matches the tree.
//! This is the same invariant CI's `lint` job gates on, pinned as a
//! plain test so `cargo test` alone catches drift.

use ptherm_lint::{
    find_workspace_root, lint_workspace, load_inventory, rules_for, UNSAFE_INVENTORY,
};
use std::path::Path;

fn root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("crates/lint lives inside the workspace")
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(&root()).expect("workspace scan");
    assert!(
        report.violations.is_empty(),
        "the workspace must lint clean, found:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("{}:{}:{} {} {}", v.file, v.line, v.col, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk really covered the tree (all crates + root src/tests).
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — walker lost the tree?",
        report.files_scanned
    );
}

#[test]
fn unsafe_inventory_manifest_matches_tree() {
    let report = lint_workspace(&root()).expect("workspace scan");
    let manifest = load_inventory(&root().join(UNSAFE_INVENTORY))
        .expect("ci/unsafe_inventory.json is checked in");
    assert_eq!(
        report.unsafe_inventory, manifest,
        "unsafe inventory drift — regenerate with `ptherm-lint --write-inventory`"
    );
    // The audited unsafe surface is exactly the SIMD kernels plus the
    // one signal(2) binding `fleet serve` uses for graceful drain.
    for file in manifest.keys() {
        assert!(
            file.starts_with("crates/math/src/") || file == "crates/bench/src/bin/fleet.rs",
            "unexpected unsafe outside the audited surface: {file}"
        );
    }
}

/// The scenario-space additions sit inside the gated scopes: the
/// envelope bisector and biased power law ride R1's cosim hot-path
/// prefix, and the delta result-cache fingerprint in
/// `fleet/src/jobs.rs` stays under R2's determinism rules. Pinned so
/// a future scope refactor cannot silently drop them.
#[test]
fn scenario_space_sources_are_inside_the_gated_scopes() {
    for hot in [
        "crates/core/src/cosim/sweep.rs",
        "crates/core/src/cosim/envelope.rs",
        "crates/core/src/cosim/biased.rs",
        "crates/fleet/src/engine.rs",
        "crates/fleet/src/cache.rs",
    ] {
        let rules = rules_for(hot);
        assert!(rules.panic_freedom, "{hot} must carry R1 panic-freedom");
        assert!(rules.float_compare, "{hot} must carry R4 float-compare");
    }
    let jobs = rules_for("crates/fleet/src/jobs.rs");
    assert!(
        jobs.determinism,
        "the delta result-cache fingerprint lives in jobs.rs — R2 must apply"
    );
}
