//! A string/char/comment/raw-string aware Rust lexer.
//!
//! `syn` is not in the offline vendor set, so the analyzer works at the
//! token level: this module turns a `.rs` source into a stream of
//! [`Token`]s (identifiers, literals, punctuation) plus a parallel list
//! of [`Comment`]s. Everything the rule engine must *never* misread —
//! `"calls .unwrap()"` inside a string, `unwrap` inside a nested block
//! comment, `r#"..."#` raw strings, `'a'` char literals vs `'a`
//! lifetimes — is resolved here, once, so the rules in
//! [`crate::rules`] can reason about real code tokens only.
//!
//! Positions are 1-based `(line, col)` in characters, matching the
//! `file:line:col` diagnostic format.

/// What a [`Token`] is. Multi-character operators that the rules need
/// to tell apart from their prefixes (`==` vs `=`, `::` vs `:`, `..`
/// vs `.`) are lexed as single [`TokenKind::Op`] tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `fn`, ...).
    Ident,
    /// Integer literal (`0`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1.`, `3.0f64`).
    Float,
    /// String, raw string, byte string or C string literal.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A multi-character operator: `==` `!=` `::` `..` `..=` `->` `=>`
    /// `&&` `||` `<<` `>>` `<=` `>=` `+=` `-=` `*=` `/=` `%=` `^=`
    /// `&=` `|=` `<<=` `>>=`.
    Op,
    /// Any other single punctuation character.
    Punct,
}

/// One lexed token with its text and 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

/// One comment (line `//`/`///`/`//!` or block `/* */`, doc or not),
/// with the full raw text including delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
    pub col: usize,
    /// Last line the comment touches (equals `line` for line comments).
    pub end_line: usize,
    /// True when nothing but whitespace precedes the comment on its
    /// starting line — such comments annotate the *next* code line.
    pub owns_line: bool,
}

/// Lexer output: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    col: usize,
    /// True until a non-whitespace char is consumed on the current line.
    at_line_start: bool,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
            at_line_start: true,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.at_line_start = true;
        } else {
            self.col += 1;
            if !c.is_whitespace() {
                self.at_line_start = false;
            }
        }
        Some(c)
    }
}

/// Lexes `src` into tokens and comments. Unterminated literals and
/// comments are tolerated (the remainder of the file is swallowed into
/// the open literal): the lint must keep scanning a broken tree rather
/// than crash on it.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        let col = cur.col;
        let owns_line = cur.at_line_start;

        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' {
            let mut look = cur.chars.clone();
            look.next();
            match look.peek() {
                Some('/') => {
                    let mut text = String::new();
                    while let Some(&n) = cur.chars.peek() {
                        if n == '\n' {
                            break;
                        }
                        text.push(n);
                        cur.bump();
                    }
                    out.comments.push(Comment {
                        text,
                        line,
                        col,
                        end_line: line,
                        owns_line,
                    });
                    continue;
                }
                Some('*') => {
                    let mut text = String::new();
                    text.push(cur.bump().unwrap_or('/')); // '/'
                    text.push(cur.bump().unwrap_or('*')); // '*'
                    let mut depth = 1usize;
                    while depth > 0 {
                        match cur.bump() {
                            Some('*') if cur.peek() == Some('/') => {
                                text.push('*');
                                text.push(cur.bump().unwrap_or('/'));
                                depth -= 1;
                            }
                            Some('/') if cur.peek() == Some('*') => {
                                text.push('/');
                                text.push(cur.bump().unwrap_or('*'));
                                depth += 1;
                            }
                            Some(ch) => text.push(ch),
                            None => break,
                        }
                    }
                    out.comments.push(Comment {
                        text,
                        line,
                        col,
                        end_line: cur.line,
                        owns_line,
                    });
                    continue;
                }
                _ => {}
            }
        }

        // Identifiers, keywords, and literal prefixes (r"", b"", br#""#,
        // c"", cr#""#).
        if c.is_alphabetic() || c == '_' {
            let mut ident = String::new();
            while let Some(n) = cur.peek() {
                if n.is_alphanumeric() || n == '_' {
                    ident.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
            let is_literal_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "c" | "cr");
            if is_literal_prefix && matches!(cur.peek(), Some('"') | Some('#')) {
                let raw = ident.contains('r');
                if let Some(text) = scan_string(&mut cur, &ident, raw) {
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
                // `#` after a plain ident that wasn't a raw string
                // opener (e.g. `r#foo` raw identifiers): fall through,
                // the ident token stands and `#` lexes as punctuation.
            }
            if ident == "b" && cur.peek() == Some('\'') {
                cur.bump();
                let text = scan_char_body(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: format!("b'{text}"),
                    line,
                    col,
                });
                continue;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
                col,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let (text, kind) = scan_number(&mut cur);
            out.tokens.push(Token {
                kind,
                text,
                line,
                col,
            });
            continue;
        }

        // Plain strings.
        if c == '"' {
            if let Some(text) = scan_string(&mut cur, "", false) {
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            cur.bump();
            let mut look = cur.chars.clone();
            let first = look.next();
            let second = look.next();
            let is_lifetime =
                matches!(first, Some(f) if f.is_alphabetic() || f == '_') && second != Some('\'');
            if is_lifetime {
                let mut name = String::from("'");
                while let Some(n) = cur.peek() {
                    if n.is_alphanumeric() || n == '_' {
                        name.push(n);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: name,
                    line,
                    col,
                });
            } else {
                let text = scan_char_body(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: format!("'{text}"),
                    line,
                    col,
                });
            }
            continue;
        }

        // Operators and punctuation.
        cur.bump();
        let two = cur.peek().map(|n| (c, n));
        let op = match two {
            Some(('=', '=')) | Some(('!', '=')) | Some((':', ':')) | Some(('-', '>'))
            | Some(('=', '>')) | Some(('&', '&')) | Some(('|', '|')) | Some(('<', '='))
            | Some(('>', '=')) | Some(('+', '=')) | Some(('-', '=')) | Some(('*', '='))
            | Some(('/', '=')) | Some(('%', '=')) | Some(('^', '=')) | Some(('&', '='))
            | Some(('|', '=')) | Some(('<', '<')) | Some(('>', '>')) | Some(('.', '.')) => {
                let second = cur.bump().unwrap_or(' ');
                let mut text = String::new();
                text.push(c);
                text.push(second);
                // `..=`, `<<=`, `>>=`.
                if (text == ".." || text == "<<" || text == ">>") && cur.peek() == Some('=') {
                    text.push(cur.bump().unwrap_or('='));
                }
                Some(text)
            }
            _ => None,
        };
        match op {
            Some(text) => out.tokens.push(Token {
                kind: TokenKind::Op,
                text,
                line,
                col,
            }),
            None => out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
                col,
            }),
        }
    }

    out
}

/// Scans a string literal whose prefix (`r`, `b`, `br`, ...) was
/// already consumed. `raw` strings count `#` guards and ignore
/// escapes; cooked strings honour `\"` and `\\`. Returns `None` if the
/// cursor is not actually at a string opener.
fn scan_string(cur: &mut Cursor, prefix: &str, raw: bool) -> Option<String> {
    let mut text = String::from(prefix);
    let mut hashes = 0usize;
    if raw {
        while cur.peek() == Some('#') {
            hashes += 1;
            text.push('#');
            cur.bump();
        }
    }
    if cur.peek() != Some('"') {
        return None;
    }
    text.push(cur.bump()?); // opening quote
    loop {
        match cur.bump() {
            None => break,
            Some('\\') if !raw => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            Some('"') => {
                text.push('"');
                if raw {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek() == Some('#') {
                        text.push(cur.bump().unwrap_or('#'));
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                } else {
                    break;
                }
            }
            Some(ch) => text.push(ch),
        }
    }
    Some(text)
}

/// Scans a char/byte literal body after the opening `'`.
fn scan_char_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    loop {
        match cur.bump() {
            None => break,
            Some('\\') => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            Some('\'') => {
                text.push('\'');
                break;
            }
            Some(ch) => text.push(ch),
        }
    }
    text
}

/// Scans a numeric literal, deciding int vs float. A `.` continues the
/// number only when it is not the start of `..` and not a method call
/// (`1.max(2)`), matching rustc's rules closely enough for linting.
fn scan_number(cur: &mut Cursor) -> (String, TokenKind) {
    let mut text = String::new();
    let mut kind = TokenKind::Int;
    // Radix prefix.
    if cur.peek() == Some('0') {
        text.push(cur.bump().unwrap_or('0'));
        if let Some(r) = cur.peek() {
            if matches!(r, 'x' | 'X' | 'o' | 'O' | 'b' | 'B') {
                text.push(cur.bump().unwrap_or(r));
                while let Some(n) = cur.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        text.push(n);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                return (text, TokenKind::Int);
            }
        }
    }
    while let Some(n) = cur.peek() {
        if n.is_ascii_digit() || n == '_' {
            text.push(n);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part.
    if cur.peek() == Some('.') {
        let mut look = cur.chars.clone();
        look.next();
        match look.peek() {
            // `..` range, or `1.method()` / `1._field`: the dot is not ours.
            Some('.') => {}
            Some(n) if n.is_alphabetic() || *n == '_' => {}
            // `1.0` or trailing `1.`.
            _ => {
                kind = TokenKind::Float;
                text.push(cur.bump().unwrap_or('.'));
                while let Some(n) = cur.peek() {
                    if n.is_ascii_digit() || n == '_' {
                        text.push(n);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some('e') | Some('E')) {
        let mut look = cur.chars.clone();
        look.next();
        let next = look.peek().copied();
        let digit_after_sign = matches!(next, Some('+') | Some('-'))
            && matches!(look.clone().nth(1), Some(d) if d.is_ascii_digit());
        if matches!(next, Some(d) if d.is_ascii_digit()) || digit_after_sign {
            kind = TokenKind::Float;
            text.push(cur.bump().unwrap_or('e'));
            if matches!(cur.peek(), Some('+') | Some('-')) {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(n) = cur.peek() {
                if n.is_ascii_digit() || n == '_' {
                    text.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Suffix (`u64`, `f64`, ...). An `f32`/`f64` suffix makes it a float.
    let mut suffix = String::new();
    while let Some(n) = cur.peek() {
        if n.is_ascii_alphanumeric() || n == '_' {
            suffix.push(n);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        kind = TokenKind::Float;
    }
    text.push_str(&suffix);
    (text, kind)
}
