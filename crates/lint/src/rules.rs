//! The rule engine: project invariants as machine-checkable passes
//! over the token stream produced by [`crate::lexer`].
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | `panic-freedom` (R1) | no `.unwrap()` / `.expect(...)` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` / literal-subscript indexing | hot-path modules, non-test code |
//! | `determinism` (R2) | no `HashMap` / `HashSet` / `Instant` / `SystemTime` / `thread::current` | fingerprint-, protocol- and result-rendering modules, non-test code |
//! | `unsafe-hygiene` (R3) | every `unsafe` needs an adjacent `// SAFETY:` (or `# Safety` doc) comment, and per-file counts must match `ci/unsafe_inventory.json` | whole workspace |
//! | `float-compare` (R4) | no bare `==` / `!=` against a float literal | hot-path + determinism modules, non-test code |
//! | `allow-syntax` | `// lint:allow(<rule>) — <reason>` must name a known rule and give a non-empty reason | wherever an allow appears |
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions) is exempt
//! from R1/R2/R4: the bitwise-identity suites *should* compare floats
//! exactly and may unwrap freely. R3 applies everywhere — unsafe in a
//! test is still unsafe.
//!
//! The escape hatch is `// lint:allow(<rule>) — <reason>` on the same
//! line as the violation or on its own line immediately above. An
//! empty reason is itself a violation and suppresses nothing.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::BTreeMap;

/// Every rule the engine knows, in severity-stable report order.
pub const RULES: [&str; 5] = [
    "panic-freedom",
    "determinism",
    "unsafe-hygiene",
    "float-compare",
    "allow-syntax",
];

/// One diagnostic: `file:line:col rule message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub rule: &'static str,
    pub message: String,
}

/// Which rules apply to a file (R3 `unsafe-hygiene` always applies and
/// has no flag here; the inventory half is checked workspace-wide by
/// the caller).
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    pub panic_freedom: bool,
    pub determinism: bool,
    pub float_compare: bool,
}

/// Token-level facts about one analyzed file, shared by the rules and
/// by the workspace-level unsafe inventory.
pub struct FileAnalysis {
    pub violations: Vec<Violation>,
    /// Number of `unsafe` keyword tokens (strings/comments excluded),
    /// test code included — the inventory pins *all* unsafe.
    pub unsafe_count: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineClass {
    Blank,
    CommentOnly,
    AttrOnly,
    Code,
}

struct Allow {
    rule: String,
    target_line: usize,
    has_reason: bool,
    line: usize,
    col: usize,
}

/// Runs every applicable rule over `src`. `file` is the path reported
/// in diagnostics (workspace-relative, forward slashes).
pub fn analyze_source(file: &str, src: &str, rules: RuleSet) -> FileAnalysis {
    let lexed = lex(src);
    let tokens = &lexed.tokens;
    let in_test = classify_test_regions(tokens);
    let attr_token = attribute_tokens(tokens);
    let line_class = classify_lines(src, tokens, &lexed.comments, &attr_token);
    let allows = parse_allows(&lexed.comments, tokens);

    let mut raw: Vec<Violation> = Vec::new();
    let mut unsafe_count = 0usize;

    for (i, t) in tokens.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
        let next = tokens.get(i + 1);
        let next2 = tokens.get(i + 2);

        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            unsafe_count += 1;
            if !has_safety_comment(t, &lexed.comments, &line_class) {
                raw.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: "unsafe-hygiene",
                    message: "`unsafe` without an adjacent `// SAFETY:` comment \
                              documenting the invariant that makes it sound"
                        .to_string(),
                });
            }
        }

        if in_test[i] {
            continue;
        }

        if rules.panic_freedom {
            if t.kind == TokenKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && prev.is_some_and(|p| p.text == ".")
                && next.is_some_and(|n| n.text == "(")
            {
                raw.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: "panic-freedom",
                    message: format!(
                        "`.{}()` on the hot path can panic a worker; return a typed \
                         error or justify with `// lint:allow(panic-freedom) — <reason>`",
                        t.text
                    ),
                });
            }
            if t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && next.is_some_and(|n| n.text == "!")
                && prev.is_none_or(|p| p.text != "::")
            {
                raw.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: "panic-freedom",
                    message: format!(
                        "`{}!` on the hot path kills a worker; return a typed error \
                         or justify with `// lint:allow(panic-freedom) — <reason>`",
                        t.text
                    ),
                });
            }
            // Literal-subscript indexing is a statically visible
            // panic-unless-guarded site (`xs[0]` with no emptiness
            // guard). Dynamic subscripts are too noisy to flag at
            // token level and are left to review.
            if t.text == "["
                && t.kind == TokenKind::Punct
                && prev
                    .is_some_and(|p| p.kind == TokenKind::Ident || p.text == ")" || p.text == "]")
                && next.is_some_and(|n| n.kind == TokenKind::Int)
                && next2.is_some_and(|n| n.text == "]")
            {
                raw.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: "panic-freedom",
                    message: "literal-subscript index panics when out of bounds; use \
                              `.get(..)`, `.first()`/`.last()` or guard the length"
                        .to_string(),
                });
            }
        }

        if rules.determinism && t.kind == TokenKind::Ident {
            let what = match t.text.as_str() {
                "HashMap" | "HashSet" => {
                    Some("iteration order is seed-dependent; use BTreeMap/BTreeSet or a Vec")
                }
                "Instant" | "SystemTime" => {
                    Some("wall-clock reads make output depend on when a run happened")
                }
                "thread"
                    if next.is_some_and(|n| n.text == "::")
                        && next2.is_some_and(|n| n.text == "current") =>
                {
                    Some("thread identity varies run to run")
                }
                _ => None,
            };
            if let Some(why) = what {
                raw.push(Violation {
                    file: file.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: "determinism",
                    message: format!("`{}` in a determinism-critical module: {}", t.text, why),
                });
            }
        }

        if rules.float_compare
            && t.kind == TokenKind::Op
            && (t.text == "==" || t.text == "!=")
            && (prev.is_some_and(|p| p.kind == TokenKind::Float)
                || next.is_some_and(|n| n.kind == TokenKind::Float))
        {
            raw.push(Violation {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: "float-compare",
                message: format!(
                    "bare `{}` against a float literal; compare `.to_bits()` for \
                     identity or use an explicit tolerance",
                    t.text
                ),
            });
        }
    }

    // Apply allows: a well-formed allow suppresses its rule on the
    // target line; a malformed one is a violation in its own right.
    let mut allowed: BTreeMap<(usize, &str), bool> = BTreeMap::new();
    let mut violations: Vec<Violation> = Vec::new();
    for a in &allows {
        let known = RULES.contains(&a.rule.as_str());
        if !known {
            violations.push(Violation {
                file: file.to_string(),
                line: a.line,
                col: a.col,
                rule: "allow-syntax",
                message: format!(
                    "`lint:allow({})` names an unknown rule (known: {})",
                    a.rule,
                    RULES.join(", ")
                ),
            });
            continue;
        }
        if !a.has_reason {
            violations.push(Violation {
                file: file.to_string(),
                line: a.line,
                col: a.col,
                rule: "allow-syntax",
                message: format!(
                    "`lint:allow({})` requires a non-empty reason: \
                     `// lint:allow({}) — <why this is sound>`",
                    a.rule, a.rule
                ),
            });
            continue;
        }
        for rule in RULES {
            if rule == a.rule {
                allowed.insert((a.target_line, rule), true);
            }
        }
    }
    violations.extend(
        raw.into_iter()
            .filter(|v| !allowed.contains_key(&(v.line, v.rule))),
    );
    violations.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));

    FileAnalysis {
        violations,
        unsafe_count,
    }
}

/// Marks every token inside a `#[cfg(test)]`/`#[test]` item body. The
/// pass tracks brace nesting; an attribute whose identifiers include
/// `test` (and not `not`, so `#[cfg(not(test))]` stays non-test) arms
/// the next `{` at item level — intervening signature tokens count as
/// test too, a top-level `;` (outside parens/brackets) disarms.
fn classify_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut stack: Vec<bool> = Vec::new();
    let mut pending = false;
    let mut group_depth = 0usize; // ( and [ nesting inside a signature
    let mut i = 0;
    while i < tokens.len() {
        let current = *stack.last().unwrap_or(&false);
        // Attribute: `#` or `#!` then a bracketed group.
        if tokens[i].text == "#"
            && (tokens.get(i + 1).is_some_and(|t| t.text == "[")
                || (tokens.get(i + 1).is_some_and(|t| t.text == "!")
                    && tokens.get(i + 2).is_some_and(|t| t.text == "[")))
        {
            let open = if tokens[i + 1].text == "[" {
                i + 1
            } else {
                i + 2
            };
            let mut depth = 0usize;
            let mut j = open;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if tokens[j].kind == TokenKind::Ident => has_test = true,
                    "not" if tokens[j].kind == TokenKind::Ident => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                pending = true;
            }
            let end = j.min(tokens.len() - 1);
            in_test[i..=end].fill(current || pending);
            i = j + 1;
            continue;
        }
        match tokens[i].text.as_str() {
            "{" => {
                stack.push(current || pending);
                pending = false;
            }
            "}" => {
                stack.pop();
            }
            "(" | "[" => group_depth += 1,
            ")" | "]" => group_depth = group_depth.saturating_sub(1),
            ";" if group_depth == 0 => pending = false,
            _ => {}
        }
        in_test[i] = *stack.last().unwrap_or(&false) || pending;
        i += 1;
    }
    in_test
}

/// Marks tokens that belong to attribute groups (`#[...]` / `#![...]`),
/// so attribute-only lines don't interrupt a SAFETY-comment walk-back.
fn attribute_tokens(tokens: &[Token]) -> Vec<bool> {
    let mut is_attr = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#"
            && (tokens.get(i + 1).is_some_and(|t| t.text == "[")
                || (tokens.get(i + 1).is_some_and(|t| t.text == "!")
                    && tokens.get(i + 2).is_some_and(|t| t.text == "[")))
        {
            let open = if tokens[i + 1].text == "[" {
                i + 1
            } else {
                i + 2
            };
            let mut depth = 0usize;
            let mut j = open;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let end = j.min(tokens.len() - 1);
            for flag in is_attr.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    is_attr
}

/// Per-line classification used by the SAFETY walk-back.
fn classify_lines(
    src: &str,
    tokens: &[Token],
    comments: &[Comment],
    attr_token: &[bool],
) -> Vec<LineClass> {
    let line_count = src.lines().count().max(1);
    let mut class = vec![LineClass::Blank; line_count + 2];
    for c in comments {
        class[c.line..=c.end_line.min(line_count)].fill(LineClass::CommentOnly);
    }
    for (i, t) in tokens.iter().enumerate() {
        let l = t.line.min(line_count);
        if attr_token[i] {
            if class[l] != LineClass::Code {
                class[l] = LineClass::AttrOnly;
            }
        } else {
            class[l] = LineClass::Code;
        }
    }
    class
}

/// True when an `unsafe` token has a SAFETY comment on its own line or
/// on the contiguous run of comment/attribute lines directly above it
/// (a blank line or intervening code breaks the run).
fn has_safety_comment(t: &Token, comments: &[Comment], line_class: &[LineClass]) -> bool {
    let marker = |c: &Comment| c.text.contains("SAFETY:") || c.text.contains("# Safety");
    if comments
        .iter()
        .any(|c| c.line <= t.line && t.line <= c.end_line && marker(c))
    {
        return true;
    }
    let mut l = t.line;
    while l > 1 {
        l -= 1;
        match line_class.get(l) {
            Some(LineClass::CommentOnly) | Some(LineClass::AttrOnly) => {
                if comments
                    .iter()
                    .any(|c| c.line <= l && l <= c.end_line && marker(c))
                {
                    return true;
                }
            }
            _ => return false,
        }
    }
    false
}

/// Extracts every `lint:allow(<rule>)` escape hatch from the comments.
fn parse_allows(comments: &[Comment], tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            // `lint:allow(<rule>)` with an angle-bracket placeholder is
            // documentation quoting the syntax, not an allow.
            if rule.starts_with('<') {
                rest = tail;
                continue;
            }
            // Reason: whatever follows the `)` once separators (spaces,
            // dashes, em-dashes, colons) are stripped. For block
            // comments the closing `*/` alone is not a reason.
            let reason = tail
                .trim_end_matches("*/")
                .trim_matches(|ch: char| {
                    ch.is_whitespace() || ch == '-' || ch == '—' || ch == ':' || ch == '–'
                })
                .to_string();
            let target_line = if c.owns_line {
                tokens
                    .iter()
                    .find(|t| t.line > c.end_line || (t.line == c.line && t.col > c.col))
                    .map(|t| t.line)
                    .unwrap_or(c.line)
            } else {
                c.line
            };
            allows.push(Allow {
                rule,
                target_line,
                has_reason: !reason.is_empty(),
                line: c.line,
                col: c.col,
            });
            rest = tail;
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, rules: RuleSet) -> Vec<Violation> {
        analyze_source("mem.rs", src, rules).violations
    }

    const R1: RuleSet = RuleSet {
        panic_freedom: true,
        determinism: false,
        float_compare: false,
    };

    #[test]
    fn unwrap_in_code_flagged_in_string_not() {
        let v = run(
            "fn f() { x.unwrap(); let s = \"calls .unwrap() here\"; }",
            R1,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "panic-freedom");
        assert_eq!((v[0].line, v[0].col), (1, 12));
    }

    #[test]
    fn cfg_test_module_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(run(src, R1).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_without_reason_rejected() {
        let ok = "// lint:allow(panic-freedom) — cursor yields each id once\nx.unwrap();\n";
        assert!(run(ok, R1).is_empty());
        let bad = "// lint:allow(panic-freedom)\nx.unwrap();\n";
        let v = run(bad, R1);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].rule, "allow-syntax");
        assert_eq!(v[1].rule, "panic-freedom");
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { g() } }";
        let v = run(bad, RuleSet::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-hygiene");
        let good = "fn f() {\n    // SAFETY: g has no preconditions.\n    unsafe { g() }\n}";
        assert!(run(good, RuleSet::default()).is_empty());
    }

    #[test]
    fn float_compare_flagged() {
        let rules = RuleSet {
            float_compare: true,
            ..RuleSet::default()
        };
        let v = run("fn f(x: f64) -> bool { x == 0.0 }", rules);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-compare");
        assert!(run("fn f(x: usize) -> bool { x == 0 }", rules).is_empty());
    }
}
