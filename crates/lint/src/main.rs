//! `ptherm-lint` CLI. Exit codes: 0 clean, 1 violations, 2 bad
//! invocation or I/O failure.
//!
//! ```text
//! ptherm-lint [--root <dir>] [--json] [--rule <id>[,<id>...]]
//!             [--baseline <file>] [--write-baseline <file>]
//!             [--write-inventory]
//! ```

use ptherm_lint::{
    find_workspace_root, lint_workspace, load_baseline, render_baseline, render_human,
    render_inventory, render_json, Violation, RULES, UNSAFE_INVENTORY,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: ptherm-lint [--root <dir>] [--json] [--rule <id>[,<id>...]] \
[--baseline <file>] [--write-baseline <file>] [--write-inventory]";

struct Options {
    root: Option<PathBuf>,
    json: bool,
    rules: Option<Vec<String>>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    write_inventory: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        rules: None,
        baseline: None,
        write_baseline: None,
        write_inventory: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--write-inventory" => opts.write_inventory = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--rule" => {
                let v = it.next().ok_or("--rule needs a rule id")?;
                let list: Vec<String> = v.split(',').map(|s| s.trim().to_string()).collect();
                for rule in &list {
                    if !RULES.contains(&rule.as_str()) {
                        return Err(format!(
                            "unknown rule `{rule}` (known: {})",
                            RULES.join(", ")
                        ));
                    }
                }
                opts.rules = Some(list);
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it.next().ok_or("--write-baseline needs a file")?;
                opts.write_baseline = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("ptherm-lint: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("ptherm-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ptherm-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let mut shown: Vec<Violation> = report.violations.clone();
    if let Some(rules) = &opts.rules {
        shown.retain(|v| rules.iter().any(|r| r == v.rule));
    }
    if let Some(path) = &opts.baseline {
        let baseline = match load_baseline(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ptherm-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        shown.retain(|v| {
            !baseline
                .iter()
                .any(|(f, l, r)| f == &v.file && *l == v.line && r == v.rule)
        });
    }

    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, render_baseline(&shown)) {
            eprintln!("ptherm-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if opts.write_inventory {
        let path = root.join(UNSAFE_INVENTORY);
        if let Err(e) = std::fs::write(&path, render_inventory(&report.unsafe_inventory)) {
            eprintln!("ptherm-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "ptherm-lint: wrote {} ({} file(s), {} site(s))",
            path.display(),
            report.unsafe_inventory.len(),
            report.unsafe_inventory.values().sum::<usize>()
        );
    }

    if opts.json {
        print!("{}", render_json(&report, &shown));
    } else {
        print!("{}", render_human(&shown));
        eprintln!(
            "ptherm-lint: {} file(s), {} violation(s){}",
            report.files_scanned,
            shown.len(),
            if shown.is_empty() { " — clean" } else { "" }
        );
    }

    if shown.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
