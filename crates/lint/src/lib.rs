//! `ptherm-lint` — workspace-aware static analysis for the ptherm
//! workspace.
//!
//! The engine's headline guarantees are *structural*: typed errors
//! instead of worker panics (fault tolerance), bitwise-deterministic
//! results across threads and backends, a small audited unsafe
//! surface. Tests sample those properties; this crate enforces them by
//! analysis of the source itself, as a hard CI gate. See
//! [`rules`] for the rule table and `docs/ARCHITECTURE.md` ("Static
//! analysis") for the workflow.
//!
//! Dependency-free on purpose (no `syn` in the offline vendor set, and
//! the lint must run even when the crates it audits do not build):
//! [`lexer`] is a purpose-built string/char/comment/raw-string aware
//! tokenizer with `#[cfg(test)]` awareness.

pub mod lexer;
pub mod rules;

pub use rules::{analyze_source, RuleSet, Violation, RULES};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Where the unsafe inventory manifest lives, workspace-relative.
pub const UNSAFE_INVENTORY: &str = "ci/unsafe_inventory.json";

/// Directories never scanned: third-party stand-ins, build output,
/// and the lint's own deliberately-bad fixture corpus.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Maps a workspace-relative path (forward slashes) to the rules that
/// apply to it. R3 (`unsafe-hygiene`) applies to every scanned file
/// and is not part of the set.
///
/// * R1 `panic-freedom`: the job hot path — `core/src/cosim/*`
///   (which includes the warm-start sweep chains, the biased power
///   law and the envelope bisector), `fleet/src/engine.rs`,
///   `fleet/src/cache.rs`, `fleet/src/server.rs`, `par/src/*`. A
///   panic here kills a worker mid-fleet-run (or a serve-mode
///   connection thread).
/// * R2 `determinism`: fingerprint, protocol and result-rendering
///   modules — `floorplan/src/fingerprint.rs`, `fleet/src/jobs.rs`
///   (home of `steady_result_fingerprint`, the delta result-cache
///   key), `fleet/src/json.rs`. Nondeterminism here breaks
///   replayability and delta cache-hit identity.
/// * R4 `float-compare`: both of the above sets.
pub fn rules_for(rel: &str) -> RuleSet {
    let hot_path = rel.starts_with("crates/core/src/cosim/")
        || rel == "crates/fleet/src/engine.rs"
        || rel == "crates/fleet/src/cache.rs"
        || rel == "crates/fleet/src/server.rs"
        || rel.starts_with("crates/par/src/");
    let determinism = matches!(
        rel,
        "crates/floorplan/src/fingerprint.rs"
            | "crates/fleet/src/jobs.rs"
            | "crates/fleet/src/json.rs"
    );
    RuleSet {
        panic_freedom: hot_path,
        determinism,
        float_compare: hot_path || determinism,
    }
}

/// Recursively collects every `.rs` file under `root`, skipping
/// `SKIP_DIRS` (`target`, `vendor`, `.git`, `fixtures`), sorted by
/// workspace-relative path so reports and the inventory are stable
/// across filesystems.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The workspace-relative path with forward slashes, for diagnostics
/// and manifest keys.
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Result of a whole-workspace run.
pub struct WorkspaceReport {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    /// Per-file unsafe counts (only files with at least one site).
    pub unsafe_inventory: BTreeMap<String, usize>,
}

/// Lints every source under `root`: per-file rules plus the
/// workspace-level unsafe inventory check against
/// `root/ci/unsafe_inventory.json` (a missing manifest pins the
/// inventory to empty, so any unsafe is flagged until the manifest is
/// checked in).
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let sources = collect_sources(root)?;
    let mut violations = Vec::new();
    let mut inventory = BTreeMap::new();
    for path in &sources {
        let rel = relative(root, path);
        let src = std::fs::read_to_string(path)?;
        let analysis = analyze_source(&rel, &src, rules_for(&rel));
        violations.extend(analysis.violations);
        if analysis.unsafe_count > 0 {
            inventory.insert(rel, analysis.unsafe_count);
        }
    }

    let manifest = load_inventory(&root.join(UNSAFE_INVENTORY)).unwrap_or_default();
    for (file, &count) in &inventory {
        let pinned = manifest.get(file).copied().unwrap_or(0);
        if count != pinned {
            violations.push(Violation {
                file: file.clone(),
                line: 1,
                col: 1,
                rule: "unsafe-hygiene",
                message: format!(
                    "unsafe inventory drift: {count} site(s) found, manifest pins \
                     {pinned} — adding unsafe is a reviewed diff, update {UNSAFE_INVENTORY}"
                ),
            });
        }
    }
    for (file, &pinned) in &manifest {
        if pinned > 0 && !inventory.contains_key(file) {
            violations.push(Violation {
                file: file.clone(),
                line: 1,
                col: 1,
                rule: "unsafe-hygiene",
                message: format!(
                    "unsafe inventory drift: manifest pins {pinned} site(s) but none \
                     found — update {UNSAFE_INVENTORY}"
                ),
            });
        }
    }

    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(WorkspaceReport {
        violations,
        files_scanned: sources.len(),
        unsafe_inventory: inventory,
    })
}

/// Parses the inventory manifest. The format is JSON
/// (`{"files": {"<path>": <count>, ...}}`) but read with a
/// purpose-built scanner: every `"<path>.rs": <integer>` pair is a
/// file pin, which is exactly the subset the manifest uses (the
/// `total` field is derived, not a pin).
pub fn load_inventory(path: &Path) -> Option<BTreeMap<String, usize>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut map = BTreeMap::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == '"' {
            let mut key = String::new();
            i += 1;
            while i < bytes.len() && bytes[i] != '"' {
                if bytes[i] == '\\' && i + 1 < bytes.len() {
                    i += 1;
                }
                key.push(bytes[i]);
                i += 1;
            }
            i += 1;
            while i < bytes.len() && bytes[i].is_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == ':' {
                i += 1;
                while i < bytes.len() && bytes[i].is_whitespace() {
                    i += 1;
                }
                let mut num = String::new();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    num.push(bytes[i]);
                    i += 1;
                }
                if let Ok(n) = num.parse::<usize>() {
                    if key.ends_with(".rs") {
                        map.insert(key, n);
                    }
                }
            }
            continue;
        }
        i += 1;
    }
    Some(map)
}

/// Renders the manifest for `--write-inventory`: stable order, one
/// file per line, a `total` for quick human diffing.
pub fn render_inventory(inventory: &BTreeMap<String, usize>) -> String {
    let mut out = String::from("{\n  \"files\": {\n");
    let entries: Vec<String> = inventory
        .iter()
        .map(|(file, count)| format!("    \"{file}\": {count}"))
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str(&format!(
        "  \"total\": {}\n}}\n",
        inventory.values().sum::<usize>()
    ));
    out
}

/// Baseline format: one `file:line:rule` per line (`#` comments
/// allowed). Line-number based on purpose — a baseline is a temporary
/// ratchet for landing the lint on a dirty tree, not a permanent
/// suppression mechanism, and it goes stale loudly when lines move.
pub fn load_baseline(path: &Path) -> std::io::Result<Vec<(String, usize, String)>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.rsplitn(3, ':');
        let rule = parts.next().unwrap_or("").to_string();
        let lineno = parts.next().and_then(|n| n.parse::<usize>().ok());
        let file = parts.next().unwrap_or("").to_string();
        if let Some(lineno) = lineno {
            if !file.is_empty() && !rule.is_empty() {
                out.push((file, lineno, rule));
            }
        }
    }
    Ok(out)
}

/// Renders violations in baseline format for `--write-baseline`.
pub fn render_baseline(violations: &[Violation]) -> String {
    let mut out =
        String::from("# ptherm-lint baseline: file:line:rule, regenerate with --write-baseline\n");
    for v in violations {
        out.push_str(&format!("{}:{}:{}\n", v.file, v.line, v.rule));
    }
    out
}

/// Minimal JSON string escaping for the machine-readable report.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `--json` report: violations plus scan metadata.
pub fn render_json(report: &WorkspaceReport, shown: &[Violation]) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    let items: Vec<String> = shown
        .iter()
        .map(|v| {
            format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                escape(&v.file),
                v.line,
                v.col,
                v.rule,
                escape(&v.message)
            )
        })
        .collect();
    out.push_str(&items.join(","));
    if !items.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"count\": {},\n", shown.len()));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"unsafe_total\": {},\n",
        report.unsafe_inventory.values().sum::<usize>()
    ));
    out.push_str(&format!(
        "  \"rules\": [{}]\n",
        RULES
            .iter()
            .map(|r| format!("\"{r}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("}\n");
    out
}

/// Human-readable report lines: `file:line:col rule message`.
pub fn render_human(shown: &[Violation]) -> String {
    let mut out = String::new();
    for v in shown {
        out.push_str(&format!(
            "{}:{}:{} {} {}\n",
            v.file, v.line, v.col, v.rule, v.message
        ));
    }
    out
}

/// Finds the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
