//! ITRS-like technology scaling table behind the Fig. 1 reproduction.
//!
//! Fig. 1 of the paper (reproduced from Duarte et al., ICCD'02) plots dynamic
//! power and static power at 25/100/150 °C for a high-performance design
//! across nodes 0.8 µm → 0.025 µm, showing static power overtaking dynamic
//! power as technology scales — *the* motivation for a concurrent
//! power-thermal model.
//!
//! We embed a representative scaling table: per node, the supply, threshold,
//! clock, integration density, switched capacitance and activity follow the
//! usual constant-field-scaling trends (voltage and threshold shrink,
//! frequency and gate count grow, per-gate capacitance and activity fall).
//! The *derived* powers then reproduce the figure's shape:
//!
//! * dynamic power rises slowly (power-budget limited),
//! * static power at 150 °C crosses dynamic near the 70 nm node,
//! * static at 100 °C crosses near 50 nm, and at 25 °C near 25 nm.
//!
//! Exact crossover nodes are recorded by the `fig1` experiment binary in
//! `EXPERIMENTS.md`.

use crate::params::{MosParams, Polarity, Technology};
use crate::units::{ff, um};
use serde::{Deserialize, Serialize};

/// One row of the scaling table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingNode {
    /// Feature size, m.
    pub node: f64,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Zero-bias nMOS threshold, V.
    pub vt0: f64,
    /// Subthreshold slope factor at this node.
    pub n_slope: f64,
    /// DIBL coefficient at this node.
    pub sigma: f64,
    /// Clock frequency, Hz.
    pub f_clk: f64,
    /// Logic gates on the die.
    pub n_gates: f64,
    /// Switched capacitance per gate, F.
    pub c_gate: f64,
    /// Average switching activity per gate per cycle.
    pub activity: f64,
}

impl ScalingNode {
    /// Total dynamic power `P = α f C V² N` in watts (transient component of
    /// §2 of the paper).
    pub fn dynamic_power(&self) -> f64 {
        self.activity * self.f_clk * self.c_gate * self.vdd * self.vdd * self.n_gates
    }

    /// Chip static power in watts at `temperature_k`, using the nominal
    /// (single-device) OFF-current expression with an effective leakage
    /// width of `8·node` per gate and network (n + p averaged).
    ///
    /// The `fig1` experiment also recomputes this series with the full
    /// stack-collapsing model from `ptherm-core`; this closed form exists so
    /// the scaling crate is self-contained and testable.
    pub fn static_power(&self, temperature_k: f64) -> f64 {
        let tech = self.technology();
        let w_leak = 8.0 * self.node;
        let i_n = tech.nominal_off_current(Polarity::Nmos, w_leak, temperature_k);
        let i_p = tech.nominal_off_current(Polarity::Pmos, w_leak, temperature_k);
        0.5 * (i_n + i_p) * self.vdd * self.n_gates
    }

    /// Expands the row into a full [`Technology`] kit so the complete device
    /// and leakage models can run on it.
    pub fn technology(&self) -> Technology {
        let nmos = MosParams {
            i0: 5.0e-7,
            n: self.n_slope,
            vt0: self.vt0,
            gamma_b: 0.20,
            k_t: 1.0e-3,
            sigma: self.sigma,
            l: self.node,
            w_min: 1.5 * self.node,
            alpha_sat: 1.3,
            k_sat: 3.0e-4,
            mobility_exponent: 1.5,
        };
        let pmos = MosParams {
            i0: 2.0e-7,
            vt0: self.vt0 + 0.02,
            w_min: 3.0 * self.node,
            k_sat: 1.2e-4,
            ..nmos
        };
        Technology {
            name: format!("scaled-{:.0}nm", self.node * 1e9),
            node: self.node,
            vdd: self.vdd,
            t_ref: 300.0,
            nmos,
            pmos,
            c_gate: self.c_gate,
        }
    }
}

/// The embedded scaling series (0.8 µm → 0.025 µm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingTable {
    /// Rows ordered from the oldest (largest) to the newest (smallest) node.
    pub nodes: Vec<ScalingNode>,
}

impl ScalingTable {
    /// The built-in table matching the x-axis of the paper's Fig. 1.
    pub fn itrs_like() -> Self {
        // node_um, vdd, vt0, n, sigma, f_clk, Mgates, c_gate_fF, activity
        #[allow(clippy::type_complexity)]
        let rows: [(f64, f64, f64, f64, f64, f64, f64, f64, f64); 10] = [
            (0.80, 5.0, 0.75, 1.50, 0.010, 66.0e6, 1.0, 30.0, 0.120),
            (0.35, 3.3, 0.60, 1.48, 0.020, 200.0e6, 4.0, 15.0, 0.100),
            (0.25, 2.5, 0.52, 1.46, 0.030, 400.0e6, 10.0, 10.0, 0.090),
            (0.18, 1.8, 0.45, 1.44, 0.045, 800.0e6, 25.0, 6.0, 0.070),
            (0.13, 1.3, 0.38, 1.42, 0.060, 1.5e9, 60.0, 4.0, 0.050),
            (0.10, 1.1, 0.32, 1.40, 0.080, 2.5e9, 120.0, 3.0, 0.040),
            (0.07, 0.9, 0.26, 1.39, 0.095, 4.0e9, 250.0, 2.0, 0.030),
            (0.05, 0.8, 0.21, 1.38, 0.110, 6.0e9, 500.0, 1.5, 0.022),
            (0.035, 0.7, 0.17, 1.37, 0.125, 9.0e9, 1000.0, 1.0, 0.016),
            (0.025, 0.6, 0.14, 1.36, 0.140, 12.0e9, 2000.0, 0.7, 0.012),
        ];
        ScalingTable {
            nodes: rows
                .iter()
                .map(|&(node_um, vdd, vt0, n, sigma, f, mg, c, a)| ScalingNode {
                    node: um(node_um),
                    vdd,
                    vt0,
                    n_slope: n,
                    sigma,
                    f_clk: f,
                    n_gates: mg * 1e6,
                    c_gate: ff(c),
                    activity: a,
                })
                .collect(),
        }
    }

    /// Node whose feature size (in µm) is closest to `node_um`.
    pub fn closest(&self, node_um: f64) -> Option<&ScalingNode> {
        self.nodes.iter().min_by(|a, b| {
            let da = (a.node - um(node_um)).abs();
            let db = (b.node - um(node_um)).abs();
            da.partial_cmp(&db).expect("finite nodes")
        })
    }
}

impl Default for ScalingTable {
    fn default() -> Self {
        Self::itrs_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_ordered_and_valid() {
        let table = ScalingTable::itrs_like();
        assert_eq!(table.nodes.len(), 10);
        for w in table.nodes.windows(2) {
            assert!(w[1].node < w[0].node, "nodes must shrink");
            assert!(w[1].vdd <= w[0].vdd, "supply must not grow");
            assert!(w[1].vt0 < w[0].vt0, "threshold must shrink");
            assert!(w[1].f_clk > w[0].f_clk, "frequency must grow");
            assert!(w[1].n_gates > w[0].n_gates, "density must grow");
        }
        for n in &table.nodes {
            n.technology().validate().unwrap();
        }
    }

    #[test]
    fn dynamic_power_rises_with_scaling() {
        let table = ScalingTable::itrs_like();
        let dyn_pow: Vec<f64> = table.nodes.iter().map(|n| n.dynamic_power()).collect();
        // Monotonic within table ordering and in a chip-plausible range.
        for w in dyn_pow.windows(2) {
            assert!(
                w[1] > w[0] * 0.95,
                "dynamic power should trend up: {dyn_pow:?}"
            );
        }
        assert!(dyn_pow[0] > 1.0 && dyn_pow[0] < 20.0);
        let last = *dyn_pow.last().unwrap();
        assert!(
            last > 40.0 && last < 150.0,
            "end-of-roadmap dynamic = {last}"
        );
    }

    #[test]
    fn static_power_explodes_with_scaling_and_temperature() {
        let table = ScalingTable::itrs_like();
        let first = &table.nodes[0];
        let last = table.nodes.last().unwrap();
        // Old node: static negligible even hot.
        assert!(first.static_power(423.15) < 0.01 * first.dynamic_power());
        // New node: static at 150 C dominates dynamic.
        assert!(last.static_power(423.15) > last.dynamic_power());
        // And temperature matters exponentially.
        let cold = last.static_power(298.15);
        let hot = last.static_power(423.15);
        assert!(hot > 3.0 * cold);
    }

    #[test]
    fn fig1_crossover_ordering() {
        // Hotter curves must cross dynamic power at larger (earlier) nodes.
        let table = ScalingTable::itrs_like();
        let cross = |t_k: f64| {
            table
                .nodes
                .iter()
                .position(|n| n.static_power(t_k) > n.dynamic_power())
        };
        let c150 = cross(423.15).expect("150C static must cross");
        let c100 = cross(373.15).expect("100C static must cross");
        assert!(c150 <= c100, "{c150} vs {c100}");
        // 150 C crossover in the sub-100nm region, as the paper argues.
        let node_150 = table.nodes[c150].node;
        assert!(
            node_150 <= um(0.1),
            "150C crossover at {:.3} um",
            node_150 / um(1.0)
        );
        // Room-temperature static power does not cross in Fig. 1 either, but
        // it becomes a significant fraction of dynamic by the last node.
        let last = table.nodes.last().unwrap();
        let frac = last.static_power(298.15) / last.dynamic_power();
        assert!(frac > 0.3, "25C static fraction at the last node = {frac}");
    }

    #[test]
    fn closest_lookup() {
        let table = ScalingTable::itrs_like();
        let n = table.closest(0.12).unwrap();
        assert!((n.node - um(0.13)).abs() < 1e-9);
        assert!(table.closest(9.0).unwrap().node == um(0.8));
    }
}
