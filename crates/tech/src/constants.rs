//! Physical constants and temperature helpers.
//!
//! Everything in the workspace is SI: metres, watts, kelvin, volts, amperes.

/// Boltzmann constant, J/K (exact, 2019 SI).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C (exact, 2019 SI).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// 0 °C expressed in kelvin.
pub const ZERO_CELSIUS: f64 = 273.15;

/// Thermal conductivity of bulk silicon at 300 K, W/(m·K).
///
/// The paper treats `k_Si` as a constant in Eqs. (16)–(19); we default to the
/// same 300 K value and expose [`silicon_thermal_conductivity`] for the
/// temperature-corrected extension.
pub const SILICON_THERMAL_CONDUCTIVITY_300K: f64 = 148.0;

/// Thermal volumetric heat capacity of silicon, J/(m^3·K).
pub const SILICON_VOLUMETRIC_HEAT_CAPACITY: f64 = 1.66e6;

/// Thermal voltage `V_T = k T / q` in volts.
///
/// # Example
///
/// ```
/// let vt = ptherm_tech::constants::thermal_voltage(300.0);
/// assert!((vt - 0.02585).abs() < 1e-4);
/// ```
pub fn thermal_voltage(temperature_k: f64) -> f64 {
    BOLTZMANN * temperature_k / ELEMENTARY_CHARGE
}

/// Temperature-dependent thermal conductivity of silicon, W/(m·K).
///
/// Uses the standard `k(T) = k(300 K) · (T / 300)^{-4/3}` power law, valid
/// between ~200 K and ~600 K. This is an *extension* over the paper (which
/// keeps k constant); the analytical thermal model accepts either.
pub fn silicon_thermal_conductivity(temperature_k: f64) -> f64 {
    SILICON_THERMAL_CONDUCTIVITY_300K * (temperature_k / 300.0).powf(-4.0 / 3.0)
}

/// Converts degrees Celsius to kelvin.
pub fn celsius_to_kelvin(celsius: f64) -> f64 {
    celsius + ZERO_CELSIUS
}

/// Converts kelvin to degrees Celsius.
pub fn kelvin_to_celsius(kelvin: f64) -> f64 {
    kelvin - ZERO_CELSIUS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_room_temperature() {
        let vt = thermal_voltage(celsius_to_kelvin(27.0));
        assert!((vt - 0.025865).abs() < 1e-5, "vt = {vt}");
    }

    #[test]
    fn thermal_voltage_scales_linearly() {
        assert!((thermal_voltage(600.0) / thermal_voltage(300.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn conductivity_decreases_with_temperature() {
        let k300 = silicon_thermal_conductivity(300.0);
        let k400 = silicon_thermal_conductivity(400.0);
        assert_eq!(k300, SILICON_THERMAL_CONDUCTIVITY_300K);
        assert!(k400 < k300);
        // Roughly 2/3 of the 300 K value at 400 K.
        assert!((k400 / k300 - (400.0f64 / 300.0).powf(-4.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn celsius_kelvin_roundtrip() {
        assert_eq!(celsius_to_kelvin(25.0), 298.15);
        assert_eq!(kelvin_to_celsius(celsius_to_kelvin(-40.0)), -40.0);
    }
}
