//! Terse unit constructors.
//!
//! The workspace is strictly SI internally; these helpers let call sites use
//! the paper's natural units (`um(1.0)`, `mw(10.0)`) without sprinkling
//! powers of ten around.

/// Micrometres to metres.
pub fn um(value: f64) -> f64 {
    value * 1e-6
}

/// Nanometres to metres.
pub fn nm(value: f64) -> f64 {
    value * 1e-9
}

/// Millimetres to metres.
pub fn mm(value: f64) -> f64 {
    value * 1e-3
}

/// Milliwatts to watts.
pub fn mw(value: f64) -> f64 {
    value * 1e-3
}

/// Microwatts to watts.
pub fn uw(value: f64) -> f64 {
    value * 1e-6
}

/// Nanoamperes to amperes.
pub fn na(value: f64) -> f64 {
    value * 1e-9
}

/// Femtofarads to farads.
pub fn ff(value: f64) -> f64 {
    value * 1e-15
}

/// Megahertz to hertz.
pub fn mhz(value: f64) -> f64 {
    value * 1e6
}

/// Gigahertz to hertz.
pub fn ghz(value: f64) -> f64 {
    value * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn conversions_are_consistent() {
        close(um(1.0), 1e-6);
        close(nm(1000.0), um(1.0));
        close(mm(1.0), um(1000.0));
        close(mw(1.0), uw(1000.0));
        close(na(2.0), 2e-9);
        close(ff(1.0), 1e-15);
        close(ghz(1.0), mhz(1000.0));
    }
}
