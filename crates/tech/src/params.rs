//! Parameter containers for devices and technologies.
//!
//! The parameter set mirrors Eqs. (1)–(2) of the paper: the subthreshold
//! prefactor `I0`, slope factor `n`, zero-bias threshold `V_T0`, linearized
//! body-effect coefficient `γ'`, threshold temperature sensitivity `K_T` and
//! DIBL coefficient `σ`, plus the α-power-law ON-current parameters needed by
//! the self-heating measurement simulation.

use crate::constants::thermal_voltage;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// n-channel device (pull-down networks).
    Nmos,
    /// p-channel device (pull-up networks).
    Pmos,
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::Nmos => write!(f, "nmos"),
            Polarity::Pmos => write!(f, "pmos"),
        }
    }
}

/// Error returned by [`MosParams::validate`] / [`Technology::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateTechError {
    /// Name of the offending field.
    pub field: &'static str,
    /// Offending value.
    pub value: f64,
    /// Constraint that was violated.
    pub constraint: &'static str,
}

impl fmt::Display for ValidateTechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid technology parameter {}: {} (must be {})",
            self.field, self.value, self.constraint
        )
    }
}

impl std::error::Error for ValidateTechError {}

/// Compact-model parameters of one device flavour.
///
/// Voltages are magnitudes: for pMOS devices the surrounding code mirrors the
/// terminal voltages so the same positive-parameter equations apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Subthreshold current prefactor `I0` of Eq. (1), in amperes (per
    /// square, i.e. for `W = L` at `T = t_ref`).
    pub i0: f64,
    /// Subthreshold slope factor `n` (1.0 ideal, 1.3–1.6 typical).
    pub n: f64,
    /// Zero-bias threshold voltage magnitude `V_T0`, V.
    pub vt0: f64,
    /// Linearized body-effect coefficient `γ'` (dimensionless): the model
    /// uses `V_TH ← V_TH + γ'·V_SB`.
    pub gamma_b: f64,
    /// Threshold temperature sensitivity `K_T`, V/K; positive values lower
    /// `V_TH` as temperature rises (Eq. 2).
    pub k_t: f64,
    /// DIBL coefficient `σ` (dimensionless): `V_TH ← V_TH − σ·(V_DS − V_DD)`.
    pub sigma: f64,
    /// Channel length `L`, m.
    pub l: f64,
    /// Minimum drawn width, m (used by the standard-cell generator).
    pub w_min: f64,
    /// α-power-law saturation exponent (≈1.2–1.4 for short channels).
    pub alpha_sat: f64,
    /// α-power-law transconductance, A·V^(−α) per square at `t_ref`.
    pub k_sat: f64,
    /// Mobility temperature exponent `m` in `µ(T) ∝ (T/T_ref)^{−m}`.
    pub mobility_exponent: f64,
}

impl MosParams {
    /// Subthreshold swing `S = ln(10)·n·V_T(T)` in volts/decade.
    pub fn subthreshold_swing(&self, temperature_k: f64) -> f64 {
        std::f64::consts::LN_10 * self.n * thermal_voltage(temperature_k)
    }

    /// Checks physical plausibility of every field.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ValidateTechError> {
        let checks: [(&'static str, f64, bool, &'static str); 9] = [
            ("i0", self.i0, self.i0 > 0.0 && self.i0.is_finite(), "> 0"),
            ("n", self.n, (1.0..5.0).contains(&self.n), "in [1, 5)"),
            (
                "vt0",
                self.vt0,
                self.vt0 > 0.0 && self.vt0 < 2.0,
                "in (0, 2) V",
            ),
            (
                "gamma_b",
                self.gamma_b,
                (0.0..2.0).contains(&self.gamma_b),
                "in [0, 2)",
            ),
            (
                "k_t",
                self.k_t,
                (0.0..0.01).contains(&self.k_t),
                "in [0, 10) mV/K",
            ),
            (
                "sigma",
                self.sigma,
                (0.0..1.0).contains(&self.sigma),
                "in [0, 1)",
            ),
            (
                "l",
                self.l,
                self.l > 1e-9 && self.l < 1e-4,
                "in (1 nm, 100 um)",
            ),
            (
                "alpha_sat",
                self.alpha_sat,
                (1.0..=2.0).contains(&self.alpha_sat),
                "in [1, 2]",
            ),
            ("k_sat", self.k_sat, self.k_sat > 0.0, "> 0"),
        ];
        for (field, value, ok, constraint) in checks {
            if !ok {
                return Err(ValidateTechError {
                    field,
                    value,
                    constraint,
                });
            }
        }
        Ok(())
    }
}

/// A complete technology kit: supply, reference temperature and both device
/// flavours.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Human-readable kit name, e.g. `"cmos-120nm"`.
    pub name: String,
    /// Feature size (drawn channel length), m.
    pub node: f64,
    /// Nominal supply voltage, V.
    pub vdd: f64,
    /// Reference temperature `T_ref` of Eq. (1), K.
    pub t_ref: f64,
    /// n-channel parameters.
    pub nmos: MosParams,
    /// p-channel parameters.
    pub pmos: MosParams,
    /// Switched capacitance of a minimum-size inverter, F (dynamic power).
    pub c_gate: f64,
}

impl Technology {
    /// Parameters of the requested polarity.
    pub fn mos(&self, polarity: Polarity) -> &MosParams {
        match polarity {
            Polarity::Nmos => &self.nmos,
            Polarity::Pmos => &self.pmos,
        }
    }

    /// Thermal voltage at `temperature_k` (convenience re-export).
    pub fn thermal_voltage(&self, temperature_k: f64) -> f64 {
        thermal_voltage(temperature_k)
    }

    /// Checks plausibility of supply, reference temperature and both device
    /// parameter sets.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ValidateTechError> {
        if !(self.vdd > 0.0 && self.vdd < 10.0) {
            return Err(ValidateTechError {
                field: "vdd",
                value: self.vdd,
                constraint: "in (0, 10) V",
            });
        }
        if !(self.t_ref > 200.0 && self.t_ref < 500.0) {
            return Err(ValidateTechError {
                field: "t_ref",
                value: self.t_ref,
                constraint: "in (200, 500) K",
            });
        }
        if !(self.node > 1e-9 && self.node < 1e-4) {
            return Err(ValidateTechError {
                field: "node",
                value: self.node,
                constraint: "in (1 nm, 100 um)",
            });
        }
        if self.c_gate.is_nan() || self.c_gate <= 0.0 {
            return Err(ValidateTechError {
                field: "c_gate",
                value: self.c_gate,
                constraint: "> 0",
            });
        }
        self.nmos.validate()?;
        self.pmos.validate()?;
        // Threshold must stay below the supply or nothing ever turns on.
        for (field, p) in [("nmos.vt0", &self.nmos), ("pmos.vt0", &self.pmos)] {
            if p.vt0 >= self.vdd {
                return Err(ValidateTechError {
                    field,
                    value: p.vt0,
                    constraint: "< vdd",
                });
            }
        }
        Ok(())
    }

    /// Nominal OFF current of a single device of width `w` at `V_GS = 0`,
    /// `V_DS = V_DD`, body at source — handy for sanity checks and the
    /// scaling study. Full bias dependence lives in `ptherm-device`.
    pub fn nominal_off_current(&self, polarity: Polarity, w: f64, temperature_k: f64) -> f64 {
        let p = self.mos(polarity);
        let vt = thermal_voltage(temperature_k);
        let vth = p.vt0 - p.k_t * (temperature_k - self.t_ref);
        (w / p.l)
            * p.i0
            * (temperature_k / self.t_ref).powi(2)
            * (-vth / (p.n * vt)).exp()
            * (1.0 - (-self.vdd / vt).exp())
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (L = {:.0} nm, VDD = {:.2} V)",
            self.name,
            self.node * 1e9,
            self.vdd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn builtin_kits_validate() {
        Technology::cmos_120nm().validate().unwrap();
        Technology::cmos_350nm().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut t = Technology::cmos_120nm();
        t.vdd = -1.0;
        assert_eq!(t.validate().unwrap_err().field, "vdd");

        let mut t = Technology::cmos_120nm();
        t.nmos.sigma = 2.0;
        assert_eq!(t.validate().unwrap_err().field, "sigma");

        let mut t = Technology::cmos_120nm();
        t.nmos.vt0 = 1.5; // above VDD = 1.2
        assert_eq!(t.validate().unwrap_err().field, "nmos.vt0");
    }

    #[test]
    fn off_current_grows_exponentially_with_temperature() {
        let t = Technology::cmos_120nm();
        let w = t.nmos.w_min;
        let cold = t.nominal_off_current(Polarity::Nmos, w, 298.15);
        let hot = t.nominal_off_current(Polarity::Nmos, w, 398.15);
        assert!(cold > 0.0);
        assert!(hot / cold > 10.0, "ratio = {}", hot / cold);
    }

    #[test]
    fn off_current_scales_linearly_with_width() {
        let t = Technology::cmos_120nm();
        let i1 = t.nominal_off_current(Polarity::Nmos, 1e-6, 300.0);
        let i2 = t.nominal_off_current(Polarity::Nmos, 2e-6, 300.0);
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn off_current_magnitude_is_plausible() {
        // ~nA/um leakage at room temperature for the 120nm kit.
        let t = Technology::cmos_120nm();
        let i = t.nominal_off_current(Polarity::Nmos, 1e-6, 298.15);
        assert!(i > 1e-11 && i < 1e-7, "I_off = {i:.3e} A/um");
    }

    #[test]
    fn mos_accessor_matches_fields() {
        let t = Technology::cmos_120nm();
        assert_eq!(t.mos(Polarity::Nmos), &t.nmos);
        assert_eq!(t.mos(Polarity::Pmos), &t.pmos);
    }

    #[test]
    fn serde_roundtrip() {
        let t = library::cmos_120nm();
        let json = serde_json_like(&t);
        assert!(json.contains("cmos-120nm"));
    }

    /// Minimal serialization smoke test without pulling serde_json: use the
    /// Debug representation (serde derives compile; Debug exercises fields).
    fn serde_json_like(t: &Technology) -> String {
        format!("{t:?}")
    }
}
