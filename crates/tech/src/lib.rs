//! Technology parameter kits for the `ptherm` workspace.
//!
//! The DATE'05 paper evaluates its models on a 0.12 µm CMOS process (leakage,
//! Figs. 3 & 8) and a 0.35 µm process (self-heating measurements, Figs. 9 &
//! 10), and motivates the work with an ITRS-style scaling study (Fig. 1).
//! This crate provides:
//!
//! * [`constants`] — physical constants and temperature helpers,
//! * [`units`] — terse unit constructors (`um`, `mw`, …) so geometry and
//!   power values in examples read like the paper,
//! * [`params`] — [`MosParams`] / [`Technology`] parameter containers with
//!   validation,
//! * [`library`] — the built-in 0.12 µm and 0.35 µm kits,
//! * [`scaling`] — the embedded scaling table (0.8 µm → 0.025 µm) behind the
//!   Fig. 1 reproduction.
//!
//! All built-in parameter values are *representative textbook values* for
//! each node (documented per-kit); the reproduction targets the shapes of the
//! paper's figures, not foundry-exact magnitudes.
//!
//! # Example
//!
//! ```
//! use ptherm_tech::Technology;
//!
//! let tech = Technology::cmos_120nm();
//! assert_eq!(tech.vdd, 1.2);
//! // Subthreshold swing at room temperature is in the familiar range.
//! let swing = tech.nmos.subthreshold_swing(300.0);
//! assert!(swing > 0.06 && swing < 0.12);
//! ```

pub mod constants;
pub mod corners;
pub mod library;
pub mod params;
pub mod scaling;
pub mod units;

pub use corners::Corner;
pub use params::{MosParams, Polarity, Technology, ValidateTechError};
pub use scaling::{ScalingNode, ScalingTable};
