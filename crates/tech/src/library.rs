//! Built-in technology kits.
//!
//! Two kits mirror the processes used in the paper's evaluation:
//!
//! * [`cmos_120nm`] — the 0.12 µm technology behind the leakage results
//!   (Figs. 3 and 8),
//! * [`cmos_350nm`] — the 0.35 µm process of the self-heating measurements
//!   (Figs. 9 and 10).
//!
//! Values are representative of published data for each node (supply,
//! threshold, subthreshold slope, DIBL, leakage magnitude); they are not a
//! specific foundry's numbers. `I0` is calibrated so the minimum device
//! leaks ~1 nA/µm at 25 °C in the 120 nm kit and ~10 pA/µm in the 350 nm
//! kit — the accepted orders of magnitude for those generations.

use crate::params::{MosParams, Technology};
use crate::units::{ff, nm, um};

/// The 0.12 µm kit used by the leakage experiments (Figs. 3, 8).
pub fn cmos_120nm() -> Technology {
    Technology {
        name: "cmos-120nm".to_owned(),
        node: nm(120.0),
        vdd: 1.2,
        t_ref: 300.0,
        nmos: MosParams {
            i0: 5.0e-7,
            n: 1.40,
            vt0: 0.30,
            gamma_b: 0.20,
            k_t: 8.0e-4,
            sigma: 0.08,
            l: nm(120.0),
            w_min: nm(160.0),
            alpha_sat: 1.3,
            k_sat: 3.0e-4,
            mobility_exponent: 1.5,
        },
        pmos: MosParams {
            i0: 2.0e-7,
            n: 1.45,
            vt0: 0.32,
            gamma_b: 0.22,
            k_t: 7.0e-4,
            sigma: 0.07,
            l: nm(120.0),
            w_min: nm(320.0),
            alpha_sat: 1.35,
            k_sat: 1.2e-4,
            mobility_exponent: 1.4,
        },
        c_gate: ff(2.0),
    }
}

/// The 0.35 µm kit used by the self-heating experiments (Figs. 9, 10).
pub fn cmos_350nm() -> Technology {
    Technology {
        name: "cmos-350nm".to_owned(),
        node: nm(350.0),
        vdd: 3.3,
        t_ref: 300.0,
        nmos: MosParams {
            i0: 2.0e-7,
            n: 1.50,
            vt0: 0.60,
            gamma_b: 0.30,
            k_t: 1.0e-3,
            sigma: 0.02,
            l: nm(350.0),
            w_min: um(0.5),
            alpha_sat: 1.45,
            k_sat: 1.5e-4,
            mobility_exponent: 1.5,
        },
        pmos: MosParams {
            i0: 8.0e-8,
            n: 1.55,
            vt0: 0.65,
            gamma_b: 0.32,
            k_t: 9.0e-4,
            sigma: 0.02,
            l: nm(350.0),
            w_min: um(1.0),
            alpha_sat: 1.5,
            k_sat: 6.0e-5,
            mobility_exponent: 1.4,
        },
        c_gate: ff(12.0),
    }
}

impl Technology {
    /// The built-in 0.12 µm kit (see [`cmos_120nm`]).
    pub fn cmos_120nm() -> Technology {
        cmos_120nm()
    }

    /// The built-in 0.35 µm kit (see [`cmos_350nm`]).
    pub fn cmos_350nm() -> Technology {
        cmos_350nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Polarity;

    #[test]
    fn kits_have_expected_supplies() {
        assert_eq!(cmos_120nm().vdd, 1.2);
        assert_eq!(cmos_350nm().vdd, 3.3);
    }

    #[test]
    fn leakage_magnitudes_are_generation_appropriate() {
        // 120nm: ~nA/um; 350nm: well below 120nm (high threshold).
        let new = cmos_120nm();
        let old = cmos_350nm();
        let i_new = new.nominal_off_current(Polarity::Nmos, 1e-6, 298.15);
        let i_old = old.nominal_off_current(Polarity::Nmos, 1e-6, 298.15);
        assert!(i_new > 50.0 * i_old, "i_new={i_new:.2e} i_old={i_old:.2e}");
    }

    #[test]
    fn pmos_leaks_less_than_nmos() {
        let t = cmos_120nm();
        let n = t.nominal_off_current(Polarity::Nmos, 1e-6, 300.0);
        let p = t.nominal_off_current(Polarity::Pmos, 1e-6, 300.0);
        assert!(p < n);
    }

    #[test]
    fn associated_constructors_match_free_functions() {
        assert_eq!(Technology::cmos_120nm(), cmos_120nm());
        assert_eq!(Technology::cmos_350nm(), cmos_350nm());
    }
}
