//! Process corners — fast/typical/slow parameter shifts.
//!
//! Leakage sign-off is done at corners, not at typicals: a fast corner has
//! lower thresholds and stronger subthreshold prefactors (leaky, fast),
//! the slow corner the reverse. The shifts below are representative
//! magnitudes (±40 mV on thresholds, ±2x on the prefactor for a sub-130nm
//! process) applied uniformly to both device flavours.

use crate::params::{MosParams, Technology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Global process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corner {
    /// Low thresholds, strong currents: the leakage sign-off corner.
    Fast,
    /// Nominal parameters (identity transform).
    Typical,
    /// High thresholds, weak currents.
    Slow,
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corner::Fast => write!(f, "fast"),
            Corner::Typical => write!(f, "typical"),
            Corner::Slow => write!(f, "slow"),
        }
    }
}

fn shift_device(p: &MosParams, dvt: f64, i0_scale: f64, ksat_scale: f64) -> MosParams {
    MosParams {
        vt0: (p.vt0 + dvt).max(0.05),
        i0: p.i0 * i0_scale,
        k_sat: p.k_sat * ksat_scale,
        ..*p
    }
}

impl Technology {
    /// Derives the corner variant of this kit.
    ///
    /// Fast: thresholds −40 mV, `I0` ×2, `k_sat` ×1.15.
    /// Slow: thresholds +40 mV, `I0` ×0.5, `k_sat` ×0.85.
    pub fn at_corner(&self, corner: Corner) -> Technology {
        let (dvt, i0_scale, ksat_scale) = match corner {
            Corner::Fast => (-0.040, 2.0, 1.15),
            Corner::Typical => (0.0, 1.0, 1.0),
            Corner::Slow => (0.040, 0.5, 0.85),
        };
        Technology {
            name: format!("{}-{corner}", self.name),
            nmos: shift_device(&self.nmos, dvt, i0_scale, ksat_scale),
            pmos: shift_device(&self.pmos, dvt, i0_scale, ksat_scale),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Polarity;

    #[test]
    fn typical_is_identity_up_to_name() {
        let t = Technology::cmos_120nm();
        let c = t.at_corner(Corner::Typical);
        assert_eq!(c.nmos, t.nmos);
        assert_eq!(c.pmos, t.pmos);
        assert!(c.name.ends_with("typical"));
    }

    #[test]
    fn corners_order_the_leakage() {
        let t = Technology::cmos_120nm();
        let fast = t
            .at_corner(Corner::Fast)
            .nominal_off_current(Polarity::Nmos, 1e-6, 300.0);
        let typ = t.nominal_off_current(Polarity::Nmos, 1e-6, 300.0);
        let slow = t
            .at_corner(Corner::Slow)
            .nominal_off_current(Polarity::Nmos, 1e-6, 300.0);
        assert!(fast > typ && typ > slow);
        // The corner spread is decades, dominated by the threshold shift.
        assert!(fast / slow > 10.0, "spread {}", fast / slow);
    }

    #[test]
    fn corner_kits_still_validate() {
        for corner in [Corner::Fast, Corner::Typical, Corner::Slow] {
            Technology::cmos_120nm()
                .at_corner(corner)
                .validate()
                .unwrap();
            Technology::cmos_350nm()
                .at_corner(corner)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Corner::Fast.to_string(), "fast");
        assert_eq!(Corner::Slow.to_string(), "slow");
    }
}
