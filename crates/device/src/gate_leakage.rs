//! Gate-tunnelling leakage — an *extension* beyond the paper.
//!
//! The DATE'05 model assumes subthreshold conduction dominates static power
//! (§2.1: "We assume that the main static power source is due to
//! subthreshold currents"), which is accurate down to ~100 nm with SiO₂
//! around 2 nm. For completeness the workspace carries a simple exponential
//! gate-tunnelling density so the power roll-ups can report how small the
//! component is (and so future oxide scaling studies have a hook):
//!
//! ```text
//! I_gate = J0 · W · L · e^{V_ox / V0}
//! ```
//!
//! with `J0` and `V0` chosen per node. The component is **off by default**
//! in all power reports.

use ptherm_tech::Technology;

/// Exponential gate-tunnelling model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateLeakageModel {
    /// Current density prefactor at zero oxide voltage, A/m².
    pub j0: f64,
    /// Exponential voltage scale, V.
    pub v0: f64,
}

impl GateLeakageModel {
    /// Representative parameters for a technology node: tunnelling rises
    /// steeply below ~130 nm as oxides thin. Values give ~1000x smaller
    /// gate than subthreshold leakage at the 120 nm node — consistent with
    /// the paper's neglect of the component.
    pub fn for_technology(tech: &Technology) -> Self {
        let node_nm = tech.node * 1e9;
        // J0 doubles roughly every 15 nm of scaling below 180 nm.
        let j0 = if node_nm >= 180.0 {
            1e-9
        } else {
            1e-9 * 2f64.powf((180.0 - node_nm) / 15.0)
        };
        GateLeakageModel { j0, v0: 0.35 }
    }

    /// Gate current of a `w x l` gate with oxide voltage `v_ox`, amperes.
    pub fn current(&self, w: f64, l: f64, v_ox: f64) -> f64 {
        self.j0 * w * l * (v_ox / self.v0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_leakage_grows_as_nodes_shrink() {
        let old = GateLeakageModel::for_technology(&Technology::cmos_350nm());
        let new = GateLeakageModel::for_technology(&Technology::cmos_120nm());
        assert!(new.j0 > 10.0 * old.j0);
    }

    #[test]
    fn gate_leakage_negligible_vs_subthreshold_at_120nm() {
        use crate::subthreshold::SubthresholdModel;
        use crate::Bias;
        let tech = Technology::cmos_120nm();
        let sub = SubthresholdModel::new(&tech.nmos, tech.vdd, tech.t_ref);
        let gate = GateLeakageModel::for_technology(&tech);
        let w = 1e-6;
        let i_sub = sub.current(w, Bias::off_full_rail(tech.vdd), 300.0);
        let i_gate = gate.current(w, tech.nmos.l, tech.vdd);
        assert!(
            i_gate < 0.05 * i_sub,
            "gate {i_gate:.2e} should be far below subthreshold {i_sub:.2e}"
        );
    }

    #[test]
    fn current_scales_with_area_and_voltage() {
        let m = GateLeakageModel { j0: 1e-6, v0: 0.35 };
        let base = m.current(1e-6, 1e-7, 1.0);
        assert!((m.current(2e-6, 1e-7, 1.0) / base - 2.0).abs() < 1e-12);
        assert!(m.current(1e-6, 1e-7, 1.2) > base);
    }
}
