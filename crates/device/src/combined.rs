//! Combined subthreshold + strong-inversion device model for the exact
//! network solver.
//!
//! The paper's analytical model only ever evaluates *OFF* devices (ON
//! devices are collapsed into internal nodes), so Eq. (1) suffices for it.
//! The **exact** reference solver, however, must also carry ON devices —
//! e.g. a NAND2 at input `01`, where the leakage path runs through one ON
//! and one OFF device. A subthreshold-only equation mis-models the ON
//! device, so the solver uses this combined model:
//!
//! ```text
//! I = I_sub^capped + I_strong
//! I_sub^capped = (W/L)·I0·(T/T_ref)²·e^{softmin(V_GS − V_TH, 0)/(n·V_T)}·(1 − e^{−V_DS/V_T})
//! I_strong     = (W/L)·k_sat·(T/T_ref)^{−m} · od^α · tanh(V_DS / V_Dsat)
//! od           = s·ln(1 + e^{(V_GS − V_TH)/s}),     s = n·V_T/3
//! V_Dsat       = c_sat·od + 1 mV,                    c_sat = 0.5
//! ```
//!
//! Two smooth clamps make the pieces coexist:
//!
//! * the subthreshold exponent is *soft-capped* at zero overdrive
//!   (`softmin(·, 0)`) — Eq. (1) is only valid below threshold, and
//!   uncapped it would exceed the strong-inversion current by orders of
//!   magnitude at full gate drive;
//! * the softplus overdrive `od` turns strong inversion on smoothly, with a
//!   scale sharp enough (`s = n·V_T/3`) that the strong tail decays at three
//!   times the subthreshold rate below threshold — OFF-device currents stay
//!   pure Eq. (1) to better than 1e-9 relative.
//!
//! The `tanh` spans triode → saturation smoothly; everything is C¹, which
//! the damped Newton solvers require.

use crate::subthreshold::{NodalCurrent, SubthresholdModel};
use ptherm_tech::constants::thermal_voltage;
use ptherm_tech::MosParams;

const C_SAT: f64 = 0.5;
const VDSAT_FLOOR: f64 = 1e-3;

/// Numerically-stable `(softplus(x)·s, logistic(x))`:
/// `softplus = s·ln(1 + e^{x})`, `logistic = 1/(1 + e^{−x})`.
fn softplus_logistic(x: f64, s: f64) -> (f64, f64) {
    if x > 30.0 {
        (s * x, 1.0)
    } else if x < -30.0 {
        (s * x.exp(), x.exp())
    } else {
        (s * (1.0 + x.exp()).ln(), 1.0 / (1.0 + (-x).exp()))
    }
}

/// Subthreshold + strong-inversion evaluator (n-channel convention).
#[derive(Debug, Clone, Copy)]
pub struct CombinedModel<'a> {
    sub: SubthresholdModel<'a>,
    params: &'a MosParams,
    t_ref: f64,
}

impl<'a> CombinedModel<'a> {
    /// Binds the model to device parameters, supply and reference
    /// temperature.
    pub fn new(params: &'a MosParams, vdd: f64, t_ref: f64) -> Self {
        CombinedModel {
            sub: SubthresholdModel::new(params, vdd, t_ref),
            params,
            t_ref,
        }
    }

    /// The underlying subthreshold model.
    pub fn subthreshold(&self) -> &SubthresholdModel<'a> {
        &self.sub
    }

    /// Current and nodal derivatives for absolute node voltages (see
    /// [`SubthresholdModel::current_nodal`]); adds the strong-inversion
    /// component and its analytic derivatives.
    pub fn current_nodal(
        &self,
        w: f64,
        vs: f64,
        vd: f64,
        vg: f64,
        vb: f64,
        temperature_k: f64,
    ) -> NodalCurrent {
        let p = self.params;
        let vt = thermal_voltage(temperature_k);
        let nvt = p.n * vt;
        let bias = crate::Bias {
            vgs: vg - vs,
            vds: vd - vs,
            vsb: vs - vb,
        };
        let vth = self.sub.threshold_voltage(bias, temperature_k);
        let u_raw = bias.vgs - vth;
        // d(V_GS - V_TH)/dvs and /dvd: threshold shifts with body effect
        // (γ') and DIBL (σ), same algebra as the subthreshold model.
        let dy_dvs = -1.0 - p.gamma_b - p.sigma;
        let dy_dvd = p.sigma;
        let s = p.n * vt / 3.0;

        // --- capped subthreshold component -------------------------------
        // softmin(u, 0) = u - softplus(u): caps the exponent at 0 overdrive.
        let (sp, sig_plus) = softplus_logistic(u_raw / s, s);
        let u_capped = u_raw - sp;
        let cap_sig = 1.0 - sig_plus; // d softmin / d u_raw = logistic(-x)
        let prefactor = (w / p.l) * p.i0 * (temperature_k / self.t_ref).powi(2);
        let e_u = (u_capped / nvt).exp();
        let e_d = (-bias.vds / vt).exp();
        let g = 1.0 - e_d;
        let i_sub = prefactor * e_u * g;
        let dg_dvs = -e_d / vt;
        let dg_dvd = e_d / vt;
        let di_sub_dvs = prefactor * e_u * (cap_sig * dy_dvs / nvt * g + dg_dvs);
        let di_sub_dvd = prefactor * e_u * (cap_sig * dy_dvd / nvt * g + dg_dvd);

        let mut out = NodalCurrent {
            i: i_sub,
            di_dvs: di_sub_dvs,
            di_dvd: di_sub_dvd,
        };

        // --- strong-inversion component -----------------------------------
        let (od, sig) = softplus_logistic(u_raw / s, s);
        if od <= 0.0 {
            return out;
        }
        let k = (w / p.l) * p.k_sat * (temperature_k / self.t_ref).powf(-p.mobility_exponent);
        let imax = k * od.powf(p.alpha_sat);
        let vdsat = C_SAT * od + VDSAT_FLOOR;
        let th = (bias.vds / vdsat).tanh();
        let sech2 = 1.0 - th * th;

        let dod_dvs = sig * dy_dvs;
        let dod_dvd = sig * dy_dvd;
        let dimax_dod = p.alpha_sat * imax / od;
        // dth/dvs = sech² · (dvds/dvs / vdsat − vds·dvdsat/dvs / vdsat²).
        let dth_dvs = sech2 * (-1.0 / vdsat - bias.vds * C_SAT * dod_dvs / (vdsat * vdsat));
        let dth_dvd = sech2 * (1.0 / vdsat - bias.vds * C_SAT * dod_dvd / (vdsat * vdsat));

        out.i += imax * th;
        out.di_dvs += dimax_dod * dod_dvs * th + imax * dth_dvs;
        out.di_dvd += dimax_dod * dod_dvd * th + imax * dth_dvd;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_tech::Technology;

    fn model(tech: &Technology) -> CombinedModel<'_> {
        CombinedModel::new(&tech.nmos, tech.vdd, tech.t_ref)
    }

    #[test]
    fn off_device_reduces_to_subthreshold() {
        let tech = Technology::cmos_120nm();
        let m = model(&tech);
        let sub = SubthresholdModel::new(&tech.nmos, tech.vdd, tech.t_ref);
        let i_comb = m.current_nodal(1e-6, 0.0, 1.2, 0.0, 0.0, 300.0).i;
        let i_sub = sub.current_nodal(1e-6, 0.0, 1.2, 0.0, 0.0, 300.0).i;
        assert!((i_comb - i_sub).abs() / i_sub < 1e-6, "{i_comb} vs {i_sub}");
    }

    #[test]
    fn on_device_carries_strong_current() {
        let tech = Technology::cmos_120nm();
        let m = model(&tech);
        // Full gate drive, full rail: mA-class, far above leakage.
        let i_on = m.current_nodal(1e-6, 0.0, 1.2, 1.2, 0.0, 300.0).i;
        assert!(i_on > 1e-4, "I_on = {i_on:.3e}");
        let i_off = m.current_nodal(1e-6, 0.0, 1.2, 0.0, 0.0, 300.0).i;
        assert!(i_on / i_off > 1e5);
    }

    #[test]
    fn triode_region_is_resistive() {
        // Small V_DS at full drive: current ~ linear in V_DS.
        let tech = Technology::cmos_120nm();
        let m = model(&tech);
        let i1 = m.current_nodal(1e-6, 0.0, 0.01, 1.2, 0.0, 300.0).i;
        let i2 = m.current_nodal(1e-6, 0.0, 0.02, 1.2, 0.0, 300.0).i;
        let ratio = i2 / i1;
        assert!(
            (ratio - 2.0).abs() < 0.15,
            "triode linearity: ratio {ratio}"
        );
    }

    #[test]
    fn saturation_region_flattens() {
        let tech = Technology::cmos_120nm();
        let m = model(&tech);
        let i_half = m.current_nodal(1e-6, 0.0, 0.8, 1.2, 0.0, 300.0).i;
        let i_full = m.current_nodal(1e-6, 0.0, 1.2, 1.2, 0.0, 300.0).i;
        // DIBL keeps a mild slope in saturation (like channel-length
        // modulation); the current must be within ~15% across the region
        // while it doubles across the triode region.
        assert!((i_full - i_half) / i_full < 0.15, "saturation flatness");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let tech = Technology::cmos_120nm();
        let m = model(&tech);
        // Probe a mix of regions, including the tricky near-threshold zone.
        let cases = [
            (0.0, 1.2, 0.0),  // off, full rail
            (0.1, 1.2, 1.2),  // on pass device, source lifted
            (0.9, 1.2, 1.2),  // on, source near drain
            (0.0, 0.05, 1.2), // deep triode
            (0.3, 0.8, 0.5),  // near threshold
        ];
        for (vs, vd, vg) in cases {
            let nc = m.current_nodal(1e-6, vs, vd, vg, 0.0, 320.0);
            let h = 1e-7;
            let f = |vs: f64, vd: f64| m.current_nodal(1e-6, vs, vd, vg, 0.0, 320.0).i;
            let fd_s = (f(vs + h, vd) - f(vs - h, vd)) / (2.0 * h);
            let fd_d = (f(vs, vd + h) - f(vs, vd - h)) / (2.0 * h);
            let denom_s = fd_s.abs().max(1e-12);
            let denom_d = fd_d.abs().max(1e-12);
            assert!(
                (nc.di_dvs - fd_s).abs() / denom_s < 1e-4,
                "case ({vs},{vd},{vg}): di_dvs {} vs fd {fd_s}",
                nc.di_dvs
            );
            assert!(
                (nc.di_dvd - fd_d).abs() / denom_d < 1e-4,
                "case ({vs},{vd},{vg}): di_dvd {} vs fd {fd_d}",
                nc.di_dvd
            );
        }
    }

    #[test]
    fn pass_transistor_weakens_as_source_rises() {
        // The classic threshold drop: an ON device with gate at VDD loses
        // drive as its source approaches VDD - VTH.
        let tech = Technology::cmos_120nm();
        let m = model(&tech);
        let i_low = m.current_nodal(1e-6, 0.0, 1.2, 1.2, 0.0, 300.0).i;
        let i_high = m.current_nodal(1e-6, 0.9, 1.2, 1.2, 0.0, 300.0).i;
        assert!(
            i_high < 0.05 * i_low,
            "pass drop: {i_high:.2e} vs {i_low:.2e}"
        );
    }

    #[test]
    fn current_is_continuous_across_zero_vds() {
        let tech = Technology::cmos_120nm();
        let m = model(&tech);
        let eps = 1e-9;
        let ip = m.current_nodal(1e-6, 0.0, eps, 1.2, 0.0, 300.0).i;
        let im = m.current_nodal(1e-6, 0.0, -eps, 1.2, 0.0, 300.0).i;
        assert!(ip > 0.0 && im < 0.0);
        assert!((ip + im).abs() < 1e-3 * ip.abs().max(1e-30));
    }
}
