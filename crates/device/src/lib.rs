//! Compact MOSFET models for the `ptherm` workspace.
//!
//! Implements the device physics of §2.1 of the DATE'05 paper:
//!
//! * [`subthreshold`] — the subthreshold current of Eq. (1) with the
//!   threshold-voltage model of Eq. (2) (body effect, DIBL and temperature),
//!   plus the analytic derivatives the exact network solver needs,
//! * [`on_current`] — an α-power-law ON-state drain current with mobility
//!   and threshold temperature dependence; this drives the synthetic
//!   self-heating measurements (Figs. 9–10),
//! * [`gate_leakage`] — a simple gate-tunnelling extension (not part of the
//!   paper, which assumes subthreshold leakage dominates; kept optional and
//!   off by default in the power roll-ups).
//!
//! All equations are written in *n-channel convention* (source at the lower
//! potential). Pull-up networks mirror their node voltages around `V_DD`
//! before calling in, so the same positive-parameter equations serve both
//! polarities.
//!
//! # Example
//!
//! ```
//! use ptherm_device::subthreshold::SubthresholdModel;
//! use ptherm_tech::Technology;
//!
//! let tech = Technology::cmos_120nm();
//! let model = SubthresholdModel::new(&tech.nmos, tech.vdd, tech.t_ref);
//! // An OFF minimum-width device with full V_DD across it.
//! let bias = ptherm_device::Bias { vgs: 0.0, vds: tech.vdd, vsb: 0.0 };
//! let i_off = model.current(tech.nmos.w_min, bias, 300.0);
//! assert!(i_off > 0.0);
//! ```

pub mod combined;
pub mod gate_leakage;
pub mod on_current;
pub mod subthreshold;

pub use combined::CombinedModel;
pub use subthreshold::SubthresholdModel;

/// Terminal bias of a device in n-channel convention.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Bias {
    /// Gate-source voltage, V.
    pub vgs: f64,
    /// Drain-source voltage, V.
    pub vds: f64,
    /// Source-body voltage, V (positive = reverse body bias).
    pub vsb: f64,
}

impl Bias {
    /// Bias of an OFF device at the bottom of a conducting path: gate at 0,
    /// source grounded, full supply across the channel.
    pub fn off_full_rail(vdd: f64) -> Self {
        Bias {
            vgs: 0.0,
            vds: vdd,
            vsb: 0.0,
        }
    }
}
