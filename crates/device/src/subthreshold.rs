//! Subthreshold conduction: Eqs. (1)–(2) of the paper.
//!
//! ```text
//! I_sub = (W/L) · I0 · (T/T_ref)² · e^{(V_GS − V_TH)/(n·V_T)} · (1 − e^{−V_DS/V_T})   (1)
//! V_TH  = V_T0 + γ'·V_SB − K_T·(T − T_ref) − σ·(V_DS − V_DD)                          (2)
//! ```
//!
//! Sign conventions (resolved from physics where the OCR of the paper is
//! ambiguous, see DESIGN.md §2): `K_T > 0` *lowers* the threshold as the
//! device heats, and DIBL (`σ > 0`) *lowers* the threshold as `V_DS` grows;
//! both make leakage increase, as measured in every CMOS generation.

use crate::Bias;
use ptherm_tech::constants::thermal_voltage;
use ptherm_tech::MosParams;

/// Eq. (1)/(2) evaluator bound to one device flavour of a technology.
///
/// The model needs `V_DD` (the DIBL reference of Eq. 2) and `T_ref` in
/// addition to the device parameters, so it is constructed from all three.
#[derive(Debug, Clone, Copy)]
pub struct SubthresholdModel<'a> {
    params: &'a MosParams,
    vdd: f64,
    t_ref: f64,
}

/// Current and its derivatives with respect to the source and drain node
/// voltages — exactly what a KCL Newton iteration needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodalCurrent {
    /// Drain current, A (positive = conventional current drain → source).
    pub i: f64,
    /// ∂I/∂V_source at fixed gate/drain/body, A/V.
    pub di_dvs: f64,
    /// ∂I/∂V_drain at fixed gate/source/body, A/V.
    pub di_dvd: f64,
}

impl<'a> SubthresholdModel<'a> {
    /// Binds the model to device parameters, supply and reference
    /// temperature.
    pub fn new(params: &'a MosParams, vdd: f64, t_ref: f64) -> Self {
        SubthresholdModel { params, vdd, t_ref }
    }

    /// Device parameters this model evaluates.
    pub fn params(&self) -> &MosParams {
        self.params
    }

    /// Supply voltage used as the DIBL reference in Eq. (2).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Threshold voltage of Eq. (2) at the given bias and temperature.
    pub fn threshold_voltage(&self, bias: Bias, temperature_k: f64) -> f64 {
        let p = self.params;
        p.vt0 + p.gamma_b * bias.vsb
            - p.k_t * (temperature_k - self.t_ref)
            - p.sigma * (bias.vds - self.vdd)
    }

    /// Subthreshold current of Eq. (1) for a device of width `w` (metres).
    ///
    /// Negative `vds` produces a negative (reverse) current; the expression
    /// is smooth through zero, which the Newton solvers rely on.
    pub fn current(&self, w: f64, bias: Bias, temperature_k: f64) -> f64 {
        let p = self.params;
        let vt = thermal_voltage(temperature_k);
        let vth = self.threshold_voltage(bias, temperature_k);
        let prefactor = (w / p.l) * p.i0 * (temperature_k / self.t_ref).powi(2);
        prefactor * ((bias.vgs - vth) / (p.n * vt)).exp() * (1.0 - (-bias.vds / vt).exp())
    }

    /// Current through a stack device given *absolute node voltages* (all in
    /// n-channel convention): source `vs`, drain `vd`, gate `vg`, body `vb`,
    /// along with the analytic derivatives with respect to `vs` and `vd`.
    ///
    /// This is the form the exact stack/network solver consumes: internal
    /// node voltages are the unknowns, gate and body are fixed by the input
    /// vector.
    pub fn current_nodal(
        &self,
        w: f64,
        vs: f64,
        vd: f64,
        vg: f64,
        vb: f64,
        temperature_k: f64,
    ) -> NodalCurrent {
        let p = self.params;
        let vt = thermal_voltage(temperature_k);
        let nvt = p.n * vt;
        let bias = Bias {
            vgs: vg - vs,
            vds: vd - vs,
            vsb: vs - vb,
        };
        let vth = self.threshold_voltage(bias, temperature_k);
        let prefactor = (w / p.l) * p.i0 * (temperature_k / self.t_ref).powi(2);
        let e_u = ((bias.vgs - vth) / nvt).exp();
        let e_d = (-bias.vds / vt).exp();
        let g = 1.0 - e_d;
        let i = prefactor * e_u * g;

        // d(V_GS - V_TH)/dvs = -1 - γ' - σ   (source moves: V_GS drops,
        // V_SB rises -> V_TH rises by γ', V_DS drops -> V_TH rises by σ).
        let du_dvs = (-1.0 - p.gamma_b - p.sigma) / nvt;
        // d(V_GS - V_TH)/dvd = +σ (V_DS rises -> V_TH falls by σ).
        let du_dvd = p.sigma / nvt;
        // dg/dvs = -(1/V_T) e^{-V_DS/V_T}; dg/dvd = +(1/V_T) e^{-V_DS/V_T}.
        let dg_dvs = -e_d / vt;
        let dg_dvd = e_d / vt;

        NodalCurrent {
            i,
            di_dvs: prefactor * e_u * (du_dvs * g + dg_dvs),
            di_dvd: prefactor * e_u * (du_dvd * g + dg_dvd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_tech::Technology;

    fn model_120(tech: &Technology) -> SubthresholdModel<'_> {
        SubthresholdModel::new(&tech.nmos, tech.vdd, tech.t_ref)
    }

    #[test]
    fn threshold_drops_with_temperature_and_vds() {
        let tech = Technology::cmos_120nm();
        let m = model_120(&tech);
        let base = Bias {
            vgs: 0.0,
            vds: tech.vdd,
            vsb: 0.0,
        };
        let vth_cold = m.threshold_voltage(base, 300.0);
        let vth_hot = m.threshold_voltage(base, 400.0);
        assert!(vth_hot < vth_cold);

        let low_vds = Bias { vds: 0.1, ..base };
        assert!(m.threshold_voltage(low_vds, 300.0) > m.threshold_voltage(base, 300.0));
    }

    #[test]
    fn threshold_rises_with_body_reverse_bias() {
        let tech = Technology::cmos_120nm();
        let m = model_120(&tech);
        let b0 = Bias {
            vgs: 0.0,
            vds: 1.2,
            vsb: 0.0,
        };
        let b1 = Bias { vsb: 0.3, ..b0 };
        assert!(m.threshold_voltage(b1, 300.0) > m.threshold_voltage(b0, 300.0));
    }

    #[test]
    fn current_increases_exponentially_with_vgs() {
        let tech = Technology::cmos_120nm();
        let m = model_120(&tech);
        let w = 1e-6;
        let i0 = m.current(
            w,
            Bias {
                vgs: 0.0,
                vds: 1.2,
                vsb: 0.0,
            },
            300.0,
        );
        let i1 = m.current(
            w,
            Bias {
                vgs: 0.1,
                vds: 1.2,
                vsb: 0.0,
            },
            300.0,
        );
        // 100 mV of gate drive at S ~ 84 mV/dec is more than a decade.
        assert!(i1 / i0 > 10.0, "ratio = {}", i1 / i0);
    }

    #[test]
    fn subthreshold_swing_matches_slope_factor() {
        // Numerically extract S = dVgs / dlog10(I); must equal ln10 n VT.
        let tech = Technology::cmos_120nm();
        let m = model_120(&tech);
        let w = 1e-6;
        let t = 300.0;
        let i_at = |vgs: f64| {
            m.current(
                w,
                Bias {
                    vgs,
                    vds: 1.2,
                    vsb: 0.0,
                },
                t,
            )
        };
        let dec = (i_at(0.10) / i_at(0.05)).log10();
        let s_num = 0.05 / dec;
        let s_model = tech.nmos.subthreshold_swing(t);
        assert!(
            (s_num - s_model).abs() / s_model < 1e-6,
            "{s_num} vs {s_model}"
        );
    }

    #[test]
    fn current_vanishes_at_zero_vds_and_reverses_sign() {
        let tech = Technology::cmos_120nm();
        let m = model_120(&tech);
        let w = 1e-6;
        let i_zero = m.current(
            w,
            Bias {
                vgs: 0.0,
                vds: 0.0,
                vsb: 0.0,
            },
            300.0,
        );
        assert_eq!(i_zero, 0.0);
        let i_neg = m.current(
            w,
            Bias {
                vgs: 0.0,
                vds: -0.05,
                vsb: 0.0,
            },
            300.0,
        );
        assert!(i_neg < 0.0);
    }

    #[test]
    fn vds_factor_saturates_above_a_few_vt() {
        let tech = Technology::cmos_120nm();
        let m = model_120(&tech);
        let w = 1e-6;
        // At VDS = 5 V_T the (1 - e^{-VDS/VT}) factor is within 1%, but DIBL
        // keeps raising the current with VDS; compare with sigma = 0.
        let mut params = tech.nmos;
        params.sigma = 0.0;
        let m0 = SubthresholdModel::new(&params, tech.vdd, tech.t_ref);
        let vt = thermal_voltage(300.0);
        let i5 = m0.current(
            w,
            Bias {
                vgs: 0.0,
                vds: 5.0 * vt,
                vsb: 0.0,
            },
            300.0,
        );
        let i_full = m0.current(
            w,
            Bias {
                vgs: 0.0,
                vds: 1.2,
                vsb: 0.0,
            },
            300.0,
        );
        assert!(
            (i_full - i5) / i_full < 0.01,
            "sat error {}",
            (i_full - i5) / i_full
        );
        // With DIBL on, full rail leaks noticeably more than 5 V_T.
        let i5_d = m.current(
            w,
            Bias {
                vgs: 0.0,
                vds: 5.0 * vt,
                vsb: 0.0,
            },
            300.0,
        );
        let i_full_d = m.current(
            w,
            Bias {
                vgs: 0.0,
                vds: 1.2,
                vsb: 0.0,
            },
            300.0,
        );
        assert!(i_full_d / i5_d > 1.5);
    }

    #[test]
    fn nodal_derivatives_match_finite_differences() {
        let tech = Technology::cmos_120nm();
        let m = model_120(&tech);
        let w = 4e-7;
        let t = 330.0;
        let (vs, vd, vg, vb) = (0.04, 0.9, 0.0, 0.0);
        let nc = m.current_nodal(w, vs, vd, vg, vb, t);
        let h = 1e-7;
        let ip = m.current_nodal(w, vs + h, vd, vg, vb, t).i;
        let im = m.current_nodal(w, vs - h, vd, vg, vb, t).i;
        let fd_s = (ip - im) / (2.0 * h);
        assert!(
            (nc.di_dvs - fd_s).abs() / fd_s.abs() < 1e-5,
            "{} vs {fd_s}",
            nc.di_dvs
        );
        let ip = m.current_nodal(w, vs, vd + h, vg, vb, t).i;
        let im = m.current_nodal(w, vs, vd - h, vg, vb, t).i;
        let fd_d = (ip - im) / (2.0 * h);
        assert!(
            (nc.di_dvd - fd_d).abs() / fd_d.abs() < 1e-5,
            "{} vs {fd_d}",
            nc.di_dvd
        );
    }

    #[test]
    fn nodal_current_signs_are_physical() {
        let tech = Technology::cmos_120nm();
        let m = model_120(&tech);
        let nc = m.current_nodal(1e-6, 0.05, 1.2, 0.0, 0.0, 300.0);
        assert!(nc.i > 0.0);
        // Raising the source voltage shuts the device harder.
        assert!(nc.di_dvs < 0.0);
        // Raising the drain voltage increases current (DIBL + vds factor).
        assert!(nc.di_dvd > 0.0);
    }

    #[test]
    fn temperature_prefactor_squared() {
        // With K_T = 0 and fixed exponent argument the (T/Tref)^2 prefactor
        // remains; verify by constructing a zero-sensitivity device and
        // scaling V_T out of the picture (compare at same VGS/VT ratio).
        let tech = Technology::cmos_120nm();
        let mut p = tech.nmos;
        p.k_t = 0.0;
        let m = SubthresholdModel::new(&p, tech.vdd, tech.t_ref);
        let w = 1e-6;
        // Evaluate at VGS = VTH so the exponential is exactly 1 at both
        // temperatures (VDS factor ~ 1 at full rail).
        let t1 = 300.0;
        let t2 = 450.0;
        let b = |t: f64| {
            let vth = m.threshold_voltage(
                Bias {
                    vgs: 0.0,
                    vds: 1.2,
                    vsb: 0.0,
                },
                t,
            );
            Bias {
                vgs: vth,
                vds: 1.2,
                vsb: 0.0,
            }
        };
        let r = m.current(w, b(t2), t2) / m.current(w, b(t1), t1);
        let expect = (t2 / t1) * (t2 / t1);
        let vds_t1 = 1.0 - (-1.2 / thermal_voltage(t1)).exp();
        let vds_t2 = 1.0 - (-1.2 / thermal_voltage(t2)).exp();
        let expect = expect * vds_t2 / vds_t1;
        assert!((r - expect).abs() / expect < 1e-9, "{r} vs {expect}");
    }

    use ptherm_tech::constants::thermal_voltage;
}
