//! ON-state drain current: α-power law with temperature dependence.
//!
//! The self-heating measurements of Figs. 9–10 pulse a transistor ON and
//! watch its drain current sag as the channel heats: mobility degrades as
//! `(T/T_ref)^{-m}` while the threshold drops by `K_T (T - T_ref)`. At high
//! gate drive the mobility term wins, so the current has a *negative*
//! temperature coefficient — this is the physical signal the synthetic
//! oscilloscope in `ptherm-thermal-num` digitizes.
//!
//! The model is the classic Sakurai–Newton α-power law in saturation:
//!
//! ```text
//! I_D = (W/L) · k_sat · (T/T_ref)^{-m} · (V_GS − V_TH(T))^α        V_GS > V_TH
//! ```
//!
//! Assumption (documented): the measurement rig keeps the device saturated
//! (`V_DS` stays well above `V_Dsat` because the series sense resistor is
//! small), so no linear-region branch is modelled.

use ptherm_tech::MosParams;

/// α-power-law evaluator bound to one device flavour.
///
/// # Example
///
/// ```
/// use ptherm_device::on_current::OnCurrentModel;
/// use ptherm_tech::Technology;
///
/// let tech = Technology::cmos_350nm();
/// let model = OnCurrentModel::new(&tech.nmos, tech.t_ref);
/// let cold = model.current(10e-6, tech.vdd, 300.0);
/// let hot = model.current(10e-6, tech.vdd, 380.0);
/// // At full gate drive the mobility term wins: negative TC.
/// assert!(cold > 0.0 && hot < cold);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OnCurrentModel<'a> {
    params: &'a MosParams,
    t_ref: f64,
}

impl<'a> OnCurrentModel<'a> {
    /// Binds the model to device parameters and the reference temperature.
    pub fn new(params: &'a MosParams, t_ref: f64) -> Self {
        OnCurrentModel { params, t_ref }
    }

    /// Threshold voltage at temperature (zero body bias, saturation).
    pub fn threshold_voltage(&self, temperature_k: f64) -> f64 {
        self.params.vt0 - self.params.k_t * (temperature_k - self.t_ref)
    }

    /// Saturation drain current of a device of width `w` at gate drive
    /// `vgs`, in amperes. Returns 0 below threshold.
    pub fn current(&self, w: f64, vgs: f64, temperature_k: f64) -> f64 {
        let p = self.params;
        let vth = self.threshold_voltage(temperature_k);
        let overdrive = vgs - vth;
        if overdrive <= 0.0 {
            return 0.0;
        }
        (w / p.l)
            * p.k_sat
            * (temperature_k / self.t_ref).powf(-p.mobility_exponent)
            * overdrive.powf(p.alpha_sat)
    }

    /// Linearized temperature coefficient `dI/dT / I` (1/K) around
    /// `temperature_k`, by central differences. The measurement rig uses
    /// this to convert current sag into temperature rise.
    pub fn temperature_coefficient(&self, w: f64, vgs: f64, temperature_k: f64) -> f64 {
        let h = 0.05;
        let ip = self.current(w, vgs, temperature_k + h);
        let im = self.current(w, vgs, temperature_k - h);
        let i = self.current(w, vgs, temperature_k);
        if i == 0.0 {
            return 0.0;
        }
        (ip - im) / (2.0 * h * i)
    }

    /// Gate drive at which the temperature coefficient vanishes (the "ZTC"
    /// bias point), found by bisection within `(V_TH, v_max)`. Returns
    /// `None` when there is no sign change in the interval.
    ///
    /// Below the ZTC point threshold shift wins (current grows with T);
    /// above it mobility wins (current sags with T). The measurement rig
    /// biases well above ZTC.
    pub fn zero_tc_gate_voltage(&self, w: f64, v_max: f64, temperature_k: f64) -> Option<f64> {
        let vth = self.threshold_voltage(temperature_k);
        let mut lo = vth + 1e-3;
        let mut hi = v_max;
        let tc = |v: f64| self.temperature_coefficient(w, v, temperature_k);
        let (flo, fhi) = (tc(lo), tc(hi));
        if flo.signum() == fhi.signum() {
            return None;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if tc(mid).signum() == flo.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_tech::Technology;

    #[test]
    fn current_is_zero_below_threshold() {
        let tech = Technology::cmos_350nm();
        let m = OnCurrentModel::new(&tech.nmos, tech.t_ref);
        assert_eq!(m.current(1e-5, 0.2, 300.0), 0.0);
    }

    #[test]
    fn current_scales_with_width_and_overdrive() {
        let tech = Technology::cmos_350nm();
        let m = OnCurrentModel::new(&tech.nmos, tech.t_ref);
        let i1 = m.current(1e-5, 3.3, 300.0);
        let i2 = m.current(2e-5, 3.3, 300.0);
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
        assert!(m.current(1e-5, 3.3, 300.0) > m.current(1e-5, 2.0, 300.0));
    }

    #[test]
    fn full_drive_current_magnitude_is_plausible() {
        // A 10 um / 0.35 um device at full rail should carry mA-class
        // current (the paper's measured devices dissipate ~mW–tens of mW).
        let tech = Technology::cmos_350nm();
        let m = OnCurrentModel::new(&tech.nmos, tech.t_ref);
        let i = m.current(10e-6, 3.3, 300.0);
        assert!(i > 5e-4 && i < 5e-2, "I_on = {i:.3e} A");
    }

    #[test]
    fn high_drive_tc_is_negative_low_drive_positive() {
        let tech = Technology::cmos_350nm();
        let m = OnCurrentModel::new(&tech.nmos, tech.t_ref);
        let w = 10e-6;
        let tc_high = m.temperature_coefficient(w, 3.3, 300.0);
        assert!(tc_high < 0.0, "tc at full drive = {tc_high}");
        let vth = m.threshold_voltage(300.0);
        let tc_low = m.temperature_coefficient(w, vth + 0.05, 300.0);
        assert!(tc_low > 0.0, "tc near threshold = {tc_low}");
    }

    #[test]
    fn ztc_point_exists_between_threshold_and_rail() {
        let tech = Technology::cmos_350nm();
        let m = OnCurrentModel::new(&tech.nmos, tech.t_ref);
        let ztc = m
            .zero_tc_gate_voltage(10e-6, 3.3, 300.0)
            .expect("ZTC in range");
        let vth = m.threshold_voltage(300.0);
        assert!(ztc > vth && ztc < 3.3, "ztc = {ztc}");
        let tc = m.temperature_coefficient(10e-6, ztc, 300.0);
        assert!(tc.abs() < 1e-5, "tc at ztc = {tc}");
    }

    #[test]
    fn current_sags_when_device_heats() {
        // The self-heating signal: at fixed full-rail drive, I(T) decreases.
        let tech = Technology::cmos_350nm();
        let m = OnCurrentModel::new(&tech.nmos, tech.t_ref);
        let i_cold = m.current(10e-6, 3.3, 303.15);
        let i_hot = m.current(10e-6, 3.3, 313.15);
        assert!(i_hot < i_cold);
        // ~fraction-of-a-percent per kelvin: small-signal linearity holds.
        let rel = (i_cold - i_hot) / i_cold / 10.0;
        assert!(rel > 1e-4 && rel < 1e-2, "per-kelvin sag = {rel}");
    }
}
