//! Property-based tests for the topology layer: random series-parallel
//! trees against structural invariants.

use proptest::prelude::*;
use ptherm_netlist::{BoundNetwork, Cell, Network};

/// Strategy for random series-parallel trees over `n_inputs` pins.
fn sp_network(n_inputs: usize) -> impl Strategy<Value = Network> {
    let leaf = (0..n_inputs, 0.2f64..4.0).prop_map(|(i, w)| Network::device(w * 1e-6, i));
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Network::Series),
            proptest::collection::vec(inner, 2..4).prop_map(Network::Parallel),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dual-of-dual with inverse width map restores the original tree.
    #[test]
    fn dual_is_an_involution(net in sp_network(3)) {
        let there = net.dual(|w| 2.0 * w);
        let back = there.dual(|w| w / 2.0);
        prop_assert_eq!(net, back);
    }

    /// A cell built from any SP pull-down with its dual pull-up is
    /// complementary for every input vector.
    #[test]
    fn dual_cells_are_complementary(net in sp_network(3)) {
        let cell = Cell::from_pulldown(
            "prop",
            vec!["a".into(), "b".into(), "c".into()],
            net,
            2.0,
            1e-15,
        ).expect("inputs in range by construction");
        cell.verify_complementary().expect("dual construction is complementary");
    }

    /// Conduction is monotone in the inputs for pull-down networks:
    /// turning ON more inputs can never break an existing path.
    #[test]
    fn pulldown_conduction_is_monotone(net in sp_network(3), bits in 0u8..8) {
        let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
        let conducts = BoundNetwork::pulldown(&net, &v).is_conducting();
        for flip in 0..3 {
            if !v[flip] {
                let mut more = v.clone();
                more[flip] = true;
                let still = BoundNetwork::pulldown(&net, &more).is_conducting();
                prop_assert!(!conducts || still, "raising an input broke a path");
            }
        }
    }

    /// Stack depth bounds: zero iff conducting; never exceeds the device
    /// count.
    #[test]
    fn stack_depth_bounds(net in sp_network(3), bits in 0u8..8) {
        let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
        let bound = BoundNetwork::pulldown(&net, &v);
        let depth = bound.max_stack_depth();
        prop_assert_eq!(depth == 0, bound.is_conducting());
        prop_assert!(depth <= net.transistor_count());
    }

    /// Transistor count is preserved by binding and duality.
    #[test]
    fn counts_are_preserved(net in sp_network(3)) {
        let n = net.transistor_count();
        prop_assert_eq!(net.dual(|w| w).transistor_count(), n);
        let bound = BoundNetwork::pulldown(&net, &[true, false, true]);
        prop_assert_eq!(bound.root().transistor_count(), n);
    }
}
