//! Gate topologies, standard cells, input vectors and circuit-level power
//! bookkeeping for the `ptherm` workspace.
//!
//! The leakage model of the DATE'05 paper operates on *transistor networks*:
//! series/parallel compositions of devices between a supply rail and the
//! gate output. This crate owns that representation:
//!
//! * [`topology`] — the series-parallel [`Network`] tree,
//!   its dual (pull-up from pull-down), and the *bound* form in which every
//!   transistor knows whether its gate is driven high (after mirroring
//!   pull-up networks into n-channel convention),
//! * [`cell`] — a static CMOS [`Cell`]: complementary pull-up /
//!   pull-down networks plus input names and load capacitance,
//! * [`cells`] — the built-in library (INV, NAND2–4, NOR2–4, AOI21/22,
//!   OAI21/22),
//! * [`vectors`] — input-vector enumeration helpers,
//! * [`circuit`] — gate-count circuits and a seeded random generator for
//!   block-level experiments,
//! * [`dynamic_power`] — transient `α f C V²` power and a compact
//!   short-circuit model in the spirit of the paper's companion reference
//!   \[10\] (Rosselló & Segura, TCAD 2002).
//!
//! # Example
//!
//! ```
//! use ptherm_netlist::cells;
//! use ptherm_tech::Technology;
//!
//! let tech = Technology::cmos_120nm();
//! let nand2 = cells::nand(2, &tech);
//! assert_eq!(nand2.inputs().len(), 2);
//! // With both inputs low the pull-down network blocks (it is a 2-stack).
//! let bound = nand2.bound_blocking(&[false, false]).expect("complementary cell");
//! assert_eq!(bound.max_stack_depth(), 2);
//! ```

pub mod cell;
pub mod cells;
pub mod circuit;
pub mod dynamic_power;
pub mod topology;
pub mod vectors;

pub use cell::{BindCellError, Cell};
pub use topology::{BoundNetwork, BoundNode, Network, Transistor};
