//! Series-parallel transistor networks and their input-bound form.
//!
//! A [`Network`] is a tree whose leaves are transistors (width + input pin)
//! and whose internal nodes are series or parallel compositions. For static
//! CMOS the pull-up network is the *dual* of the pull-down network
//! ([`Network::dual`]): series ↔ parallel with the same input assignment.
//!
//! Binding a network to a concrete input vector produces a [`BoundNetwork`]
//! in which each device simply knows whether its gate is ON. Pull-up
//! networks are mirrored into n-channel convention during binding, so every
//! consumer (the exact solver, the paper's collapsing model) only ever sees
//! "nMOS-like" networks whose source rail is at 0 and whose far end is at
//! `V_DD`.
//!
//! Ordering convention: the elements of a [`Network::Series`] list run from
//! the **source rail** (ground for pull-down; the supply for pull-up) toward
//! the gate output. The paper labels the same chain `T1` (closest to the
//! rail) through `TN` (Fig. 2).

use ptherm_tech::Polarity;
use std::fmt;

/// A transistor leaf: drawn width plus the input pin driving its gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transistor {
    /// Drawn channel width, m.
    pub width: f64,
    /// Index of the cell input connected to the gate.
    pub input: usize,
}

/// Series-parallel transistor network (unbound: leaves reference input pins).
#[derive(Debug, Clone, PartialEq)]
pub enum Network {
    /// Single device.
    Device(Transistor),
    /// Chain of sub-networks, ordered source rail → output.
    Series(Vec<Network>),
    /// Parallel combination of sub-networks.
    Parallel(Vec<Network>),
}

impl Network {
    /// Convenience constructor for a single device.
    pub fn device(width: f64, input: usize) -> Self {
        Network::Device(Transistor { width, input })
    }

    /// Number of transistors in the network.
    pub fn transistor_count(&self) -> usize {
        match self {
            Network::Device(_) => 1,
            Network::Series(v) | Network::Parallel(v) => {
                v.iter().map(Network::transistor_count).sum()
            }
        }
    }

    /// Largest input index referenced, or `None` for an empty composite.
    pub fn max_input(&self) -> Option<usize> {
        match self {
            Network::Device(t) => Some(t.input),
            Network::Series(v) | Network::Parallel(v) => {
                v.iter().filter_map(Network::max_input).max()
            }
        }
    }

    /// Width of the first (rail-side) device — a representative drive width
    /// for short-circuit estimates.
    pub fn first_width(&self) -> Option<f64> {
        match self {
            Network::Device(t) => Some(t.width),
            Network::Series(v) | Network::Parallel(v) => v.first().and_then(Network::first_width),
        }
    }

    /// The structural dual: series ↔ parallel, device widths mapped through
    /// `width_map` (pull-up devices are usually drawn wider to compensate
    /// hole mobility).
    pub fn dual<F: Fn(f64) -> f64 + Copy>(&self, width_map: F) -> Network {
        match self {
            Network::Device(t) => Network::Device(Transistor {
                width: width_map(t.width),
                input: t.input,
            }),
            Network::Series(v) => Network::Parallel(v.iter().map(|n| n.dual(width_map)).collect()),
            Network::Parallel(v) => Network::Series(v.iter().map(|n| n.dual(width_map)).collect()),
        }
    }

    /// Binds the network to an input vector.
    ///
    /// `gate_on_when` decides whether a device conducts for a given input
    /// level: pull-down nMOS conduct on `true`, pull-up pMOS conduct on
    /// `false`.
    ///
    /// # Panics
    ///
    /// Panics if a device references an input outside `inputs`. Cells
    /// validate input arity at construction, so this indicates an internal
    /// inconsistency.
    fn bind(&self, inputs: &[bool], gate_on_when: bool) -> BoundNode {
        match self {
            Network::Device(t) => BoundNode::Device {
                width: t.width,
                gate_on: inputs[t.input] == gate_on_when,
            },
            Network::Series(v) => {
                BoundNode::Series(v.iter().map(|n| n.bind(inputs, gate_on_when)).collect())
            }
            Network::Parallel(v) => {
                BoundNode::Parallel(v.iter().map(|n| n.bind(inputs, gate_on_when)).collect())
            }
        }
    }
}

/// A bound network node: every gate resolved to ON/OFF.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundNode {
    /// Single device with resolved gate state.
    Device {
        /// Drawn width, m.
        width: f64,
        /// Whether the gate is driven to the conducting level.
        gate_on: bool,
    },
    /// Chain ordered source rail → output.
    Series(Vec<BoundNode>),
    /// Parallel combination.
    Parallel(Vec<BoundNode>),
}

impl BoundNode {
    /// True when an all-ON path connects the two ends.
    pub fn is_conducting(&self) -> bool {
        match self {
            BoundNode::Device { gate_on, .. } => *gate_on,
            BoundNode::Series(v) => v.iter().all(BoundNode::is_conducting),
            BoundNode::Parallel(v) => v.iter().any(BoundNode::is_conducting),
        }
    }

    /// Number of devices.
    pub fn transistor_count(&self) -> usize {
        match self {
            BoundNode::Device { .. } => 1,
            BoundNode::Series(v) | BoundNode::Parallel(v) => {
                v.iter().map(BoundNode::transistor_count).sum()
            }
        }
    }

    /// Number of series OFF devices on the *dominant* (least-blocked)
    /// rail-to-output path — the stack depth that drives the paper's
    /// collapsing recursion. ON devices are transparent ("part of the
    /// internal nodes", §2.1.2) and an ON branch bypasses OFF branches in
    /// parallel with it (the paper discards those chains), hence `min`
    /// across parallel branches.
    pub fn off_stack_depth(&self) -> usize {
        match self {
            BoundNode::Device { gate_on, .. } => usize::from(!*gate_on),
            BoundNode::Series(v) => v.iter().map(BoundNode::off_stack_depth).sum(),
            BoundNode::Parallel(v) => v.iter().map(BoundNode::off_stack_depth).min().unwrap_or(0),
        }
    }
}

/// A bound network with its device polarity, in n-channel convention.
///
/// For pull-up networks the mirroring `v' = V_DD − v` has already been
/// applied conceptually: the source rail is at potential 0 and a blocking
/// network sees `V_DD` at its far end, regardless of polarity. Consumers
/// pick device parameters by [`BoundNetwork::polarity`].
#[derive(Debug, Clone, PartialEq)]
pub struct BoundNetwork {
    polarity: Polarity,
    root: BoundNode,
}

impl BoundNetwork {
    /// Binds a pull-down network (nMOS; devices conduct on logic 1).
    pub fn pulldown(net: &Network, inputs: &[bool]) -> Self {
        BoundNetwork {
            polarity: Polarity::Nmos,
            root: net.bind(inputs, true),
        }
    }

    /// Binds a pull-up network (pMOS; devices conduct on logic 0), mirrored
    /// into n-channel convention.
    pub fn pullup(net: &Network, inputs: &[bool]) -> Self {
        BoundNetwork {
            polarity: Polarity::Pmos,
            root: net.bind(inputs, false),
        }
    }

    /// Device polarity (selects the parameter set).
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Root of the bound series-parallel tree.
    pub fn root(&self) -> &BoundNode {
        &self.root
    }

    /// True when an all-ON path exists (the network conducts).
    pub fn is_conducting(&self) -> bool {
        self.root.is_conducting()
    }

    /// OFF-device stack depth of the dominant leakage path (see
    /// [`BoundNode::off_stack_depth`]).
    pub fn max_stack_depth(&self) -> usize {
        self.root.off_stack_depth()
    }
}

impl fmt::Display for BoundNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(node: &BoundNode, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match node {
                BoundNode::Device { width, gate_on } => {
                    write!(
                        f,
                        "{}({:.0}n)",
                        if *gate_on { "ON" } else { "off" },
                        width * 1e9
                    )
                }
                BoundNode::Series(v) => {
                    write!(f, "[")?;
                    for (i, n) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, " - ")?;
                        }
                        rec(n, f)?;
                    }
                    write!(f, "]")
                }
                BoundNode::Parallel(v) => {
                    write!(f, "(")?;
                    for (i, n) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, " | ")?;
                        }
                        rec(n, f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        write!(f, "{} ", self.polarity)?;
        rec(&self.root, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand2_pulldown() -> Network {
        Network::Series(vec![Network::device(4e-7, 0), Network::device(4e-7, 1)])
    }

    #[test]
    fn counts_and_max_input() {
        let pd = nand2_pulldown();
        assert_eq!(pd.transistor_count(), 2);
        assert_eq!(pd.max_input(), Some(1));
    }

    #[test]
    fn dual_swaps_series_and_parallel() {
        let pd = nand2_pulldown();
        let pu = pd.dual(|w| 2.0 * w);
        match &pu {
            Network::Parallel(v) => {
                assert_eq!(v.len(), 2);
                match &v[0] {
                    Network::Device(t) => assert_eq!(t.width, 8e-7),
                    other => panic!("expected device, got {other:?}"),
                }
            }
            other => panic!("expected parallel, got {other:?}"),
        }
        // Dual of dual restores the structure (widths doubled twice).
        let back = pu.dual(|w| w / 4.0);
        assert_eq!(
            back,
            Network::Series(vec![Network::device(2e-7, 0), Network::device(2e-7, 1),])
        );
    }

    #[test]
    fn pulldown_binding_follows_inputs() {
        let pd = nand2_pulldown();
        let b = BoundNetwork::pulldown(&pd, &[true, true]);
        assert!(b.is_conducting());
        let b = BoundNetwork::pulldown(&pd, &[true, false]);
        assert!(!b.is_conducting());
        assert_eq!(b.max_stack_depth(), 1); // one OFF device, one ON
    }

    #[test]
    fn pullup_binding_is_mirrored() {
        let pu = nand2_pulldown().dual(|w| 2.0 * w);
        // NAND pull-up conducts when any input is 0.
        assert!(BoundNetwork::pullup(&pu, &[false, true]).is_conducting());
        assert!(!BoundNetwork::pullup(&pu, &[true, true]).is_conducting());
    }

    #[test]
    fn complementarity_of_dual_networks() {
        // For every input vector exactly one of pull-down / pull-up conducts.
        let pd = Network::Series(vec![
            Network::device(4e-7, 0),
            Network::Parallel(vec![Network::device(4e-7, 1), Network::device(4e-7, 2)]),
        ]); // AOI-ish: out = !(a & (b | c))
        let pu = pd.dual(|w| 2.0 * w);
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let down = BoundNetwork::pulldown(&pd, &v).is_conducting();
            let up = BoundNetwork::pullup(&pu, &v).is_conducting();
            assert_ne!(down, up, "vector {v:?} must drive exactly one network");
        }
    }

    #[test]
    fn off_stack_depth_counts_only_off_devices() {
        let pd = Network::Series(vec![
            Network::device(4e-7, 0),
            Network::device(4e-7, 1),
            Network::device(4e-7, 2),
        ]);
        let b = BoundNetwork::pulldown(&pd, &[false, true, false]);
        assert_eq!(b.max_stack_depth(), 2);
        let b = BoundNetwork::pulldown(&pd, &[false, false, false]);
        assert_eq!(b.max_stack_depth(), 3);
    }

    #[test]
    fn display_is_readable() {
        let pd = nand2_pulldown();
        let b = BoundNetwork::pulldown(&pd, &[true, false]);
        let s = format!("{b}");
        assert!(s.contains("ON") && s.contains("off"), "{s}");
    }
}
