//! Built-in standard-cell library.
//!
//! Sizing follows the textbook static-CMOS rules: an inverter's nMOS is
//! drawn at `2·w_min`; series stacks are up-sized by the stack depth to keep
//! pull-down drive; pull-up devices carry a 2x mobility-compensation factor
//! (applied via the dual construction). Load capacitance is estimated as the
//! technology's per-gate switched capacitance scaled by the device count.

use crate::cell::Cell;
use crate::topology::Network;
use ptherm_tech::Technology;

fn input_names(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            // a, b, c ... then i10, i11, ...
            if i < 26 {
                char::from(b'a' + i as u8).to_string()
            } else {
                format!("i{i}")
            }
        })
        .collect()
}

fn load_for(tech: &Technology, devices: usize) -> f64 {
    tech.c_gate * (devices as f64 / 2.0).max(1.0)
}

/// Inverter.
///
/// # Panics
///
/// Never panics for a validated technology (input indices are in range by
/// construction); the same holds for every constructor in this module.
pub fn inv(tech: &Technology) -> Cell {
    let w = 2.0 * tech.nmos.w_min;
    let pd = Network::device(w, 0);
    Cell::from_pulldown("inv", input_names(1), pd, 2.0, load_for(tech, 2))
        .expect("inverter construction is infallible")
}

/// `n`-input NAND (series pull-down stack, up-sized by the stack depth).
///
/// # Panics
///
/// Panics if `n == 0` or `n > 8` (no real library stacks deeper).
pub fn nand(n: usize, tech: &Technology) -> Cell {
    assert!((1..=8).contains(&n), "nand arity {n} out of range 1..=8");
    if n == 1 {
        return inv(tech);
    }
    let w = 2.0 * tech.nmos.w_min * n as f64;
    let pd = Network::Series((0..n).map(|i| Network::device(w, i)).collect());
    Cell::from_pulldown(
        format!("nand{n}"),
        input_names(n),
        pd,
        2.0 / n as f64,
        load_for(tech, 2 * n),
    )
    .expect("nand construction is infallible")
}

/// `n`-input NOR (parallel pull-down; the dual pull-up is a series pMOS
/// stack, so pull-up devices get the full `2n` up-sizing).
///
/// # Panics
///
/// Panics if `n == 0` or `n > 8`.
pub fn nor(n: usize, tech: &Technology) -> Cell {
    assert!((1..=8).contains(&n), "nor arity {n} out of range 1..=8");
    if n == 1 {
        return inv(tech);
    }
    let w = 2.0 * tech.nmos.w_min;
    let pd = Network::Parallel((0..n).map(|i| Network::device(w, i)).collect());
    Cell::from_pulldown(
        format!("nor{n}"),
        input_names(n),
        pd,
        2.0 * n as f64,
        load_for(tech, 2 * n),
    )
    .expect("nor construction is infallible")
}

/// AOI21: `out = !(a·b + c)` — AND-OR-invert, 2+1 structure.
pub fn aoi21(tech: &Technology) -> Cell {
    let w = 4.0 * tech.nmos.w_min;
    let pd = Network::Parallel(vec![
        Network::Series(vec![Network::device(w, 0), Network::device(w, 1)]),
        Network::device(0.5 * w, 2),
    ]);
    Cell::from_pulldown("aoi21", input_names(3), pd, 2.0, load_for(tech, 6))
        .expect("aoi21 construction is infallible")
}

/// AOI22: `out = !(a·b + c·d)`.
pub fn aoi22(tech: &Technology) -> Cell {
    let w = 4.0 * tech.nmos.w_min;
    let pair = |i: usize| Network::Series(vec![Network::device(w, i), Network::device(w, i + 1)]);
    let pd = Network::Parallel(vec![pair(0), pair(2)]);
    Cell::from_pulldown("aoi22", input_names(4), pd, 2.0, load_for(tech, 8))
        .expect("aoi22 construction is infallible")
}

/// OAI21: `out = !((a + b)·c)` — OR-AND-invert.
pub fn oai21(tech: &Technology) -> Cell {
    let w = 4.0 * tech.nmos.w_min;
    let pd = Network::Series(vec![
        Network::Parallel(vec![Network::device(w, 0), Network::device(w, 1)]),
        Network::device(w, 2),
    ]);
    Cell::from_pulldown("oai21", input_names(3), pd, 2.0, load_for(tech, 6))
        .expect("oai21 construction is infallible")
}

/// OAI22: `out = !((a + b)·(c + d))`.
pub fn oai22(tech: &Technology) -> Cell {
    let w = 4.0 * tech.nmos.w_min;
    let pair = |i: usize| Network::Parallel(vec![Network::device(w, i), Network::device(w, i + 1)]);
    let pd = Network::Series(vec![pair(0), pair(2)]);
    Cell::from_pulldown("oai22", input_names(4), pd, 2.0, load_for(tech, 8))
        .expect("oai22 construction is infallible")
}

/// The whole built-in library — used by the random circuit generator and the
/// library-wide experiments.
pub fn standard_library(tech: &Technology) -> Vec<Cell> {
    vec![
        inv(tech),
        nand(2, tech),
        nand(3, tech),
        nand(4, tech),
        nor(2, tech),
        nor(3, tech),
        nor(4, tech),
        aoi21(tech),
        aoi22(tech),
        oai21(tech),
        oai22(tech),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::cmos_120nm()
    }

    #[test]
    fn library_cells_are_complementary() {
        for cell in standard_library(&tech()) {
            cell.verify_complementary()
                .unwrap_or_else(|e| panic!("{}: {e}", cell.name()));
        }
    }

    #[test]
    fn truth_tables_match_logic() {
        let t = tech();
        // NOR3: output high only for all-zero input.
        let nor3 = nor(3, &t);
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = !v.iter().any(|&b| b);
            assert_eq!(nor3.output(&v).unwrap(), expect, "{v:?}");
        }
        // AOI21: !(a·b + c).
        let g = aoi21(&t);
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = !((v[0] && v[1]) || v[2]);
            assert_eq!(g.output(&v).unwrap(), expect, "{v:?}");
        }
        // OAI22: !((a+b)(c+d)).
        let g = oai22(&t);
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let expect = !((v[0] || v[1]) && (v[2] || v[3]));
            assert_eq!(g.output(&v).unwrap(), expect, "{v:?}");
        }
    }

    #[test]
    fn nand_stack_is_upsized() {
        let t = tech();
        let n4 = nand(4, &t);
        match n4.pulldown() {
            crate::topology::Network::Series(v) => {
                assert_eq!(v.len(), 4);
                match &v[0] {
                    crate::topology::Network::Device(d) => {
                        assert!((d.width - 8.0 * t.nmos.w_min).abs() < 1e-18)
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nand1_degenerates_to_inverter() {
        let t = tech();
        assert_eq!(nand(1, &t).name(), "inv");
        assert_eq!(nor(1, &t).name(), "inv");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nand_arity_is_bounded() {
        nand(9, &tech());
    }

    #[test]
    fn library_has_expected_size_and_unique_names() {
        let lib = standard_library(&tech());
        assert_eq!(lib.len(), 11);
        let mut names: Vec<&str> = lib.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }
}
