//! Input-vector helpers.
//!
//! Gate leakage is input-state dependent (the whole point of the stack
//! effect); experiments sweep or sample vectors with these utilities.

/// Converts the low `n` bits of `bits` into a vector (`bit 0` → input 0).
pub fn vector_from_bits(bits: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| bits >> i & 1 == 1).collect()
}

/// Iterator over all `2^n` input vectors in bit order.
///
/// # Panics
///
/// Panics if `n > 20` — enumeration beyond a million vectors is a bug, not
/// an experiment.
pub fn all_vectors(n: usize) -> impl Iterator<Item = Vec<bool>> {
    assert!(n <= 20, "refusing to enumerate 2^{n} vectors");
    (0u64..(1u64 << n)).map(move |bits| vector_from_bits(bits, n))
}

/// Fraction of `1` bits across a vector (used by activity heuristics).
pub fn ones_fraction(v: &[bool]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().filter(|&&b| b).count() as f64 / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_to_vector() {
        assert_eq!(vector_from_bits(0b101, 3), vec![true, false, true]);
        assert_eq!(vector_from_bits(0, 2), vec![false, false]);
    }

    #[test]
    fn enumeration_is_complete_and_ordered() {
        let all: Vec<Vec<bool>> = all_vectors(3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], vec![false, false, false]);
        assert_eq!(all[7], vec![true, true, true]);
        // All distinct.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn ones_fraction_counts() {
        assert_eq!(ones_fraction(&[]), 0.0);
        assert_eq!(ones_fraction(&[true, false, true, false]), 0.5);
    }
}
