//! Gate-count circuits: the workload unit of block-level experiments.
//!
//! A [`Circuit`] is a bag of gate groups (cell type × instance count ×
//! activity), enough to evaluate block power without carrying full
//! connectivity — the paper's block-level thermal model only needs power per
//! block. A seeded random generator produces repeatable synthetic logic
//! blocks with a realistic cell mix.

use crate::cell::Cell;
use crate::cells;
use crate::dynamic_power::gate_dynamic_power;
use ptherm_tech::Technology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A group of identical gate instances.
#[derive(Debug, Clone, PartialEq)]
pub struct GateGroup {
    /// The cell replicated by this group.
    pub cell: Cell,
    /// Instance count.
    pub count: usize,
    /// Average switching activity per clock cycle.
    pub activity: f64,
    /// Representative input transition time, s.
    pub input_transition_s: f64,
}

/// A block-level circuit: groups of gates plus a clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Human-readable name.
    pub name: String,
    /// Gate groups.
    pub groups: Vec<GateGroup>,
    /// Clock frequency, Hz.
    pub frequency_hz: f64,
}

impl Circuit {
    /// Total gate instances.
    pub fn gate_count(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Total drawn transistors.
    pub fn transistor_count(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.count * g.cell.transistor_count())
            .sum()
    }

    /// Dynamic power (transient + short-circuit) of the whole circuit at
    /// `temperature_k`, watts.
    pub fn dynamic_power(&self, tech: &Technology, temperature_k: f64) -> f64 {
        self.groups
            .iter()
            .map(|g| {
                let wn = g.cell.pulldown().first_width().unwrap_or(tech.nmos.w_min);
                let wp = g.cell.pullup().first_width().unwrap_or(tech.pmos.w_min);
                g.count as f64
                    * gate_dynamic_power(
                        tech,
                        g.cell.load_cap(),
                        wn,
                        wp,
                        g.input_transition_s,
                        self.frequency_hz,
                        g.activity,
                        temperature_k,
                    )
            })
            .sum()
    }

    /// Generates a repeatable synthetic logic block with `n_gates` instances
    /// drawn from the standard library with a typical cell mix (inverters
    /// and 2-input gates dominate), random activities in `[0.02, 0.2]` and
    /// transitions in `[30, 120] ps`.
    pub fn random(
        name: impl Into<String>,
        seed: u64,
        n_gates: usize,
        frequency_hz: f64,
        tech: &Technology,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let lib = cells::standard_library(tech);
        // Mix weights roughly matching placed-design statistics.
        let weights = [30.0, 20.0, 8.0, 4.0, 12.0, 5.0, 2.0, 6.0, 5.0, 5.0, 3.0];
        debug_assert_eq!(weights.len(), lib.len());
        let total_w: f64 = weights.iter().sum();

        // Deal instance counts to each cell type.
        let mut counts = vec![0usize; lib.len()];
        for _ in 0..n_gates {
            let mut pick = rng.gen_range(0.0..total_w);
            let mut idx = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
            }
            counts[idx] += 1;
        }

        let groups = lib
            .into_iter()
            .zip(counts)
            .filter(|(_, c)| *c > 0)
            .map(|(cell, count)| GateGroup {
                cell,
                count,
                activity: rng.gen_range(0.02..0.2),
                input_transition_s: rng.gen_range(30e-12..120e-12),
            })
            .collect();

        Circuit {
            name: name.into(),
            groups,
            frequency_hz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_circuit_is_repeatable() {
        let tech = Technology::cmos_120nm();
        let a = Circuit::random("blk", 7, 1000, 1e9, &tech);
        let b = Circuit::random("blk", 7, 1000, 1e9, &tech);
        assert_eq!(a, b);
        let c = Circuit::random("blk", 8, 1000, 1e9, &tech);
        assert_ne!(a, c);
    }

    #[test]
    fn counts_add_up() {
        let tech = Technology::cmos_120nm();
        let c = Circuit::random("blk", 1, 500, 1e9, &tech);
        assert_eq!(c.gate_count(), 500);
        assert!(c.transistor_count() >= 2 * 500);
    }

    #[test]
    fn dynamic_power_scales_with_gates_and_frequency() {
        let tech = Technology::cmos_120nm();
        let small = Circuit::random("s", 3, 100, 1e9, &tech);
        let big = Circuit::random("s", 3, 100, 2e9, &tech);
        let p1 = small.dynamic_power(&tech, 300.0);
        let p2 = big.dynamic_power(&tech, 300.0);
        assert!(p1 > 0.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-9, "linear in f");
    }

    #[test]
    fn dynamic_power_magnitude_plausible() {
        // 10k gates at 1 GHz in 120nm: watch for mW-to-W scale.
        let tech = Technology::cmos_120nm();
        let c = Circuit::random("blk", 11, 10_000, 1e9, &tech);
        let p = c.dynamic_power(&tech, 300.0);
        assert!(p > 1e-4 && p < 10.0, "P_dyn = {p} W");
    }
}
