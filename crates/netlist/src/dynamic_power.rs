//! Dynamic power: transient (`α f C V²`) and short-circuit components.
//!
//! §2 of the paper splits dynamic power into the transient component
//! `P_t = α f C V_DD²` and a short-circuit component it delegates to the
//! authors' charge-based model \[10\] (Rosselló & Segura, TCAD 2002). We
//! implement the transient term exactly and a compact short-circuit model in
//! the spirit of \[10\]: the classic Veendrick form with an α-power-law
//! drive correction and the technology's temperature-dependent thresholds,
//!
//! ```text
//! P_sc ≈ (I_peak / 2) · V_DD · (τ_in · f) · max(0, 1 − (V_tn + V_tp)/V_DD)²
//! ```
//!
//! where `I_peak` is the saturation current of the smaller of the two
//! fighting devices at the mid-swing gate drive. This captures the three
//! behaviours the experiments rely on: linear growth with input transition
//! time, proportionality to frequency, and extinction when
//! `V_tn + V_tp ≥ V_DD` (no overlap conduction).

use ptherm_device::on_current::OnCurrentModel;
use ptherm_tech::Technology;

/// Transient switching power `α f C V²`, watts.
pub fn transient_power(activity: f64, frequency_hz: f64, capacitance_f: f64, vdd: f64) -> f64 {
    activity * frequency_hz * capacitance_f * vdd * vdd
}

/// Compact short-circuit power estimate for one switching gate, watts.
///
/// * `tech` — technology kit (thresholds, ON-current parameters),
/// * `wn`, `wp` — widths of the fighting devices, m,
/// * `input_transition_s` — 10–90% input ramp time, s,
/// * `frequency_hz`, `activity` — switching rate,
/// * `temperature_k` — junction temperature (thresholds shift with it).
pub fn short_circuit_power(
    tech: &Technology,
    wn: f64,
    wp: f64,
    input_transition_s: f64,
    frequency_hz: f64,
    activity: f64,
    temperature_k: f64,
) -> f64 {
    let n_model = OnCurrentModel::new(&tech.nmos, tech.t_ref);
    let p_model = OnCurrentModel::new(&tech.pmos, tech.t_ref);
    let vtn = n_model.threshold_voltage(temperature_k);
    let vtp = p_model.threshold_voltage(temperature_k);
    let overlap = 1.0 - (vtn + vtp) / tech.vdd;
    if overlap <= 0.0 {
        return 0.0;
    }
    // Both devices see ~mid-rail gate drive during the overlap window.
    let vmid = 0.5 * tech.vdd;
    let i_n = n_model.current(wn, vmid, temperature_k);
    let i_p = p_model.current(wp, vmid, temperature_k);
    let i_peak = i_n.min(i_p);
    0.5 * i_peak * tech.vdd * (input_transition_s * frequency_hz) * activity * overlap * overlap
}

/// Total dynamic power of one gate: transient plus short-circuit.
#[allow(clippy::too_many_arguments)]
pub fn gate_dynamic_power(
    tech: &Technology,
    load_cap: f64,
    wn: f64,
    wp: f64,
    input_transition_s: f64,
    frequency_hz: f64,
    activity: f64,
    temperature_k: f64,
) -> f64 {
    transient_power(activity, frequency_hz, load_cap, tech.vdd)
        + short_circuit_power(
            tech,
            wn,
            wp,
            input_transition_s,
            frequency_hz,
            activity,
            temperature_k,
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_power_formula() {
        // 0.1 activity, 1 GHz, 2 fF, 1.2 V -> alpha f C V^2.
        let p = transient_power(0.1, 1e9, 2e-15, 1.2);
        assert!((p - 0.1 * 1e9 * 2e-15 * 1.44).abs() < 1e-20);
    }

    #[test]
    fn short_circuit_grows_with_transition_time() {
        let tech = Technology::cmos_120nm();
        let p_fast = short_circuit_power(&tech, 1e-6, 2e-6, 20e-12, 1e9, 0.1, 300.0);
        let p_slow = short_circuit_power(&tech, 1e-6, 2e-6, 200e-12, 1e9, 0.1, 300.0);
        assert!(p_fast > 0.0);
        assert!((p_slow / p_fast - 10.0).abs() < 1e-9, "linear in tau");
    }

    #[test]
    fn short_circuit_vanishes_without_overlap() {
        // Raise thresholds so V_tn + V_tp > V_DD.
        let mut tech = Technology::cmos_120nm();
        tech.nmos.vt0 = 0.7;
        tech.pmos.vt0 = 0.7;
        let p = short_circuit_power(&tech, 1e-6, 2e-6, 50e-12, 1e9, 0.1, 300.0);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn short_circuit_is_small_fraction_of_transient() {
        // With sane slopes, P_sc is a modest fraction of P_t (the classic
        // 10-20% rule of thumb).
        let tech = Technology::cmos_120nm();
        let pt = transient_power(0.1, 1e9, 4e-15, tech.vdd);
        let psc = short_circuit_power(&tech, 3.2e-7, 6.4e-7, 50e-12, 1e9, 0.1, 300.0);
        let frac = psc / pt;
        assert!(frac > 0.001 && frac < 0.5, "P_sc/P_t = {frac}");
    }

    #[test]
    fn short_circuit_increases_with_temperature() {
        // Thresholds drop with T, widening the overlap window; mobility
        // degradation partially offsets. Net effect at these parameters is
        // an increase.
        let tech = Technology::cmos_120nm();
        let cold = short_circuit_power(&tech, 1e-6, 2e-6, 50e-12, 1e9, 0.1, 280.0);
        let hot = short_circuit_power(&tech, 1e-6, 2e-6, 50e-12, 1e9, 0.1, 400.0);
        assert!(hot != cold, "temperature must matter");
    }

    #[test]
    fn gate_dynamic_power_sums_components() {
        let tech = Technology::cmos_120nm();
        let total = gate_dynamic_power(&tech, 4e-15, 1e-6, 2e-6, 50e-12, 1e9, 0.1, 300.0);
        let pt = transient_power(0.1, 1e9, 4e-15, tech.vdd);
        let psc = short_circuit_power(&tech, 1e-6, 2e-6, 50e-12, 1e9, 0.1, 300.0);
        assert!((total - pt - psc).abs() < 1e-18);
    }
}
