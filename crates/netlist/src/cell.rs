//! Static CMOS cells: complementary pull-up / pull-down network pairs.

use crate::topology::{BoundNetwork, Network};
use std::fmt;

/// Error produced when constructing or binding a [`Cell`].
#[derive(Debug, Clone, PartialEq)]
pub enum BindCellError {
    /// The input vector length does not match the cell arity.
    WrongArity {
        /// Cell input count.
        expected: usize,
        /// Vector length provided.
        found: usize,
    },
    /// Both networks conduct for this vector (not a complementary cell).
    ShortCircuit {
        /// The offending vector.
        vector: Vec<bool>,
    },
    /// Neither network conducts for this vector (floating output).
    FloatingOutput {
        /// The offending vector.
        vector: Vec<bool>,
    },
    /// A device references an input pin outside the declared inputs.
    DanglingInput {
        /// Largest referenced pin.
        referenced: usize,
        /// Declared input count.
        declared: usize,
    },
}

impl fmt::Display for BindCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindCellError::WrongArity { expected, found } => {
                write!(f, "input vector has {found} bits, cell expects {expected}")
            }
            BindCellError::ShortCircuit { vector } => {
                write!(f, "both networks conduct for vector {vector:?}")
            }
            BindCellError::FloatingOutput { vector } => {
                write!(f, "neither network conducts for vector {vector:?}")
            }
            BindCellError::DanglingInput {
                referenced,
                declared,
            } => {
                write!(
                    f,
                    "device references input {referenced} but cell declares {declared}"
                )
            }
        }
    }
}

impl std::error::Error for BindCellError {}

/// A static CMOS cell.
///
/// Built from its pull-down network; the pull-up is the structural dual (the
/// usual static-CMOS construction), with pMOS widths scaled by a mobility
/// compensation factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    name: String,
    inputs: Vec<String>,
    pulldown: Network,
    pullup: Network,
    /// Switched output load, F (self + wire estimate).
    load_cap: f64,
}

impl Cell {
    /// Builds a cell from its pull-down network; the pull-up is the dual
    /// with widths scaled by `pmos_width_scale`.
    ///
    /// # Errors
    ///
    /// [`BindCellError::DanglingInput`] when a device references a pin
    /// outside `inputs`.
    pub fn from_pulldown(
        name: impl Into<String>,
        inputs: Vec<String>,
        pulldown: Network,
        pmos_width_scale: f64,
        load_cap: f64,
    ) -> Result<Self, BindCellError> {
        if let Some(max) = pulldown.max_input() {
            if max >= inputs.len() {
                return Err(BindCellError::DanglingInput {
                    referenced: max,
                    declared: inputs.len(),
                });
            }
        }
        let pullup = pulldown.dual(|w| pmos_width_scale * w);
        Ok(Cell {
            name: name.into(),
            inputs,
            pulldown,
            pullup,
            load_cap,
        })
    }

    /// Cell name, e.g. `"nand3"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input pin names.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// The pull-down network.
    pub fn pulldown(&self) -> &Network {
        &self.pulldown
    }

    /// The pull-up network.
    pub fn pullup(&self) -> &Network {
        &self.pullup
    }

    /// Switched output load, F.
    pub fn load_cap(&self) -> f64 {
        self.load_cap
    }

    /// Total drawn transistor count.
    pub fn transistor_count(&self) -> usize {
        self.pulldown.transistor_count() + self.pullup.transistor_count()
    }

    /// Logic value of the output for a vector (true = V_DD).
    ///
    /// # Errors
    ///
    /// [`BindCellError::WrongArity`] on length mismatch, and
    /// [`BindCellError::ShortCircuit`] / [`BindCellError::FloatingOutput`]
    /// for non-complementary networks.
    pub fn output(&self, vector: &[bool]) -> Result<bool, BindCellError> {
        let (down, up) = self.bind_both(vector)?;
        match (down.is_conducting(), up.is_conducting()) {
            (true, false) => Ok(false),
            (false, true) => Ok(true),
            (true, true) => Err(BindCellError::ShortCircuit {
                vector: vector.to_vec(),
            }),
            (false, false) => Err(BindCellError::FloatingOutput {
                vector: vector.to_vec(),
            }),
        }
    }

    /// Binds both networks for a vector.
    ///
    /// # Errors
    ///
    /// [`BindCellError::WrongArity`] on length mismatch.
    pub fn bind_both(
        &self,
        vector: &[bool],
    ) -> Result<(BoundNetwork, BoundNetwork), BindCellError> {
        if vector.len() != self.inputs.len() {
            return Err(BindCellError::WrongArity {
                expected: self.inputs.len(),
                found: vector.len(),
            });
        }
        Ok((
            BoundNetwork::pulldown(&self.pulldown, vector),
            BoundNetwork::pullup(&self.pullup, vector),
        ))
    }

    /// The *blocking* network for a vector — the one static leakage flows
    /// through (the conducting network ties the output to its rail).
    ///
    /// # Errors
    ///
    /// See [`Cell::output`].
    pub fn bound_blocking(&self, vector: &[bool]) -> Result<BoundNetwork, BindCellError> {
        let (down, up) = self.bind_both(vector)?;
        match (down.is_conducting(), up.is_conducting()) {
            (true, false) => Ok(up),
            (false, true) => Ok(down),
            (true, true) => Err(BindCellError::ShortCircuit {
                vector: vector.to_vec(),
            }),
            (false, false) => Err(BindCellError::FloatingOutput {
                vector: vector.to_vec(),
            }),
        }
    }

    /// Checks complementarity over *all* input vectors (exponential in
    /// arity; cells have ≤ 8 inputs in practice).
    ///
    /// # Errors
    ///
    /// The first vector violating complementarity.
    pub fn verify_complementary(&self) -> Result<(), BindCellError> {
        let n = self.inputs.len();
        for bits in 0..(1u32 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            self.output(&v)?;
        }
        Ok(())
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} inputs, {} devices)",
            self.name,
            self.inputs.len(),
            self.transistor_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand2() -> Cell {
        let pd = Network::Series(vec![Network::device(4e-7, 0), Network::device(4e-7, 1)]);
        Cell::from_pulldown("nand2", vec!["a".into(), "b".into()], pd, 2.0, 2e-15).unwrap()
    }

    #[test]
    fn nand2_truth_table() {
        let c = nand2();
        assert!(c.output(&[false, false]).unwrap());
        assert!(c.output(&[true, false]).unwrap());
        assert!(c.output(&[false, true]).unwrap());
        assert!(!c.output(&[true, true]).unwrap());
    }

    #[test]
    fn blocking_network_polarity() {
        use ptherm_tech::Polarity;
        let c = nand2();
        // Inputs 11: output low, pull-up blocks.
        let b = c.bound_blocking(&[true, true]).unwrap();
        assert_eq!(b.polarity(), Polarity::Pmos);
        // Inputs 00: output high, pull-down blocks with a 2-deep OFF stack.
        let b = c.bound_blocking(&[false, false]).unwrap();
        assert_eq!(b.polarity(), Polarity::Nmos);
        assert_eq!(b.max_stack_depth(), 2);
    }

    #[test]
    fn arity_is_checked() {
        let c = nand2();
        assert!(matches!(
            c.output(&[true]),
            Err(BindCellError::WrongArity {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn dangling_input_rejected() {
        let pd = Network::device(4e-7, 3);
        let err = Cell::from_pulldown("bad", vec!["a".into()], pd, 2.0, 1e-15).unwrap_err();
        assert!(matches!(
            err,
            BindCellError::DanglingInput {
                referenced: 3,
                declared: 1
            }
        ));
    }

    #[test]
    fn complementarity_holds_for_duals() {
        nand2().verify_complementary().unwrap();
    }

    #[test]
    fn transistor_count_counts_both_networks() {
        assert_eq!(nand2().transistor_count(), 4);
    }
}
